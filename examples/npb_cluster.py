#!/usr/bin/env python
"""A four-node cluster time-sharing two parallel NPB LU jobs.

Reproduces the paper's headline setup (§4): two instances of LU class C
on four nodes with 350 MB of usable memory each, five-minute quanta,
barrier-coupled MPI ranks.  Compares the unmodified LRU paging policy
against all four adaptive mechanisms, and shows per-node paging
statistics and the coordinated switches.

Run:  python examples/npb_cluster.py [--scale 0.1]
(default scale 0.1 finishes in a few seconds; scale 1.0 is the paper's
full size and takes a minute or two)
"""

import argparse

from repro.experiments import GangConfig, run_experiment, run_modes
from repro.metrics import (
    format_table,
    overhead_fraction,
    paging_reduction,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="proportional shrink factor (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    base = GangConfig("LU", "C", nprocs=4, seed=args.seed, scale=args.scale)
    print(f"running {base.benchmark}.{base.klass} x2 on {base.nprocs} nodes "
          f"(scale {args.scale}) ...")
    results = run_modes(base, ["lru", "so/ao/ai/bg"])

    batch = results["batch"]
    rows = []
    for name in ("batch", "lru", "so/ao/ai/bg"):
        r = results[name]
        rows.append(
            (
                name,
                f"{r.makespan:.0f}",
                r.switch_count,
                r.pages_read,
                r.pages_written,
            )
        )
    print()
    print(format_table(
        ("mode/policy", "makespan [s]", "switches", "pages in", "pages out"),
        rows,
        title="LU.C x 2 jobs on 4 nodes",
    ))

    lru, full = results["lru"], results["so/ao/ai/bg"]
    print()
    print(f"overhead lru      : {overhead_fraction(lru.makespan, batch.makespan):.0%}")
    print(f"overhead adaptive : {overhead_fraction(full.makespan, batch.makespan):.0%}")
    print(f"paging reduction  : "
          f"{paging_reduction(lru.makespan, full.makespan, batch.makespan):.0%}")

    # per-node breakdown of the adaptive run
    print()
    node_rows = []
    for i, stats in enumerate(full.vmm_stats):
        node_rows.append(
            (
                f"node{i}",
                stats["major_faults"],
                stats["pages_swapped_in"],
                stats["pages_swapped_out"],
                stats["pages_discarded"],
                stats["refaults"],
            )
        )
    print(format_table(
        ("node", "major faults", "pages in", "pages out", "clean drops",
         "refaults"),
        node_rows,
        title="Adaptive run — per-node paging",
    ))

    # the coordinated switches (gang semantics: all nodes at once)
    print()
    switch_rows = [
        (f"{s.started_at:.0f}", f"{s.paging_done_at - s.started_at:.1f}",
         s.in_job, s.out_job or "-")
        for s in full.collector.switches[:12]
    ]
    print(format_table(
        ("t [s]", "switch paging [s]", "in", "out"),
        switch_rows,
        title="First coordinated switches (adaptive run)",
    ))


if __name__ == "__main__":
    main()
