#!/usr/bin/env python
"""Render paging-activity traces (the paper's Figure 6) in the terminal.

Runs two gang-scheduled instances of an NPB workload under a ladder of
policy combinations and draws per-policy page-in / page-out time series
as block characters, with switch markers.

Examples:
    python examples/trace_visualizer.py
    python examples/trace_visualizer.py --bench MG --klass B --scale 0.15
    python examples/trace_visualizer.py --policies lru so/ao/ai/bg
"""

import argparse

import numpy as np

from repro.experiments import GangConfig, run_experiment
from repro.metrics import ascii_series
from repro.workloads import NPB_BENCHMARKS

# --memory uses the periodic sampler to show free-frame pressure; the
# runner builds its own Environment, so we hook node construction.
from repro.cluster.node import Node as _Node
from repro.sim.monitor import PeriodicSampler


def switch_ruler(series_t: np.ndarray, switches, width: int) -> str:
    """A line marking coordinated switch times with '^'."""
    if series_t.size == 0:
        return ""
    horizon = series_t[-1] + (series_t[1] - series_t[0] if series_t.size > 1
                              else 1.0)
    cells = [" "] * width
    for rec in switches:
        if rec.started_at >= horizon:
            continue
        idx = min(width - 1, int(rec.started_at / horizon * width))
        cells[idx] = "^"
    return "  switches  |" + "".join(cells) + "|"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="LU",
                        choices=sorted(NPB_BENCHMARKS))
    parser.add_argument("--klass", default="B", choices=["A", "B", "C"])
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--policies", nargs="+",
                        default=["lru", "so", "so/ao", "so/ao/ai/bg"])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--width", type=int, default=76)
    parser.add_argument("--memory", action="store_true",
                        help="also plot free frames on node0 over time")
    args = parser.parse_args()

    print(f"{args.bench}.{args.klass} x2 on {args.nodes} node(s), "
          f"scale {args.scale} — paging on node0 over the full run\n")

    for pol in args.policies:
        cfg = GangConfig(
            args.bench, args.klass, nprocs=args.nodes, policy=pol,
            seed=args.seed, scale=args.scale,
        )
        samplers = []
        if args.memory:
            orig_init = _Node.__init__

            def spying_init(self, env, name, memory, *a, **kw):
                orig_init(self, env, name, memory, *a, **kw)
                if name == "node0":
                    samplers.append(
                        PeriodicSampler(env, lambda v=self.vmm: v.frames.free,
                                        interval_s=max(0.5, 5 * args.scale))
                    )

            _Node.__init__ = spying_init
            try:
                res = run_experiment(cfg)
            finally:
                _Node.__init__ = orig_init
        else:
            res = run_experiment(cfg)
        series = res.collector.paging_series(
            bin_s=max(0.5, 5.0 * args.scale), node="node0",
            t_end=res.makespan,
        )
        vmax = max(series["read"].max(), series["write"].max(), 1.0)
        print(f"--- {pol}   (makespan {res.makespan:.0f}s, "
              f"{res.pages_read} pages in / {res.pages_written} out)")
        print(ascii_series(series["read"], width=args.width,
                           label=" page-in"))
        print(ascii_series(series["write"], width=args.width,
                           label=" page-out"))
        if samplers:
            _, free = samplers[0].series()
            print(ascii_series(free, width=args.width, label=" free mem"))
        print(switch_ruler(series["t"], res.collector.switches, args.width))
        print()


if __name__ == "__main__":
    main()
