#!/usr/bin/env python
"""Operating a cluster: scheduling matrix, arrivals, fairness, memory maps.

A tour of the operational layer built around the paper's mechanisms:

1. four nodes run a *mixed* workload through the Ousterhout scheduling
   matrix (one big job, two half-cluster jobs sharing a row);
2. a late job arrives mid-run and is packed into the matrix;
3. after the run: per-job fairness (Jain index over CPU shares), the
   per-job time breakdown, and an ASCII residency map of node0's memory
   captured at mid-run.

Run:  python examples/cluster_operations.py [--policy so/ao/ai/bg]
"""

import argparse

from repro.cluster import Node
from repro.gang import Job
from repro.gang.matrix import MatrixGangScheduler, ScheduleMatrix
from repro.mem.diagnostics import render_node
from repro.metrics import MetricsCollector, render_breakdown
from repro.metrics.fairness import cpu_shares, jains_index
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def make_job(name, nodes, rngs, pages=9000, iters=3, cpu=1.5e-3):
    wls = [
        SequentialSweepWorkload(
            pages, iters, cpu_per_page_s=cpu, dirty_fraction=0.6,
            max_phase_pages=2048, name=name,
            barrier_per_iteration=len(nodes) > 1, comm_s=0.02,
        )
        for _ in nodes
    ]
    return Job(name, nodes, wls, rngs.spawn(name))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="so/ao/ai/bg")
    parser.add_argument("--memory-mb", type=float, default=48.0)
    parser.add_argument("--quantum-s", type=float, default=20.0)
    args = parser.parse_args()

    env = Environment()
    collector = MetricsCollector()
    nodes = [
        Node.build(env, f"node{i}", args.memory_mb, args.policy)
        for i in range(4)
    ]
    for n in nodes:
        collector.attach_node(n)
    rngs = RngStreams(seed=17)

    big = make_job("big4", nodes, rngs)
    left = make_job("left2", nodes[:2], rngs, pages=7000)
    right = make_job("right2", nodes[2:], rngs, pages=7000)

    matrix = ScheduleMatrix(4)
    matrix.place(big, [0, 1, 2, 3])
    matrix.place(left, [0, 1])
    matrix.place(right, [2, 3])
    print("initial scheduling matrix:")
    print(matrix)
    print(f"matrix fill: {matrix.utilization():.0%}\n")

    sched = MatrixGangScheduler(env, nodes, matrix,
                                quantum_s=args.quantum_s,
                                accept_arrivals=True)
    sched.start()

    snapshots = []
    late_holder = {}

    def operations():
        # a late arrival lands after two quanta and joins the rotation
        yield env.timeout(2 * args.quantum_s)
        late = make_job("late4", nodes, rngs, pages=8000, iters=2)
        late_holder["job"] = late
        sched.submit(late, [0, 1, 2, 3])
        print(f"[t={env.now:.0f}s] late4 submitted; matrix now:")
        print(matrix)
        print()
        # capture a residency snapshot a little later
        yield env.timeout(1.5 * args.quantum_s)
        snapshots.append((env.now, render_node(nodes[0].vmm, width=56)))
        sched.close()

    env.process(operations())
    env.run()

    jobs = [big, left, right, late_holder["job"]]
    print(f"all jobs finished at t={env.now:.0f}s\n")

    print(f"mid-run memory map of node0 (t={snapshots[0][0]:.0f}s):")
    print(snapshots[0][1])
    print()

    shares = cpu_shares(jobs)
    print("CPU shares:", {k: f"{v:.2f}" for k, v in shares.items()})
    print(f"Jain fairness index: {jains_index(shares):.3f}\n")

    print(render_breakdown(jobs, collector,
                           max(j.completed_at for j in jobs)))


if __name__ == "__main__":
    main()
