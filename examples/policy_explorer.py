#!/usr/bin/env python
"""Explore any NPB workload under any policy combination.

A small CLI over the experiment runner: pick a benchmark, data class,
node count and a list of policy combinations, and get the paper-style
completion / overhead / reduction table.

Examples:
    python examples/policy_explorer.py --bench MG --klass B
    python examples/policy_explorer.py --bench LU --klass C --nodes 4 \
        --policies lru ai so so/ao so/ao/bg so/ao/ai/bg --scale 0.1
    python examples/policy_explorer.py --bench IS --klass C --nodes 2 \
        --memory-mb 300 --quantum-s 240
"""

import argparse

from repro.core import PAPER_POLICIES
from repro.experiments import GangConfig, run_modes
from repro.metrics import (
    format_table,
    overhead_fraction,
    paging_reduction,
)
from repro.metrics.report import percent
from repro.workloads import NPB_BENCHMARKS


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--bench", default="LU",
                        choices=sorted(NPB_BENCHMARKS))
    parser.add_argument("--klass", default="B", choices=["A", "B", "C"])
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--policies", nargs="+",
                        default=list(PAPER_POLICIES))
    parser.add_argument("--memory-mb", type=float, default=350.0,
                        help="usable memory per node (paper: 350)")
    parser.add_argument("--quantum-s", type=float, default=300.0)
    parser.add_argument("--njobs", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    cfg = GangConfig(
        benchmark=args.bench,
        klass=args.klass,
        nprocs=args.nodes,
        memory_mb=args.memory_mb,
        quantum_s=args.quantum_s,
        njobs=args.njobs,
        seed=args.seed,
        scale=args.scale,
    )
    policies = [p for p in args.policies if p != "batch"]
    print(f"running {cfg.label()} with policies {policies} ...")
    results = run_modes(cfg, policies)

    batch = results["batch"].makespan
    lru_mk = results.get("lru")
    lru_mk = lru_mk.makespan if lru_mk is not None else None

    rows = [("batch", f"{batch:.0f}", "-", "-", "-", "-")]
    for pol in policies:
        r = results[pol]
        reduction = (
            percent(paging_reduction(lru_mk, r.makespan, batch))
            if lru_mk is not None and pol != "lru"
            else "-"
        )
        rows.append(
            (
                pol,
                f"{r.makespan:.0f}",
                percent(overhead_fraction(r.makespan, batch)),
                r.pages_read,
                r.pages_written,
                reduction,
            )
        )
    print()
    print(format_table(
        ("policy", "makespan [s]", "overhead", "pages in", "pages out",
         "reduction vs lru"),
        rows,
        title=f"{args.bench}.{args.klass} x{args.njobs} on "
              f"{args.nodes} node(s), {args.memory_mb:.0f} MB, "
              f"quantum {args.quantum_s:.0f} s (scale {args.scale})",
    ))


if __name__ == "__main__":
    main()
