#!/usr/bin/env python
"""Quickstart: gang-schedule two memory-hungry jobs on one node.

Builds a 64 MB node, runs two 40 MB jobs under (a) batch scheduling,
(b) gang scheduling with the unmodified LRU paging policy, and
(c) gang scheduling with all four adaptive paging mechanisms
(``so/ao/ai/bg``), then prints completion times and paging statistics.

Run:  python examples/quickstart.py
"""

from repro.cluster import Node
from repro.gang import BatchScheduler, GangScheduler
from repro.gang.job import Job
from repro.metrics import format_table, overhead_fraction, paging_reduction
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload

MEMORY_MB = 64.0
JOB_MB = 40.0
QUANTUM_S = 30.0


def build_job(name: str, node: Node, rngs: RngStreams) -> Job:
    workload = SequentialSweepWorkload(
        footprint_pages=int(JOB_MB * 256),  # 256 pages per MB
        iterations=6,
        dirty_fraction=0.6,
        cpu_per_page_s=2e-3,
        name=name,
    )
    return Job(name, [node], [workload], rngs.spawn(name))


def run(mode: str, policy: str) -> dict:
    env = Environment()
    rngs = RngStreams(seed=42)
    node = Node.build(env, "node0", MEMORY_MB, policy)
    jobs = [build_job("alpha", node, rngs), build_job("beta", node, rngs)]

    if mode == "batch":
        BatchScheduler(env, jobs).start()
    else:
        GangScheduler(env, jobs, quantum_s=QUANTUM_S).start()
    env.run()

    return {
        "makespan": max(j.completed_at for j in jobs),
        "pages_read": node.disk.total_pages["read"],
        "pages_written": node.disk.total_pages["write"],
        "refaults": node.vmm.stats.refaults,
    }


def main() -> None:
    batch = run("batch", "lru")
    lru = run("gang", "lru")
    adaptive = run("gang", "so/ao/ai/bg")

    rows = [
        ("batch (no switching)", f"{batch['makespan']:.0f}",
         batch["pages_read"], batch["pages_written"], batch["refaults"]),
        ("gang + lru", f"{lru['makespan']:.0f}",
         lru["pages_read"], lru["pages_written"], lru["refaults"]),
        ("gang + so/ao/ai/bg", f"{adaptive['makespan']:.0f}",
         adaptive["pages_read"], adaptive["pages_written"],
         adaptive["refaults"]),
    ]
    print(format_table(
        ("configuration", "makespan [s]", "pages in", "pages out",
         "refaults"),
        rows,
        title="Two 40 MB jobs sharing a 64 MB node (30 s quanta)",
    ))
    print()
    print(f"switching overhead, lru      : "
          f"{overhead_fraction(lru['makespan'], batch['makespan']):.0%}")
    print(f"switching overhead, adaptive : "
          f"{overhead_fraction(adaptive['makespan'], batch['makespan']):.0%}")
    print(f"paging reduction             : "
          f"{paging_reduction(lru['makespan'], adaptive['makespan'], batch['makespan']):.0%}")


if __name__ == "__main__":
    main()
