"""§3.3 benchmark — read-ahead boosting vs adaptive page-in."""

from repro.experiments import ablation_readahead

SCALE = 0.12


def test_ablation_readahead(once):
    records = once(ablation_readahead.run, scale=SCALE, quiet=True)
    batch = records["_batch_s"]
    print()
    print(ablation_readahead.render(records, batch))

    # adaptive page-in beats the kernel-default read-ahead baseline
    assert (records["ai (ra16)"]["makespan_s"]
            < records["lru+ra16"]["makespan_s"])
    # and is at least competitive with even a 256-page boost, without
    # reading pages that "may not be useful at all" (§3.3)
    assert (records["ai (ra16)"]["makespan_s"]
            <= records["lru+ra256"]["makespan_s"] * 1.1)
