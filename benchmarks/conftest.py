"""Shared helpers for the benchmark suite.

Every benchmark runs a figure's experiment harness at a reduced scale
(one round — the simulations are deterministic, so repetition only
measures host noise) and asserts the paper's directional shape on the
returned records.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
