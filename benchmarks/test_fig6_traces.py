"""Figure 6 benchmark — LU.C×4 paging activity traces (reduced scale).

Asserts the trace qualities the paper describes: the full adaptive
combination compacts page-ins at the switch and moves less read volume
than the original policy.
"""

from repro.experiments import fig6_traces

SCALE = 0.06


def test_fig6_traces(once):
    records = once(fig6_traces.run, scale=SCALE, quiet=True)
    print()
    print(fig6_traces.render(records))

    lru = records["lru"]
    full = records["so/ao/ai/bg"]
    # page-in compaction increases monotonically along the policy ladder
    assert full["compaction"] > lru["compaction"]
    # selective page-out alone already reduces paging volume
    assert records["so"]["pages_read"] <= lru["pages_read"]
    # the full combination finishes earlier
    assert full["makespan_s"] <= lru["makespan_s"]
