"""Benchmarks — topology extension and the disk calibration grid."""

from repro.experiments import calibration, extension_topology

SCALE = 0.06


def test_extension_topology(once):
    records = once(extension_topology.run, scale=SCALE, quiet=True)
    print()
    print(extension_topology.render(records))

    flat = records["flat switch"]
    racked = records["2 racks (4+4)"]
    # the cross-rack uplink measurably raises pure wire cost ...
    assert (racked["lru"]["wire_sync_s"]
            > flat["lru"]["wire_sync_s"])
    # ... but straggler (paging) sync dwarfs it, so overheads tie
    for r in (flat, racked):
        assert r["lru"]["mean_rank_sync_s"] > 10 * r["lru"]["wire_sync_s"]
    assert abs(flat["lru"]["overhead"] - racked["lru"]["overhead"]) < 0.05
    # adaptive paging wins under either topology
    for r in (flat, racked):
        assert r["so/ao/ai/bg"]["overhead"] <= r["lru"]["overhead"]


def test_calibration_grid(once):
    records = once(calibration.run, scale=SCALE, quiet=True)
    print()
    print(calibration.render(records))

    for (seek, xfer), r in records.items():
        # adaptive wins at every grid point
        assert r["reduction"] > 0.3, (seek, xfer)
    # slower transfer -> higher adaptive floor -> lower reduction
    assert (records[(0.012, 6e6)]["reduction"]
            < records[(0.012, 10e6)]["reduction"])