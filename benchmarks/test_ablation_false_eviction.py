"""§3.1 benchmark — false eviction measured via refault counts."""

from repro.experiments import ablation_false_eviction

SCALE = 0.12


def test_ablation_false_eviction(once):
    records = once(ablation_false_eviction.run, scale=SCALE, quiet=True)
    print()
    print(ablation_false_eviction.render(records))

    # selective page-out slashes refaults (the §3.1 false evictions)
    assert records["so"]["refaults"] < 0.6 * records["lru"]["refaults"]
    # and with fewer false evictions, less is swapped in overall
    assert (records["so"]["pages_swapped_in"]
            < records["lru"]["pages_swapped_in"])
