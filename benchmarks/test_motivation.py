"""§1 motivation benchmark — Moreira et al. memory-size slowdown."""

from repro.experiments import motivation_moreira

SCALE = 0.25


def test_motivation_moreira(once):
    record = once(motivation_moreira.run, scale=SCALE, quiet=True)
    print()
    print(motivation_moreira.render(record))

    # the paper's reference reports a 3.5x average slowdown; assert the
    # direction and a same-order magnitude
    assert record["slowdown_ratio"] > 1.5
    assert record["slowdown_ratio"] < 12.0
