"""§3.4 benchmark — background-write window sweep."""

from repro.experiments import ablation_bgwrite

SCALE = 0.12


def test_ablation_bgwrite(once):
    records = once(ablation_bgwrite.run, scale=SCALE, quiet=True)
    batch = records["_batch_s"]
    no_bg = records["no-bg"]["makespan_s"]
    print()
    print(ablation_bgwrite.render(records, batch, no_bg))

    # a short window near the paper's 10 % is at least as good as no
    # background writing at all
    assert records["bg@0.10"]["makespan_s"] <= no_bg * 1.02
    # longer windows write strictly more pages (repeated writing, §3.4)
    writes = [records[f"bg@{f:.2f}"]["bg_writes"]
              for f in ablation_bgwrite.FRACTIONS]
    assert writes == sorted(writes)
