"""Benchmark — graceful degradation under injected faults.

The shape that must hold: faults cost time for every policy, but the
adaptive stack degrades toward ``lru`` instead of collapsing below it,
and a node crash evicts jobs rather than deadlocking the gang.
"""

from repro.experiments import extension_faults

SCALE = 0.08


def test_extension_fault_sweep(once):
    records = once(extension_faults.run, scale=SCALE, quiet=True)
    print()
    print(extension_faults.render(records))

    sweep = records["sweep"]
    intensities = sorted(sweep)
    assert intensities[0] == 0.0

    # fault-free level really is fault-free
    clean = sweep[0.0]["so/ao/ai/bg"]["fault_summary"]
    assert sum(clean["injected"].values()) == 0
    assert clean["disk_retries"] == 0
    assert clean["ai_fallbacks"] == 0

    for x in intensities:
        row = sweep[x]
        # graceful degradation: the adaptive stack never falls below lru
        assert row["ratio"] <= 1.02, (x, row["ratio"])
        fs = row["so/ao/ai/bg"]["fault_summary"]
        # retries absorbed every transient error — nothing failed hard
        assert fs["disk_failed_requests"] == 0, x
        if x > 0:
            assert sum(fs["injected"].values()) > 0, x
            assert fs["disk_retries"] > 0, x

    # faults cost real time, for both policies
    for pol in ("lru", "so/ao/ai/bg"):
        t0 = sweep[0.0][pol]["makespan_s"]
        t4 = sweep[max(intensities)][pol]["makespan_s"]
        assert t4 > t0, pol

    # the record-corruption path actually exercised its fallback
    worst = sweep[max(intensities)]["so/ao/ai/bg"]["fault_summary"]
    assert worst["ai_fallbacks"] > 0


def test_extension_crash_demo_terminates(once):
    records = once(extension_faults.run, scale=SCALE, quiet=True)
    demo = records["crash_demo"]
    fs = demo["fault_summary"]

    # the run terminated (watchdog untripped) and accounting is coherent
    assert fs["jobs_evicted"] == len(demo["evicted"])
    assert set(demo["completed"]).isdisjoint(demo["evicted"])
    assert len(demo["completed"]) + len(demo["evicted"]) == 2
    if fs["injected"].get("node_crashes", 0):
        # a crash means at least one eviction, never a deadlock
        assert demo["evicted"]
        assert demo["makespan_s"] > 0.0
