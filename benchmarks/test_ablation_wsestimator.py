"""§3.2/§3.5 benchmark — working-set estimator vs oracle vs none."""

from repro.experiments import ablation_wsestimator

SCALE = 0.12


def test_ablation_wsestimator(once):
    records = once(ablation_wsestimator.run, scale=SCALE, quiet=True)
    print()
    print(ablation_wsestimator.render(records))

    est = records["estimator"]
    oracle = records["oracle"]
    whole = records["whole-memory"]
    # the previous-quantum estimator is as good as perfect information
    assert est["makespan_s"] <= oracle["makespan_s"] * 1.03
    # blind whole-memory eviction writes strictly more pages (§3.2's
    # "too many page-outs") and is no faster
    assert whole["pages_written"] > est["pages_written"]
    assert whole["makespan_s"] >= est["makespan_s"] * 0.99
