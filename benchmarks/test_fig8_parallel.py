"""Figure 8 benchmark — parallel NPB on 2 and 4 nodes (reduced scale).

Asserts the paper's qualitative results: adaptive paging wins wherever
paging occurs, and the CG-on-4-nodes crossover (footprint shrinks below
memory, so there is nothing to win) shows ~zero reduction.
"""

from repro.experiments import fig8_parallel

SCALE = 0.08


def test_fig8_parallel(once):
    records = once(fig8_parallel.run, scale=SCALE, quiet=True)
    print()
    print(fig8_parallel.render(records))

    for (bench, n), r in records.items():
        # where there is nothing to win (CG@4 pages barely at all) the
        # adaptive run may carry a little prefetch cost
        slack = 1.06 if r["overhead_lru"] < 0.05 else 1.02
        assert r["adaptive_s"] <= r["lru_s"] * slack, (bench, n)

    # the paper's crossover: CG at 4 nodes no longer pages
    assert records[("CG", 4)]["overhead_lru"] < 0.05
    assert abs(records[("CG", 4)]["reduction"]) < 0.35

    # where memory is stressed, the reduction is substantial
    for key in (("LU", 2), ("IS", 2), ("LU", 4)):
        assert records[key]["reduction"] > 0.3, key
