"""Figure 1 benchmark — measured paging compaction (reduced scale)."""

from repro.experiments import fig1_compaction

SCALE = 0.12


def test_fig1_compaction(once):
    records = once(fig1_compaction.run, scale=SCALE, quiet=True)
    print()
    print(fig1_compaction.render(records))

    lru = records["lru"]
    full = records["so/ao/ai/bg"]
    # paging concentrates at the start of the quantum...
    assert full["compaction"] > lru["compaction"] + 0.2
    # ...with page-in/page-out interleaving eliminated...
    assert full["interleave"] < lru["interleave"]
    # ...in far fewer disk transactions
    assert full["transfers"] < lru["transfers"]
