"""Benchmark — workload properties predict the adaptive win."""

from repro.experiments import extension_characterization

SCALE = 0.08


def test_extension_characterization(once):
    records = once(extension_characterization.run, scale=SCALE, quiet=True)
    print()
    print(extension_characterization.render(records))

    c = records["_correlations"]
    # the §4.1 narrative, quantified: memory overcommit predicts both
    # the baseline's pain and the adaptive win (strong rank correlation)
    assert c["overcommit_vs_overhead"] > 0.7
    assert c["overcommit_vs_reduction"] > 0.7
    # MG (heaviest overcommit) tops the reduction ranking
    benches = [b for b in records if not b.startswith("_")]
    top = max(benches, key=lambda b: records[b]["reduction"])
    assert top == "MG"
