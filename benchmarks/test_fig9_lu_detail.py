"""Figure 9 benchmark — LU across all six policy combinations.

Asserts the §4.3 observations: ``ai`` and ``so`` are individually
strong; the full combination is at least as good as plain LRU in every
configuration and achieves a large reduction.
"""

from repro.experiments import fig9_lu_detail

SCALE = 0.08


def test_fig9_lu_detail(once):
    records = once(fig9_lu_detail.run, scale=SCALE, quiet=True)
    print()
    print(fig9_lu_detail.render(records))

    for label, per in records.items():
        lru = per["lru"]["makespan_s"]
        # every adaptive combination at worst matches the original
        for pol in fig9_lu_detail.ADAPTIVE_POLICIES:
            assert per[pol]["makespan_s"] <= lru * 1.05, (label, pol)
        # ai and so are individually effective (paper: > 65 %; allow
        # slack at reduced scale)
        assert per["ai"]["reduction"] > 0.25, label
        assert per["so"]["reduction"] > 0.25, label
        # the full combination achieves a strong reduction
        assert per["so/ao/ai/bg"]["reduction"] > 0.4, label
