"""Benchmark — sensitivity of the headline result to modelling choices."""

from repro.experiments import sensitivity

SCALE = 0.08


def test_sensitivity(once):
    records = once(sensitivity.run, scale=SCALE, quiet=True)
    print()
    print(sensitivity.render(records))

    for axis, points in records.items():
        for label, r in points.items():
            if r["overhead_lru"] > 0.05:
                # wherever paging matters, the conclusion holds
                assert r["reduction"] > 0.3, (axis, label)
            else:
                # little paging to begin with: the adaptive stack must
                # at least not make things materially worse
                assert r["reduction"] > -0.5, (axis, label)

    # directionality along the axes
    mem = records["memory"]
    assert (mem["300 MB"]["overhead_lru"]
            >= mem["350 MB (paper)"]["overhead_lru"]
            >= mem["420 MB"]["overhead_lru"])
    q = records["quantum"]
    assert (q["150 s"]["overhead_lru"]
            >= q["300 s (paper)"]["overhead_lru"]
            >= q["600 s"]["overhead_lru"])
