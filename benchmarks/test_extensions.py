"""Benchmarks for the extension experiments (paper §5/§6 follow-ups)."""

from repro.experiments import (
    extension_policies,
    extension_quantum,
    extension_scaling,
)

SCALE = 0.08


def test_extension_quantum_sweep(once):
    records = once(extension_quantum.run, scale=SCALE, quiet=True)
    print()
    print(extension_quantum.render(records))

    quanta = sorted(k for k in records if not isinstance(k, str))
    # overhead decreases monotonically with quantum length for lru
    lru_oh = [records[q]["lru"]["overhead"] for q in quanta]
    assert all(a >= b - 0.02 for a, b in zip(lru_oh, lru_oh[1:]))
    # the adaptive policy achieves the paper's §6 promise: a smaller
    # quantum within the same overhead budget
    q_lru = extension_quantum.smallest_quantum_within_budget(records, "lru")
    q_full = extension_quantum.smallest_quantum_within_budget(
        records, "so/ao/ai/bg"
    )
    assert q_full is not None
    assert q_lru is None or q_full <= q_lru


def test_extension_policy_baselines(once):
    records = once(extension_policies.run, scale=SCALE, quiet=True)
    print()
    print(extension_policies.render(records))

    for name, r in records.items():
        # adaptive paging helps no matter which baseline the kernel uses
        assert r["adaptive_s"] <= r["lru_s"], name
        assert r["reduction"] > 0.3, name


def test_extension_node_scaling(once):
    records = once(extension_scaling.run, scale=SCALE, quiet=True,
                   node_counts=(2, 4, 8))
    print()
    print(extension_scaling.render(records))

    # per-node footprint shrinks with node count, so LRU overhead falls
    assert (records[2]["overhead_lru"]
            >= records[4]["overhead_lru"]
            >= records[8]["overhead_lru"] - 0.02)
    # where paging exists, adaptive wins
    assert records[2]["reduction"] > 0.4
