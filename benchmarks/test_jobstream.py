"""Benchmark — open-system job stream (slowdown under arrivals)."""

from repro.experiments import extension_jobstream

SCALE = 0.08


def test_extension_jobstream(once):
    records = once(extension_jobstream.run, scale=SCALE, quiet=True,
                   njobs=10)
    print()
    print(extension_jobstream.render(records))

    lru = records["lru"]
    full = records["so/ao/ai/bg"]
    # slowdowns are well-formed
    assert all(s >= 1.0 for s in lru["slowdowns"])
    # adaptive paging never worsens the open-system metrics
    assert full["mean_slowdown"] <= lru["mean_slowdown"] * 1.02
    assert full["p95_slowdown"] <= lru["p95_slowdown"] * 1.05
    assert full["makespan_s"] <= lru["makespan_s"] * 1.02
