"""Figure 7 benchmark — serial class-B NPB mix (reduced scale).

Regenerates the three Fig. 7 panels and asserts the paper's shape:
every benchmark improves under the full adaptive combination, and the
memory-light IS benefits least among the five.
"""

from repro.experiments import fig7_serial

SCALE = 0.12


def test_fig7_serial(once):
    records = once(fig7_serial.run, scale=SCALE, quiet=True)
    print()
    print(fig7_serial.render(records))

    for bench, r in records.items():
        # gang scheduling costs something under plain LRU...
        assert r["lru_s"] >= r["batch_s"], bench
        # ...and the adaptive combination recovers most of it wherever
        # paging is significant (IS barely pages at reduced scale)
        if r["overhead_lru"] > 0.05:
            assert r["adaptive_s"] <= r["lru_s"], bench
            assert r["reduction"] > 0.2, bench
        else:
            assert r["adaptive_s"] <= r["lru_s"] * 1.05, bench

    # MG (heaviest overcommit) gains the most — the paper's headline row
    reds = {b: r["reduction"] for b, r in records.items()}
    assert reds["MG"] == max(reds.values())
    # IS sits at the bottom of the ranking, as in the paper
    assert reds["IS"] <= min(reds["MG"], reds["LU"], reds["CG"])
