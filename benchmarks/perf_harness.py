"""Persistent performance harness: single-cell and sweep benchmarks.

Writes ``BENCH_PR2.json`` at the repo root with

* wall-clock and events/sec for the Figure-6 LRU cell (min of 3 runs),
  against the recorded pre-optimization baseline,
* serial vs ``jobs=4`` wall-clock for a small multi-seed sweep, with
  the host's CPU count (the speedup ceiling — on a single-core host the
  parallel path only proves correctness, not throughput),
* a serial-vs-parallel byte-identity verdict for the sweep.

``--obs`` (or the default full run) additionally writes
``BENCH_PR3.json``: instrumented vs uninstrumented wall clock on the
same Figure-6 LRU cell.  The telemetry subsystem promises bit-for-bit
identical simulation results at ≤5 % wall-clock overhead; the report
records both the identity verdict and whether the measured overhead
fits the budget.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py          # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --smoke  # CI smoke

``--smoke`` shrinks everything to seconds and exits non-zero if the
parallel pool fails (pickling regression, worker crash), its output
diverges from serial, or an instrumented run diverges from an
uninstrumented one — no timing assertions, so it is load-tolerant.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import multi_seed  # noqa: E402
from repro.experiments.report_io import _sanitise  # noqa: E402
from repro.experiments.runner import GangConfig, run_experiment  # noqa: E402
from repro.obs import Registry  # noqa: E402

#: maximum acceptable telemetry wall-clock overhead (fraction)
OBS_OVERHEAD_BUDGET = 0.05

#: wall-clock of the single-cell benchmark on the pre-optimization
#: code, measured back-to-back with the optimized code on the same
#: host (git-stash round trip, min of 3) — re-measure when moving to
#: different hardware rather than trusting this absolute number
BASELINE_SINGLE_CELL_WALL_S = 2.947

#: the Figure-6 LRU cell — the paper's headline trace configuration
FIG6_LRU = GangConfig("LU", "C", nprocs=4, policy="lru", seed=1, scale=0.5)


def bench_single_cell(cfg: GangConfig, repeats: int = 3) -> dict:
    """Min-of-N wall clock and events/sec for one cell, in-process."""
    walls, rates = [], []
    events = makespan = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run_experiment(cfg)
        walls.append(time.perf_counter() - t0)
        rates.append(res.events_processed / walls[-1])
        events, makespan = res.events_processed, res.makespan
    best = min(walls)
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "wall_s_min": best,
        "wall_s_all": walls,
        "events_processed": events,
        "events_per_sec_best": max(rates),
        "makespan_s": makespan,
        "baseline_wall_s": BASELINE_SINGLE_CELL_WALL_S,
        "speedup_vs_baseline": BASELINE_SINGLE_CELL_WALL_S / best,
    }


def bench_sweep(scale: float, seeds, jobs: int = 4) -> dict:
    """Serial vs parallel wall clock for the multi-seed sweep grid."""
    base = GangConfig("LU", "B", nprocs=1, scale=scale)

    t0 = time.perf_counter()
    serial = multi_seed.replicate(base, seeds=seeds, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = (
        json.dumps(_sanitise(serial), sort_keys=True)
        == json.dumps(_sanitise(parallel), sort_keys=True)
    )
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": 3 * len(seeds),
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "sweep_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "serial_parallel_identical": identical,
    }


def bench_obs_overhead(cfg: GangConfig, repeats: int = 3) -> dict:
    """Instrumented vs uninstrumented wall clock on one cell.

    Alternates the two variants within each repeat so drifting host
    load hits both equally; reports min-of-N for each, the overhead
    ratio, and the simulation-identity verdict.
    """
    plain_walls, obs_walls = [], []
    plain_res = obs_res = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        plain_res = run_experiment(cfg)
        plain_walls.append(time.perf_counter() - t0)

        reg = Registry()
        t0 = time.perf_counter()
        obs_res = run_experiment(cfg, obs=reg)
        obs_walls.append(time.perf_counter() - t0)

    identical = (
        plain_res.makespan == obs_res.makespan
        and plain_res.events_processed == obs_res.events_processed
        and plain_res.pages_read == obs_res.pages_read
        and plain_res.pages_written == obs_res.pages_written
    )
    plain_best, obs_best = min(plain_walls), min(obs_walls)
    overhead = obs_best / plain_best - 1.0 if plain_best > 0 else None
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "plain_wall_s_min": plain_best,
        "obs_wall_s_min": obs_best,
        "obs_overhead_frac": overhead,
        "overhead_budget_frac": OBS_OVERHEAD_BUDGET,
        "within_budget": overhead is not None
        and overhead <= OBS_OVERHEAD_BUDGET,
        "simulation_identical": identical,
        "events_processed": plain_res.events_processed,
        "spans_recorded": len(obs_res.obs.spans),
        "counters_recorded": len(obs_res.obs.counters()),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny scale, correctness only; for CI")
    ap.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR2.json"))
    ap.add_argument("--obs-out", default=str(REPO_ROOT / "BENCH_PR3.json"))
    ap.add_argument("--jobs", type=int, default=4)
    args = ap.parse_args(argv)

    if args.smoke:
        single_cfg = GangConfig("LU", "B", nprocs=1, policy="lru",
                                seed=1, scale=0.05)
        single = bench_single_cell(single_cfg, repeats=1)
        single.pop("baseline_wall_s")
        single.pop("speedup_vs_baseline")
        sweep = bench_sweep(scale=0.05, seeds=(1, 2), jobs=2)
        obs_bench = bench_obs_overhead(single_cfg, repeats=1)
    else:
        single = bench_single_cell(FIG6_LRU, repeats=3)
        sweep = bench_sweep(scale=0.1, seeds=(1, 2, 3, 4), jobs=args.jobs)
        obs_bench = bench_obs_overhead(FIG6_LRU, repeats=3)

    report = {
        "bench": "PR2 parallel execution + engine hot path",
        "mode": "smoke" if args.smoke else "full",
        "host_cpu_count": os.cpu_count(),
        "single_cell": single,
        "sweep": sweep,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")

    obs_report = {
        "bench": "PR3 telemetry subsystem overhead",
        "mode": "smoke" if args.smoke else "full",
        "host_cpu_count": os.cpu_count(),
        "obs_overhead": obs_bench,
    }
    obs_out = Path(args.obs_out)
    obs_out.write_text(json.dumps(obs_report, indent=2) + "\n")
    print(json.dumps(obs_report, indent=2))
    print(f"\nwritten to {obs_out}")

    if not sweep["serial_parallel_identical"]:
        print("FAIL: parallel sweep output diverged from serial",
              file=sys.stderr)
        return 1
    if not obs_bench["simulation_identical"]:
        print("FAIL: instrumented run diverged from uninstrumented",
              file=sys.stderr)
        return 1
    if not args.smoke and not obs_bench["within_budget"]:
        print(
            f"FAIL: telemetry overhead "
            f"{obs_bench['obs_overhead_frac']:.1%} exceeds the "
            f"{OBS_OVERHEAD_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
