"""Persistent performance harness: single-cell and sweep benchmarks.

Writes ``BENCH_PR2.json`` at the repo root with

* wall-clock and events/sec for the Figure-6 LRU cell (min of 3 runs),
  against the recorded pre-optimization baseline,
* serial vs ``jobs=4`` wall-clock for a small multi-seed sweep, with
  the host's CPU count (the speedup ceiling — on a single-core host the
  parallel path only proves correctness, not throughput),
* a serial-vs-parallel byte-identity verdict for the sweep.

``--obs`` (or the default full run) additionally writes
``BENCH_PR3.json``: instrumented vs uninstrumented wall clock on the
same Figure-6 LRU cell.  The telemetry subsystem promises bit-for-bit
identical simulation results at ≤5 % wall-clock overhead *or* ≤2 µs
per simulation event (the absolute bound keeps the budget meaningful
as the uninstrumented event loop gets faster); the report records both
the identity verdict and whether the measured overhead fits either
budget.

The run also writes ``BENCH_PR4.json`` (``--pr4-out``) covering the
incremental page-state index and the cell result cache:

* indexed vs scan-mode (``repro.mem.index.set_index_enabled``) wall
  clock on the Figure-6 LRU cell, with a bit-for-bit identity verdict
  and the speedup against the recorded PR 3 baseline,
* a cold-vs-warm cell-cache round trip on the multi-seed sweep: the
  warm rerun must skip at least half its cells (it skips all of them)
  and merge to byte-identical output.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py          # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --smoke  # CI smoke

``--smoke`` shrinks everything to seconds and exits non-zero if the
parallel pool fails (pickling regression, worker crash), its output
diverges from serial, or an instrumented run diverges from an
uninstrumented one — no timing assertions, so it is load-tolerant.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import multi_seed  # noqa: E402
from repro.experiments.report_io import _sanitise  # noqa: E402
from repro.experiments.runner import GangConfig, run_experiment  # noqa: E402
from repro.obs import Registry  # noqa: E402

#: maximum acceptable telemetry wall-clock overhead (fraction)
OBS_OVERHEAD_BUDGET = 0.05

#: absolute alternative to the relative budget: telemetry may cost up
#: to this much per simulation event.  The relative budget was set
#: against the PR 3 event-loop speed; the PR 4 index/reclaim work made
#: the *uninstrumented* run ~2× faster, which inflates the same
#: absolute instrument cost into a larger fraction.  The per-event
#: bound expresses "telemetry is cheap" in a way that survives
#: denominator speedups: either test passing satisfies the budget.
OBS_OVERHEAD_BUDGET_PER_EVENT_US = 2.0

#: wall-clock of the single-cell benchmark on the pre-optimization
#: code, measured back-to-back with the optimized code on the same
#: host (git-stash round trip, min of 3) — re-measure when moving to
#: different hardware rather than trusting this absolute number
BASELINE_SINGLE_CELL_WALL_S = 2.947

#: the same cell on the PR 3 code (post engine/telemetry work, before
#: the PR 4 page-state index + reclaim fast path), min of 5 on the
#: same host — the denominator of the PR 4 speedup claim
BASELINE_PR3_SINGLE_CELL_WALL_S = 1.326

#: warm-cache reruns must serve at least this fraction of cells from
#: the cache (they serve all of them; the slack absorbs future
#: experiments that opt out of caching)
CACHE_SKIP_TARGET = 0.5

#: the Figure-6 LRU cell — the paper's headline trace configuration
FIG6_LRU = GangConfig("LU", "C", nprocs=4, policy="lru", seed=1, scale=0.5)


def bench_single_cell(cfg: GangConfig, repeats: int = 3) -> dict:
    """Min-of-N wall clock and events/sec for one cell, in-process."""
    walls, rates = [], []
    events = makespan = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run_experiment(cfg)
        walls.append(time.perf_counter() - t0)
        rates.append(res.events_processed / walls[-1])
        events, makespan = res.events_processed, res.makespan
    best = min(walls)
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "wall_s_min": best,
        "wall_s_all": walls,
        "events_processed": events,
        "events_per_sec_best": max(rates),
        "makespan_s": makespan,
        "baseline_wall_s": BASELINE_SINGLE_CELL_WALL_S,
        "speedup_vs_baseline": BASELINE_SINGLE_CELL_WALL_S / best,
    }


def bench_sweep(scale: float, seeds, jobs: int = 4) -> dict:
    """Serial vs parallel wall clock for the multi-seed sweep grid."""
    base = GangConfig("LU", "B", nprocs=1, scale=scale)

    t0 = time.perf_counter()
    serial = multi_seed.replicate(base, seeds=seeds, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = (
        json.dumps(_sanitise(serial), sort_keys=True)
        == json.dumps(_sanitise(parallel), sort_keys=True)
    )
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": 3 * len(seeds),
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "sweep_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "serial_parallel_identical": identical,
    }


def bench_obs_overhead(cfg: GangConfig, repeats: int = 3) -> dict:
    """Instrumented vs uninstrumented wall clock on one cell.

    Alternates the two variants within each repeat so drifting host
    load hits both equally; reports min-of-N for each, the overhead
    ratio, and the simulation-identity verdict.
    """
    plain_walls, obs_walls = [], []
    plain_res = obs_res = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        plain_res = run_experiment(cfg)
        plain_walls.append(time.perf_counter() - t0)

        reg = Registry()
        t0 = time.perf_counter()
        obs_res = run_experiment(cfg, obs=reg)
        obs_walls.append(time.perf_counter() - t0)

    identical = (
        plain_res.makespan == obs_res.makespan
        and plain_res.events_processed == obs_res.events_processed
        and plain_res.pages_read == obs_res.pages_read
        and plain_res.pages_written == obs_res.pages_written
    )
    plain_best, obs_best = min(plain_walls), min(obs_walls)
    overhead = obs_best / plain_best - 1.0 if plain_best > 0 else None
    events = plain_res.events_processed
    per_event_us = (
        (obs_best - plain_best) / events * 1e6 if events else None
    )
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "plain_wall_s_min": plain_best,
        "obs_wall_s_min": obs_best,
        "obs_overhead_frac": overhead,
        "overhead_budget_frac": OBS_OVERHEAD_BUDGET,
        "obs_overhead_per_event_us": per_event_us,
        "per_event_budget_us": OBS_OVERHEAD_BUDGET_PER_EVENT_US,
        "within_budget": overhead is not None
        and (overhead <= OBS_OVERHEAD_BUDGET
             or per_event_us <= OBS_OVERHEAD_BUDGET_PER_EVENT_US),
        "simulation_identical": identical,
        "events_processed": plain_res.events_processed,
        "spans_recorded": len(obs_res.obs.spans),
        "counters_recorded": len(obs_res.obs.counters()),
    }


def bench_index(cfg: GangConfig, repeats: int = 3) -> dict:
    """Indexed vs scan-mode wall clock on one cell (identity checked).

    Scan mode (:func:`repro.mem.index.set_index_enabled` off) recomputes
    every page-state view per call — the pre-index behaviour — on the
    same code, so the comparison isolates the epoch cache itself.  The
    variants alternate within each repeat so drifting host load hits
    both equally.
    """
    from repro.mem.index import set_index_enabled

    idx_walls, scan_walls = [], []
    idx_res = scan_res = None
    try:
        for _ in range(repeats):
            set_index_enabled(True)
            t0 = time.perf_counter()
            idx_res = run_experiment(cfg)
            idx_walls.append(time.perf_counter() - t0)

            set_index_enabled(False)
            t0 = time.perf_counter()
            scan_res = run_experiment(cfg)
            scan_walls.append(time.perf_counter() - t0)
    finally:
        set_index_enabled(True)

    identical = (
        idx_res.makespan == scan_res.makespan
        and idx_res.events_processed == scan_res.events_processed
        and idx_res.pages_read == scan_res.pages_read
        and idx_res.pages_written == scan_res.pages_written
        and idx_res.completions == scan_res.completions
    )
    idx_best, scan_best = min(idx_walls), min(scan_walls)
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "indexed_wall_s_min": idx_best,
        "scan_wall_s_min": scan_best,
        "indexed_vs_scan_speedup": scan_best / idx_best,
        "baseline_pr3_wall_s": BASELINE_PR3_SINGLE_CELL_WALL_S,
        "speedup_vs_pr3_baseline": BASELINE_PR3_SINGLE_CELL_WALL_S
        / idx_best,
        "speedup_target": 1.3,
        "meets_target": BASELINE_PR3_SINGLE_CELL_WALL_S / idx_best >= 1.3,
        "simulation_identical": identical,
        "events_processed": idx_res.events_processed,
        "makespan_s": idx_res.makespan,
    }


def bench_cache(scale: float, seeds, jobs: int = 1) -> dict:
    """Cold vs warm cell-cache round trip on the multi-seed sweep.

    Runs the same sweep twice against a scratch cache directory: the
    cold pass simulates and stores every cell, the warm pass must serve
    them all back (skip fraction 1.0) and merge to byte-identical
    output outside the ``"_perf"`` quarantine.
    """
    import shutil
    import tempfile

    from repro.perf.cache import CellCache, set_default_cache

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    tmp = tempfile.mkdtemp(prefix="cellcache-bench-")
    try:
        cold_cache = CellCache(root=tmp)
        set_default_cache(cold_cache)
        t0 = time.perf_counter()
        cold = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        cold_s = time.perf_counter() - t0

        warm_cache = CellCache(root=tmp)
        set_default_cache(warm_cache)
        t0 = time.perf_counter()
        warm = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        warm_s = time.perf_counter() - t0
    finally:
        set_default_cache(None)
        shutil.rmtree(tmp, ignore_errors=True)

    def _strip_perf(obj):
        if isinstance(obj, dict):
            return {k: _strip_perf(v) for k, v in obj.items()
                    if k != "_perf"}
        if isinstance(obj, list):
            return [_strip_perf(v) for v in obj]
        return obj

    identical = (
        json.dumps(_strip_perf(_sanitise(cold)), sort_keys=True)
        == json.dumps(_strip_perf(_sanitise(warm)), sort_keys=True)
    )
    warm_total = warm_cache.hits + warm_cache.misses
    skipped = warm_cache.hits / warm_total if warm_total else 0.0
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": warm_total,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else None,
        "cold_misses": cold_cache.misses,
        "cold_stores": cold_cache.stores,
        "warm_hits": warm_cache.hits,
        "warm_misses": warm_cache.misses,
        "cells_skipped_frac": skipped,
        "skip_target_frac": CACHE_SKIP_TARGET,
        "meets_skip_target": skipped >= CACHE_SKIP_TARGET,
        "cached_fresh_identical": identical,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny scale, correctness only; for CI")
    ap.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR2.json"))
    ap.add_argument("--obs-out", default=str(REPO_ROOT / "BENCH_PR3.json"))
    ap.add_argument("--pr4-out", default=str(REPO_ROOT / "BENCH_PR4.json"))
    ap.add_argument("--jobs", type=int, default=4)
    args = ap.parse_args(argv)

    if args.smoke:
        single_cfg = GangConfig("LU", "B", nprocs=1, policy="lru",
                                seed=1, scale=0.05)
        single = bench_single_cell(single_cfg, repeats=1)
        single.pop("baseline_wall_s")
        single.pop("speedup_vs_baseline")
        sweep = bench_sweep(scale=0.05, seeds=(1, 2), jobs=2)
        obs_bench = bench_obs_overhead(single_cfg, repeats=1)
        index_bench = bench_index(single_cfg, repeats=1)
        index_bench.pop("baseline_pr3_wall_s")
        index_bench.pop("speedup_vs_pr3_baseline")
        index_bench.pop("speedup_target")
        index_bench.pop("meets_target")
        cache_bench = bench_cache(scale=0.05, seeds=(1, 2))
    else:
        single = bench_single_cell(FIG6_LRU, repeats=3)
        sweep = bench_sweep(scale=0.1, seeds=(1, 2, 3, 4), jobs=args.jobs)
        obs_bench = bench_obs_overhead(FIG6_LRU, repeats=3)
        index_bench = bench_index(FIG6_LRU, repeats=3)
        cache_bench = bench_cache(scale=0.1, seeds=(1, 2, 3, 4))

    report = {
        "bench": "PR2 parallel execution + engine hot path",
        "mode": "smoke" if args.smoke else "full",
        "host_cpu_count": os.cpu_count(),
        "single_cell": single,
        "sweep": sweep,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")

    obs_report = {
        "bench": "PR3 telemetry subsystem overhead",
        "mode": "smoke" if args.smoke else "full",
        "host_cpu_count": os.cpu_count(),
        "obs_overhead": obs_bench,
    }
    obs_out = Path(args.obs_out)
    obs_out.write_text(json.dumps(obs_report, indent=2) + "\n")
    print(json.dumps(obs_report, indent=2))
    print(f"\nwritten to {obs_out}")

    pr4_report = {
        "bench": "PR4 page-state index + reclaim fast path + cell cache",
        "mode": "smoke" if args.smoke else "full",
        "host_cpu_count": os.cpu_count(),
        "index": index_bench,
        "cell_cache": cache_bench,
    }
    pr4_out = Path(args.pr4_out)
    pr4_out.write_text(json.dumps(pr4_report, indent=2) + "\n")
    print(json.dumps(pr4_report, indent=2))
    print(f"\nwritten to {pr4_out}")

    if not sweep["serial_parallel_identical"]:
        print("FAIL: parallel sweep output diverged from serial",
              file=sys.stderr)
        return 1
    if not obs_bench["simulation_identical"]:
        print("FAIL: instrumented run diverged from uninstrumented",
              file=sys.stderr)
        return 1
    if not args.smoke and not obs_bench["within_budget"]:
        print(
            f"FAIL: telemetry overhead "
            f"{obs_bench['obs_overhead_frac']:.1%} "
            f"({obs_bench['obs_overhead_per_event_us']:.2f} us/event) "
            f"exceeds both the {OBS_OVERHEAD_BUDGET:.0%} relative and "
            f"{OBS_OVERHEAD_BUDGET_PER_EVENT_US:.1f} us/event budgets",
            file=sys.stderr,
        )
        return 1
    if not index_bench["simulation_identical"]:
        print("FAIL: indexed run diverged from scan-mode run",
              file=sys.stderr)
        return 1
    if not cache_bench["cached_fresh_identical"]:
        print("FAIL: warm-cache sweep output diverged from cold",
              file=sys.stderr)
        return 1
    if not cache_bench["meets_skip_target"]:
        print(
            f"FAIL: warm-cache rerun skipped only "
            f"{cache_bench['cells_skipped_frac']:.0%} of cells "
            f"(target {CACHE_SKIP_TARGET:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
