"""Persistent performance harness: single-cell and sweep benchmarks.

Writes ``BENCH_PR2.json`` at the repo root with

* wall-clock and events/sec for the Figure-6 LRU cell (min of 3 runs),
  against the recorded pre-optimization baseline,
* serial vs ``jobs=4`` wall-clock for a small multi-seed sweep, with
  the host's CPU count (the speedup ceiling — on a single-core host the
  parallel path only proves correctness, not throughput),
* a serial-vs-parallel byte-identity verdict for the sweep.

``--obs`` (or the default full run) additionally writes
``BENCH_PR3.json``: instrumented vs uninstrumented wall clock on the
same Figure-6 LRU cell.  The telemetry subsystem promises bit-for-bit
identical simulation results at ≤5 % wall-clock overhead *or* ≤2 µs
per simulation event (the absolute bound keeps the budget meaningful
as the uninstrumented event loop gets faster); the report records both
the identity verdict and whether the measured overhead fits either
budget.

The run also writes ``BENCH_PR4.json`` (``--pr4-out``) covering the
incremental page-state index and the cell result cache:

* indexed vs scan-mode (``repro.mem.index.set_index_enabled``) wall
  clock on the Figure-6 LRU cell, with a bit-for-bit identity verdict
  and the speedup against the recorded PR 3 baseline,
* a cold-vs-warm cell-cache round trip on the multi-seed sweep: the
  warm rerun must skip at least half its cells (it skips all of them)
  and merge to byte-identical output.

``BENCH_PR5.json`` (``--pr5-out``) covers the steady-state execution
fast path:

* fast-path vs per-chunk (``repro.sim.set_fast_path_enabled``) wall
  clock on the Figure-6 LRU cell.  The identity verdict deliberately
  excludes ``events_processed`` — the fast path deletes bookkeeping
  events, so the count must *drop*, never match — while every
  simulation output (makespan, completions, page traffic, switch
  count, VMM stats) must stay bit-identical,
* the speedup against the recorded PR 4 baseline,
* the fast-mode wall clock of the CI smoke cell, stored as the floor
  for the perf-regression warning a later ``--smoke`` run emits.

``BENCH_PR6.json`` (``--pr6-out``) covers resilient sweep execution:
the chaos benchmark runs the multi-seed sweep twice — a fault-free
serial baseline, then supervised (``repro.perf.supervisor``) under a
seeded :class:`~repro.faults.worker.WorkerFaultPlan` that crashes
workers mid-sweep — and asserts the supervised run absorbed at least
one pool rebuild, quarantined nothing, and merged to byte-identical
output.

``BENCH_PR7.json`` (``--pr7-out``) covers the vectorized batch-advance
event core:

* batch-advance vs scalar-dispatch (``repro.sim
  .set_batch_advance_enabled``) wall clock on the Figure-6 LRU cell,
  with a bit-for-bit identity verdict that *includes*
  ``events_simulated`` — unlike the PR 5 fast path, batch-advance only
  absorbs dispatches, so the logical event count must match exactly
  while ``events_dispatched`` drops,
* per-PR target bookkeeping (``speedup_target`` / ``meets_target``
  against the recorded PR 5 baseline) plus the cumulative
  ``fig6_trajectory`` (seed → this PR) that every BENCH file now
  carries,
* the fig6 LRU floor for the *hard* smoke regression gate: a
  ``--smoke`` run re-measures the cell and exits non-zero when it
  exceeds the committed floor by more than
  :data:`SMOKE_REGRESSION_FACTOR`.

``BENCH_PR8.json`` (``--pr8-out``) covers sweep-scale observability:

* an instrumented (``repro.obs.sweep.SweepObserver``) vs plain
  multi-seed sweep, asserting the sweep-level ``summary()`` equals the
  elementwise sum of the per-cell summaries shipped through
  ``"_perf"``, the merged Chrome trace carries one distinct track
  group per cell, records stay byte-identical outside ``"_perf"``,
  and the capture overhead fits the PR 3 budget (≤5 % relative or
  ≤2 µs per simulated event),
* the chaos benchmark re-run with the supervisor event log on,
  asserting every retry and pool rebuild the supervisor counted is
  named in the structured log (``--pr8-trace-out`` additionally
  writes the merged chaos-sweep Chrome trace for the CI artifact).

``BENCH_PR10.json`` (``--pr10-out``) covers the persistent warm-worker
sweep executor:

* the backend shoot-out: one ≥48-cell (16 seeds × 3 modes) sweep run
  serial, on the legacy spawn-per-sweep pool, and on the persistent
  executor (min-of-N each, after a warm-up sweep so worker spawn cost
  is amortised the way real multi-sweep sessions amortise it), with a
  three-way byte-identity verdict and the serial→persistent speedup
  against the ≥1.5× target.  On hosts with fewer than 4 CPUs the
  speedup target is *skipped honestly* — ``meets_target: null``,
  ``skipped_low_cpu: true`` and a ``::warning::`` annotation — instead
  of recording a meaningless sub-1× number as a failure; CI's 4-vCPU
  leg passes ``--require-speedup`` to turn the target into a hard
  gate,
* the chaos companion on the persistent backend: injected worker
  crashes must be absorbed by respawning single workers (``respawns``
  ≥ 1, ``rebuilds`` = 0), quarantine nothing, and merge byte-identical
  to the fault-free serial run,
* the cumulative ``sweep_trajectory`` (PR 2 → PR 5 → PR 10 parallel
  sweep speedup) that ``repro obs bench-report`` renders alongside the
  fig6 single-cell trajectory.

Each benchmark section writes one BENCH file; ``--section`` selects
which sections run.  It defaults to the *current* PR's section so
routine full runs refresh only ``BENCH_PR10.json`` and stop rewriting
the historical reports; ``--section all`` reproduces everything.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py                # full, current section
    PYTHONPATH=src python benchmarks/perf_harness.py --section all  # full, every section
    PYTHONPATH=src python benchmarks/perf_harness.py --smoke        # CI smoke, current section

``--smoke`` shrinks everything to seconds and exits non-zero if the
parallel pool fails (pickling regression, worker crash), its output
diverges from serial, an instrumented run diverges from an
uninstrumented one, or a fast-path run diverges from a slow-mode run —
mostly without timing assertions, so it is load-tolerant.  Two timing
checks remain.  The PR 5 one is advisory: when the smoke cell's
fast-mode wall clock exceeds the floor recorded in the committed
``BENCH_PR5.json`` by more than :data:`SMOKE_REGRESSION_FACTOR`, it
prints a GitHub-actions ``::warning::`` line and still exits zero.
The PR 7 one is a hard gate: when the fig6 LRU cell exceeds the floor
recorded in the committed ``BENCH_PR7.json`` by more than the same
factor, it prints ``::error::`` and exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import multi_seed  # noqa: E402
from repro.experiments.report_io import _sanitise  # noqa: E402
from repro.experiments.runner import GangConfig, run_experiment  # noqa: E402
from repro.obs import Registry  # noqa: E402

#: maximum acceptable telemetry wall-clock overhead (fraction)
OBS_OVERHEAD_BUDGET = 0.05

#: absolute alternative to the relative budget: telemetry may cost up
#: to this much per simulation event.  The relative budget was set
#: against the PR 3 event-loop speed; the PR 4 index/reclaim work made
#: the *uninstrumented* run ~2× faster, which inflates the same
#: absolute instrument cost into a larger fraction.  The per-event
#: bound expresses "telemetry is cheap" in a way that survives
#: denominator speedups: either test passing satisfies the budget.
OBS_OVERHEAD_BUDGET_PER_EVENT_US = 2.0

#: sweep-level counterpart of the per-event budget, for
#: :func:`bench_sweep_obs`.  Looser than the single-cell bound because
#: the sweep observer also ships one registry snapshot + per-cell
#: summary per *cell* — a fixed per-cell cost the full-run sweep
#: cells (scale 0.1, ~1.5k events each) cannot amortise the way the
#: fig6 cell (hundreds of thousands of events) does.  Honest
#: re-baseline: the sweep budget previously appeared to pass only
#: through a ``-19%`` single-run noise artifact; measured honestly
#: (alternated min-of-N) the sweep path costs ~2.3 us/event at this
#: cell size.
OBS_SWEEP_OVERHEAD_PER_EVENT_US = 3.0

#: wall-clock of the single-cell benchmark on the pre-optimization
#: code, measured back-to-back with the optimized code on the same
#: host (git-stash round trip, min of 3) — re-measure when moving to
#: different hardware rather than trusting this absolute number
BASELINE_SINGLE_CELL_WALL_S = 2.947

#: the same cell on the PR 3 code (post engine/telemetry work, before
#: the PR 4 page-state index + reclaim fast path), min of 5 on the
#: same host — the denominator of the PR 4 speedup claim
BASELINE_PR3_SINGLE_CELL_WALL_S = 1.326

#: the same cell on the PR 4 code (post index/reclaim/cache work,
#: before the PR 5 resident-run batching), measured back-to-back with
#: the optimized code on the same host (git-stash round trip, min of
#: 5) — the denominator of the PR 5 speedup claim.  ``BENCH_PR4.json``
#: recorded 0.965 s for this cell, but that run happened under lighter
#: host load; as with the other baselines, re-measure rather than
#: trusting the absolute number when conditions change.
BASELINE_PR4_SINGLE_CELL_WALL_S = 1.1086018349997175

#: the same cell on the PR 5 code (post resident-run batching, before
#: the PR 7 batch-advance core) — the ``fast_wall_s_min`` recorded in
#: ``BENCH_PR5.json`` and the denominator of the PR 7 speedup claim
BASELINE_PR5_SINGLE_CELL_WALL_S = 0.958194470997114

#: the same cell on the PR 7 code (post batch-advance core) — the
#: ``fast_wall_s_min`` recorded in ``BENCH_PR7.json``
BASELINE_PR7_SINGLE_CELL_WALL_S = 0.7965931319995434

#: the Figure-6 LRU cell's wall-time trajectory across the perf PRs
#: (min-of-N on the same host lineage).  Every BENCH file carries this
#: forward — with the current PR's measurement appended — so a
#: regression is visible in any single report without diffing the
#: historical files.
FIG6_TRAJECTORY = (
    ("seed", BASELINE_SINGLE_CELL_WALL_S),
    ("PR3", BASELINE_PR3_SINGLE_CELL_WALL_S),
    ("PR4", BASELINE_PR4_SINGLE_CELL_WALL_S),
    ("PR5", BASELINE_PR5_SINGLE_CELL_WALL_S),
    ("PR7", BASELINE_PR7_SINGLE_CELL_WALL_S),
)


def fig6_trajectory(current_pr: str = None,
                    current_wall_s: float = None) -> list:
    """The recorded fig6 wall-time trajectory, optionally extended with
    the measurement the calling section just took.  A fresh measurement
    for a PR already in the recorded table replaces the recorded entry
    (a re-run of a historical section updates, never duplicates)."""
    traj = [
        {"pr": pr, "wall_s": wall,
         "speedup_vs_seed": BASELINE_SINGLE_CELL_WALL_S / wall}
        for pr, wall in FIG6_TRAJECTORY
        if pr != current_pr
    ]
    if current_wall_s is not None:
        traj.append({
            "pr": current_pr,
            "wall_s": current_wall_s,
            "speedup_vs_seed": BASELINE_SINGLE_CELL_WALL_S
            / current_wall_s,
        })
    return traj


#: the parallel-sweep speedup floor the persistent executor must hit
#: at 4 jobs (serial wall / persistent wall, after warm-up); only
#: meaningful on hosts with at least :data:`SPEEDUP_MIN_CPUS` cores
SWEEP_SPEEDUP_TARGET = 1.5

#: multi-core speedup floors mean nothing below this CPU count — a
#: 1-core host *cannot* beat serial, so the gate skips honestly there
#: (``::warning::`` + ``skipped_low_cpu``) instead of recording a
#: sub-1x "failure"
SPEEDUP_MIN_CPUS = 4

#: the parallel-sweep speedup trajectory across the perf PRs — the
#: sweep-axis mirror of :data:`FIG6_TRAJECTORY`.  Entries are
#: ``(pr, speedup, jobs, host_cpu_count)``.  PR2 is the committed
#: ``BENCH_PR2.json`` measurement on the 1-cpu reference host (the
#: spawn-per-sweep pool *loses* to serial with no cores to hide the
#: spawn cost behind); PR5 is the first >1x crossing once the
#: steady-state fast path shrank per-cell import-dominated overhead.
SWEEP_TRAJECTORY = (
    ("PR2", 0.742, 4, 1),
    ("PR5", 1.16, 4, 1),
)


def sweep_trajectory(current_speedup: float = None, jobs: int = None,
                     note: str = None) -> list:
    """The recorded sweep-speedup trajectory, extended with the
    measurement the pr10 section just took.  ``repro obs bench-report``
    renders this alongside the fig6 single-cell trajectory."""
    traj = [
        {"pr": pr, "speedup": speedup, "jobs": j, "host_cpu_count": cpus}
        for pr, speedup, j, cpus in SWEEP_TRAJECTORY
    ]
    if current_speedup is not None:
        entry = {"pr": "PR10", "speedup": current_speedup,
                 "jobs": jobs, "host_cpu_count": os.cpu_count()}
        if note:
            entry["note"] = note
        traj.append(entry)
    return traj


def _require_cpus(what: str, need: int = SPEEDUP_MIN_CPUS) -> bool:
    """CPU-count honesty gate for multi-core speedup floors.

    Returns True when the host can meaningfully run ``need``-way
    parallel work; otherwise prints a GitHub-actions ``::warning::``
    and returns False so the caller records its measurement with the
    verdict skipped (``meets_target: null``) instead of failing on
    hardware that cannot pass.
    """
    cpus = os.cpu_count() or 1
    if cpus >= need:
        return True
    print(
        f"::warning::{what} needs >= {need} CPUs but this host has "
        f"{cpus}; recording the measurement and skipping the speedup "
        f"verdict"
    )
    return False


#: warm-cache reruns must serve at least this fraction of cells from
#: the cache (they serve all of them; the slack absorbs future
#: experiments that opt out of caching)
CACHE_SKIP_TARGET = 0.5

#: a ``--smoke`` run warns (never fails) when its smoke-cell fast-path
#: wall clock exceeds the committed floor by more than this factor;
#: generous because CI runners are noisy
SMOKE_REGRESSION_FACTOR = 1.2

#: the Figure-6 LRU cell — the paper's headline trace configuration
FIG6_LRU = GangConfig("LU", "C", nprocs=4, policy="lru", seed=1, scale=0.5)

#: the tiny cell every ``--smoke`` section runs; also the subject of
#: the perf-regression floor stored in ``BENCH_PR5.json``
SMOKE_CELL = GangConfig("LU", "B", nprocs=1, policy="lru", seed=1,
                        scale=0.05)


def _strip_perf(obj):
    """Drop every ``"_perf"`` quarantine sub-dict (recursively)."""
    if isinstance(obj, dict):
        return {k: _strip_perf(v) for k, v in obj.items()
                if k != "_perf"}
    if isinstance(obj, list):
        return [_strip_perf(v) for v in obj]
    return obj


def _canon(record) -> str:
    """Canonical JSON of a record outside the ``"_perf"`` quarantine."""
    return json.dumps(_strip_perf(_sanitise(record)), sort_keys=True)


def bench_single_cell(cfg: GangConfig, repeats: int = 3) -> dict:
    """Min-of-N wall clock and events/sec for one cell, in-process."""
    walls, rates = [], []
    events = makespan = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run_experiment(cfg)
        walls.append(time.perf_counter() - t0)
        rates.append(res.events_processed / walls[-1])
        events, makespan = res.events_processed, res.makespan
    best = min(walls)
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "wall_s_min": best,
        "wall_s_all": walls,
        "events_processed": events,
        "events_per_sec_best": max(rates),
        "makespan_s": makespan,
        "baseline_wall_s": BASELINE_SINGLE_CELL_WALL_S,
        "speedup_vs_baseline": BASELINE_SINGLE_CELL_WALL_S / best,
    }


def bench_sweep(scale: float, seeds, jobs: int = 4) -> dict:
    """Serial vs parallel wall clock for the multi-seed sweep grid."""
    base = GangConfig("LU", "B", nprocs=1, scale=scale)

    t0 = time.perf_counter()
    serial = multi_seed.replicate(base, seeds=seeds, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = (
        json.dumps(_sanitise(serial), sort_keys=True)
        == json.dumps(_sanitise(parallel), sort_keys=True)
    )
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": 3 * len(seeds),
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "sweep_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "serial_parallel_identical": identical,
    }


def bench_obs_overhead(cfg: GangConfig, repeats: int = 3) -> dict:
    """Instrumented vs uninstrumented wall clock on one cell.

    Alternates the two variants within each repeat so drifting host
    load hits both equally; reports min-of-N for each, the overhead
    ratio, and the simulation-identity verdict.
    """
    plain_walls, obs_walls = [], []
    plain_res = obs_res = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        plain_res = run_experiment(cfg)
        plain_walls.append(time.perf_counter() - t0)

        reg = Registry()
        t0 = time.perf_counter()
        obs_res = run_experiment(cfg, obs=reg)
        obs_walls.append(time.perf_counter() - t0)

    identical = (
        plain_res.makespan == obs_res.makespan
        and plain_res.events_processed == obs_res.events_processed
        and plain_res.pages_read == obs_res.pages_read
        and plain_res.pages_written == obs_res.pages_written
    )
    plain_best, obs_best = min(plain_walls), min(obs_walls)
    overhead = obs_best / plain_best - 1.0 if plain_best > 0 else None
    events = plain_res.events_processed
    per_event_us = (
        (obs_best - plain_best) / events * 1e6 if events else None
    )
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "plain_wall_s_min": plain_best,
        "obs_wall_s_min": obs_best,
        "obs_overhead_frac": overhead,
        "overhead_budget_frac": OBS_OVERHEAD_BUDGET,
        "obs_overhead_per_event_us": per_event_us,
        "per_event_budget_us": OBS_OVERHEAD_BUDGET_PER_EVENT_US,
        "within_budget": overhead is not None
        and (overhead <= OBS_OVERHEAD_BUDGET
             or per_event_us <= OBS_OVERHEAD_BUDGET_PER_EVENT_US),
        "simulation_identical": identical,
        "events_processed": plain_res.events_processed,
        "spans_recorded": len(obs_res.obs.spans),
        "counters_recorded": len(obs_res.obs.counters()),
    }


def bench_index(cfg: GangConfig, repeats: int = 3) -> dict:
    """Indexed vs scan-mode wall clock on one cell (identity checked).

    Scan mode (:func:`repro.mem.index.set_index_enabled` off) recomputes
    every page-state view per call — the pre-index behaviour — on the
    same code, so the comparison isolates the epoch cache itself.  The
    variants alternate within each repeat so drifting host load hits
    both equally.
    """
    from repro.mem.index import set_index_enabled

    idx_walls, scan_walls = [], []
    idx_res = scan_res = None
    try:
        for _ in range(repeats):
            set_index_enabled(True)
            t0 = time.perf_counter()
            idx_res = run_experiment(cfg)
            idx_walls.append(time.perf_counter() - t0)

            set_index_enabled(False)
            t0 = time.perf_counter()
            scan_res = run_experiment(cfg)
            scan_walls.append(time.perf_counter() - t0)
    finally:
        set_index_enabled(True)

    identical = (
        idx_res.makespan == scan_res.makespan
        and idx_res.events_processed == scan_res.events_processed
        and idx_res.pages_read == scan_res.pages_read
        and idx_res.pages_written == scan_res.pages_written
        and idx_res.completions == scan_res.completions
    )
    idx_best, scan_best = min(idx_walls), min(scan_walls)
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "indexed_wall_s_min": idx_best,
        "scan_wall_s_min": scan_best,
        "indexed_vs_scan_speedup": scan_best / idx_best,
        "baseline_pr3_wall_s": BASELINE_PR3_SINGLE_CELL_WALL_S,
        "speedup_vs_pr3_baseline": BASELINE_PR3_SINGLE_CELL_WALL_S
        / idx_best,
        "speedup_target": 1.3,
        "meets_target": BASELINE_PR3_SINGLE_CELL_WALL_S / idx_best >= 1.3,
        "simulation_identical": identical,
        "events_processed": idx_res.events_processed,
        "makespan_s": idx_res.makespan,
    }


def bench_cache(scale: float, seeds, jobs: int = 1) -> dict:
    """Cold vs warm cell-cache round trip on the multi-seed sweep.

    Runs the same sweep twice against a scratch cache directory: the
    cold pass simulates and stores every cell, the warm pass must serve
    them all back (skip fraction 1.0) and merge to byte-identical
    output outside the ``"_perf"`` quarantine.
    """
    import shutil
    import tempfile

    from repro.perf.cache import CellCache, set_default_cache

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    tmp = tempfile.mkdtemp(prefix="cellcache-bench-")
    try:
        cold_cache = CellCache(root=tmp)
        set_default_cache(cold_cache)
        t0 = time.perf_counter()
        cold = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        cold_s = time.perf_counter() - t0

        warm_cache = CellCache(root=tmp)
        set_default_cache(warm_cache)
        t0 = time.perf_counter()
        warm = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        warm_s = time.perf_counter() - t0
    finally:
        set_default_cache(None)
        shutil.rmtree(tmp, ignore_errors=True)

    identical = _canon(cold) == _canon(warm)
    warm_total = warm_cache.hits + warm_cache.misses
    skipped = warm_cache.hits / warm_total if warm_total else 0.0
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": warm_total,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else None,
        "cold_misses": cold_cache.misses,
        "cold_stores": cold_cache.stores,
        "warm_hits": warm_cache.hits,
        "warm_misses": warm_cache.misses,
        "cells_skipped_frac": skipped,
        "skip_target_frac": CACHE_SKIP_TARGET,
        "meets_skip_target": skipped >= CACHE_SKIP_TARGET,
        "cached_fresh_identical": identical,
    }


def bench_fastpath(cfg: GangConfig, repeats: int = 3) -> dict:
    """Fast-path vs per-chunk wall clock on one cell (identity checked).

    Slow mode (:func:`repro.sim.set_fast_path_enabled` off) restores
    the historical per-chunk execution on the same code, so the
    comparison isolates resident-run batching, coalesced CPU timeouts,
    and the dispatch shortcuts the fast path unlocks.  The variants
    alternate within each repeat so drifting host load hits both
    equally.  Identity deliberately excludes ``events_processed``: the
    fast path exists to delete bookkeeping events, so the count must
    *drop* — matching would mean it never engaged.
    """
    from repro.gang.job import Job
    from repro.sim import set_fast_path_enabled

    fast_walls, slow_walls = [], []
    fast_res = slow_res = None
    try:
        for _ in range(repeats):
            set_fast_path_enabled(True)
            Job._next_jid = 1
            t0 = time.perf_counter()
            fast_res = run_experiment(cfg)
            fast_walls.append(time.perf_counter() - t0)

            set_fast_path_enabled(False)
            Job._next_jid = 1
            t0 = time.perf_counter()
            slow_res = run_experiment(cfg)
            slow_walls.append(time.perf_counter() - t0)
    finally:
        set_fast_path_enabled(True)

    identical = (
        fast_res.makespan == slow_res.makespan
        and fast_res.completions == slow_res.completions
        and fast_res.pages_read == slow_res.pages_read
        and fast_res.pages_written == slow_res.pages_written
        and fast_res.switch_count == slow_res.switch_count
        and fast_res.vmm_stats == slow_res.vmm_stats
        and fast_res.evicted == slow_res.evicted
    )
    fast_best, slow_best = min(fast_walls), min(slow_walls)
    speedup_vs_pr4 = BASELINE_PR4_SINGLE_CELL_WALL_S / fast_best
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "fast_wall_s_min": fast_best,
        "slow_wall_s_min": slow_best,
        "fast_vs_slow_speedup": slow_best / fast_best,
        "baseline_pr4_wall_s": BASELINE_PR4_SINGLE_CELL_WALL_S,
        "speedup_vs_pr4_baseline": speedup_vs_pr4,
        "speedup_target": 1.5,
        "meets_target": speedup_vs_pr4 >= 1.5,
        "simulation_identical": identical,
        # two counters, two questions: *dispatched* (loop iterations)
        # legitimately drops when batching engages; *simulated*
        # (logical events, dispatched + absorbed) must stay identical
        # or events really were lost
        "events_fast": fast_res.events_dispatched,
        "events_slow": slow_res.events_dispatched,
        "events_dropped": fast_res.events_dispatched
        < slow_res.events_dispatched,
        "events_simulated_fast": fast_res.events_simulated,
        "events_simulated_slow": slow_res.events_simulated,
        "makespan_s": fast_res.makespan,
    }


def bench_batch_advance(cfg: GangConfig, repeats: int = 3) -> dict:
    """Batch-advance vs scalar-dispatch wall clock on one cell.

    Scalar mode (:func:`repro.sim.set_batch_advance_enabled` off) keeps
    the PR 5 fast path but dispatches every event through the heap loop,
    so the comparison isolates the batch-advance tier itself.  Identity
    covers every simulation output *plus* ``events_simulated`` — the
    logical count (dispatched + absorbed) must be mode-invariant, which
    is exactly the accounting that lets ``events_dispatched`` drop
    without reading as event loss.
    """
    from repro.gang.job import Job
    from repro.sim import (
        compiled_enabled,
        have_numba,
        set_batch_advance_enabled,
    )

    batch_walls, scalar_walls = [], []
    batch_res = scalar_res = None
    try:
        for _ in range(repeats):
            set_batch_advance_enabled(True)
            Job._next_jid = 1
            t0 = time.perf_counter()
            batch_res = run_experiment(cfg)
            batch_walls.append(time.perf_counter() - t0)

            set_batch_advance_enabled(False)
            Job._next_jid = 1
            t0 = time.perf_counter()
            scalar_res = run_experiment(cfg)
            scalar_walls.append(time.perf_counter() - t0)
    finally:
        set_batch_advance_enabled(True)

    identical = (
        batch_res.makespan == scalar_res.makespan
        and batch_res.completions == scalar_res.completions
        and batch_res.pages_read == scalar_res.pages_read
        and batch_res.pages_written == scalar_res.pages_written
        and batch_res.switch_count == scalar_res.switch_count
        and batch_res.vmm_stats == scalar_res.vmm_stats
        and batch_res.evicted == scalar_res.evicted
        and batch_res.fault_summary == scalar_res.fault_summary
        and batch_res.events_simulated == scalar_res.events_simulated
    )
    batch_best, scalar_best = min(batch_walls), min(scalar_walls)
    speedup_vs_pr5 = BASELINE_PR5_SINGLE_CELL_WALL_S / batch_best
    return {
        "label": cfg.label(),
        "scale": cfg.scale,
        "repeats": repeats,
        "fast_wall_s_min": batch_best,
        "scalar_wall_s_min": scalar_best,
        "batch_vs_scalar_speedup": scalar_best / batch_best,
        "baseline_pr5_wall_s": BASELINE_PR5_SINGLE_CELL_WALL_S,
        "speedup_vs_pr5_baseline": speedup_vs_pr5,
        "speedup_target": 5.0,
        "meets_target": speedup_vs_pr5 >= 5.0,
        "simulation_identical": identical,
        "events_simulated": batch_res.events_simulated,
        "events_dispatched_fast": batch_res.events_dispatched,
        "events_dispatched_scalar": scalar_res.events_dispatched,
        "events_batched": batch_res.events_dispatched
        < scalar_res.events_dispatched,
        "numba_available": have_numba(),
        "compiled_tier_on": compiled_enabled(),
        "makespan_s": batch_res.makespan,
    }


def bench_fig6_smoke_floor(repeats: int = 3) -> dict:
    """Batch-advance wall clock of the fig6 LRU cell, min-of-N.

    Stored in ``BENCH_PR7.json`` by full runs; a ``--smoke --section
    pr7`` run re-measures the same cell and **fails** (unlike the
    advisory PR 5 gate) when it regresses past the floor by more than
    :data:`SMOKE_REGRESSION_FACTOR`.
    """
    from repro.gang.job import Job

    walls = []
    for _ in range(repeats):
        Job._next_jid = 1
        t0 = time.perf_counter()
        run_experiment(FIG6_LRU)
        walls.append(time.perf_counter() - t0)
    return {
        "label": FIG6_LRU.label(),
        "scale": FIG6_LRU.scale,
        "repeats": repeats,
        "floor_wall_s": min(walls),
        "regression_factor": SMOKE_REGRESSION_FACTOR,
    }


def check_fig6_regression(measured_wall_s: float) -> dict:
    """Hard perf gate: compare a fig6 measurement to the PR 7 floor.

    Reads the floor from the *committed* ``BENCH_PR7.json`` at the repo
    root and fails the smoke run (``::error::`` + non-zero exit in
    ``main``) on regression beyond :data:`SMOKE_REGRESSION_FACTOR`.
    Missing or malformed floors disarm the gate silently — a fresh
    checkout without a recorded floor must not fail CI.
    """
    ref = REPO_ROOT / "BENCH_PR7.json"
    try:
        floor = json.loads(ref.read_text())["smoke_floor"]["floor_wall_s"]
    except (OSError, KeyError, TypeError, ValueError):
        return {"fig6_wall_s": measured_wall_s, "floor_wall_s": None,
                "regressed": False}
    limit = floor * SMOKE_REGRESSION_FACTOR
    regressed = measured_wall_s > limit
    if regressed:
        print(
            f"::error::fig6 LRU cell took {measured_wall_s:.3f}s, above "
            f"the recorded floor {floor:.3f}s x{SMOKE_REGRESSION_FACTOR} "
            f"= {limit:.3f}s — performance regression"
        )
    return {
        "fig6_wall_s": measured_wall_s,
        "floor_wall_s": floor,
        "limit_wall_s": limit,
        "regressed": regressed,
    }


def _find_chaos_plan(n_cells: int):
    """Seed-search a crash plan that makes quarantine impossible.

    Returns ``(plan, schedule)``: 1–3 crashes at attempt 0 and **clean
    draws on every retry attempt any cell can reach**.  The latter
    matters because a spontaneous pool break charges every in-flight
    cell one attempt — with slow simulation cells, every crash taxes
    ``jobs - 1`` innocents too — so with at most 3 breaks no cell can
    ever see an attempt past 4, all draws through attempt 5 are clean
    by construction, and a retry budget of 8 is never exhausted.
    Crash-only by design: crash containment is timing-independent, so
    verdicts stay stable on noisy CI runners (hang cancellation is
    deadline-driven and covered by ``tests/perf/test_supervisor.py``).
    """
    from repro.faults.worker import WorkerFaultPlan

    for seed in range(50000):
        cand = WorkerFaultPlan(crash_rate=0.1, seed=seed)
        sched = cand.injections(n_cells)
        if not 1 <= len(sched) <= 3:
            continue
        if any(cand.decide(i, a) is not None
               for i in range(n_cells) for a in range(1, 6)):
            continue
        return cand, sched
    raise RuntimeError(  # pragma: no cover - search window is generous
        "no suitable chaos seed in search window")


def bench_chaos(scale: float, seeds, jobs: int = 2,
                max_retries: int = 8) -> dict:
    """Fault-free serial baseline vs supervised sweep under crashes.

    Uses the :func:`_find_chaos_plan` crash schedule, under which
    quarantine is provably impossible (see its docstring), so the
    supervised run must absorb at least one pool rebuild, quarantine
    nothing, and merge to byte-identical output.
    """
    from repro.perf.supervisor import (
        Supervisor,
        SupervisorConfig,
        set_default_supervisor,
    )

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    n_cells = 3 * len(seeds)  # replicate runs 3 policies per seed
    plan, schedule = _find_chaos_plan(n_cells)

    t0 = time.perf_counter()
    baseline = multi_seed.replicate(base, seeds=seeds, jobs=1)
    baseline_s = time.perf_counter() - t0

    supervisor = Supervisor(SupervisorConfig(
        max_retries=max_retries, worker_faults=plan,
        backoff_base_s=0.0, backoff_max_s=0.0, poll_interval_s=0.02))
    set_default_supervisor(supervisor)
    try:
        t0 = time.perf_counter()
        chaos = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        chaos_s = time.perf_counter() - t0
    finally:
        set_default_supervisor(None)

    identical = (
        json.dumps(_sanitise(baseline), sort_keys=True)
        == json.dumps(_sanitise(chaos), sort_keys=True)
    )
    stats = dict(supervisor.stats)
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": n_cells,
        "jobs": jobs,
        "fault_plan": {"crash_rate": plan.crash_rate, "seed": plan.seed},
        "injected_crashes": len(schedule),
        "max_retries": max_retries,
        "baseline_wall_s": baseline_s,
        "chaos_wall_s": chaos_s,
        "supervisor_stats": stats,
        "survived_rebuilds": stats["rebuilds"] >= 1,
        "zero_quarantined": stats["quarantined"] == 0,
        "chaos_identical": identical,
    }


def bench_sweep_obs(scale: float, seeds, jobs: int = 4,
                    repeats: int = 3) -> dict:
    """Instrumented vs plain multi-seed sweep: identity + aggregation.

    Runs the (seed, mode) cell grid four ways — obs-off serial,
    obs-off ``jobs=N``, obs-on serial, obs-on ``jobs=N`` with a
    :class:`~repro.obs.sweep.SweepObserver` installed — and asserts:

    * all four merge byte-identically outside ``"_perf"``,
    * the sweep-level ``summary()`` equals the elementwise sum of the
      per-cell summaries shipped through ``"_perf"["obs"]``, exactly,
    * the merged registry's counters agree with the summed view
      (an independent cross-check through a different code path),
    * the merged Chrome trace carries one distinct track group
      (trace process) per cell,
    * the obs-on serial overhead against obs-off serial fits the
      sweep budget: ≤``OBS_OVERHEAD_BUDGET`` relative *or*
      ≤``OBS_SWEEP_OVERHEAD_PER_EVENT_US`` per simulated event
      (serial-vs-serial so pool scheduling noise stays out of the
      measurement; the parallel walls are reported alongside).

    The two serial walls the overhead ratio divides are min-of-N
    (``repeats`` runs per mode, the variants alternated within each
    repeat so host-load drift cannot land on one side), and the
    reported overhead is clamped
    at zero with a ``noise`` flag: a single-run ratio once recorded
    ``obs_overhead_frac = -0.19`` — the instrumented sweep "19% faster
    than uninstrumented", which is not a property telemetry can have,
    just host-load noise swamping a sub-percent effect.  The raw
    signed ratio is preserved in ``*_raw`` so the noise floor stays
    visible.
    """
    from repro.obs import SweepObserver, chrome_trace, set_default_sweep
    from repro.obs.export import summary as registry_summary
    from repro.obs.sweep import merge_summaries
    from repro.perf.pool import run_cells

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    cells = multi_seed.cell_grid(base, "so/ao/ai/bg", seeds)

    # alternate the two serial variants within each repeat (same idiom
    # as bench_obs_overhead) so drifting host load hits both equally,
    # then take min-of-N per mode
    off_serial_walls, on_serial_walls = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        off_serial = run_cells(cells, jobs=1)
        off_serial_walls.append(time.perf_counter() - t0)

        serial_obs = SweepObserver()
        set_default_sweep(serial_obs)
        try:
            t0 = time.perf_counter()
            on_serial = run_cells(cells, jobs=1)
            on_serial_walls.append(time.perf_counter() - t0)
        finally:
            set_default_sweep(None)
    off_serial_s = min(off_serial_walls)
    on_serial_s = min(on_serial_walls)

    t0 = time.perf_counter()
    off_par = run_cells(cells, jobs=jobs)
    off_par_s = time.perf_counter() - t0

    sweep = SweepObserver()
    set_default_sweep(sweep)
    try:
        t0 = time.perf_counter()
        on_par = run_cells(cells, jobs=jobs)
        on_par_s = time.perf_counter() - t0
    finally:
        set_default_sweep(None)

    identical = (_canon(off_serial) == _canon(off_par)
                 == _canon(on_serial) == _canon(on_par))

    per_cell = [
        r["_perf"]["obs"] for r in on_par.values()
        if isinstance(r, dict) and "obs" in r.get("_perf", {})
    ]
    summary_equals = (
        len(per_cell) == len(cells)
        and sweep.summary() == merge_summaries(per_cell)
    )
    counters_equal = (
        registry_summary(sweep.registry)["counters"]
        == sweep.summary()["counters"]
    )
    trace = chrome_trace(sweep.registry)
    tracks = sum(1 for e in trace["traceEvents"]
                 if e.get("name") == "process_name")

    events = sum(
        r["events_simulated"] for r in on_serial.values()
        if isinstance(r, dict) and "events_simulated" in r
    )
    raw_overhead = (on_serial_s / off_serial_s - 1.0
                    if off_serial_s > 0 else None)
    raw_per_event_us = ((on_serial_s - off_serial_s) / events * 1e6
                        if events else None)
    # a negative measured "overhead" is host noise, not speedup;
    # report 0 with the noise flag up and keep the signed raw value
    noise = raw_overhead is not None and raw_overhead < 0.0
    overhead = (max(raw_overhead, 0.0)
                if raw_overhead is not None else None)
    per_event_us = (max(raw_per_event_us, 0.0)
                    if raw_per_event_us is not None else None)
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": len(cells),
        "jobs": jobs,
        "serial_repeats": repeats,
        "off_serial_wall_s": off_serial_s,
        "off_serial_wall_s_all": off_serial_walls,
        "off_parallel_wall_s": off_par_s,
        "on_serial_wall_s": on_serial_s,
        "on_serial_wall_s_all": on_serial_walls,
        "on_parallel_wall_s": on_par_s,
        "records_identical": identical,
        "cells_with_telemetry": sweep.cell_count,
        "summary_equals_cell_sum": summary_equals,
        "registry_counters_equal": counters_equal,
        "distinct_trace_tracks": tracks,
        "one_track_per_cell": tracks == len(cells),
        "events_simulated": events,
        "obs_overhead_frac": overhead,
        "obs_overhead_frac_raw": raw_overhead,
        "noise": noise,
        "overhead_budget_frac": OBS_OVERHEAD_BUDGET,
        "obs_overhead_per_event_us": per_event_us,
        "obs_overhead_per_event_us_raw": raw_per_event_us,
        "per_event_budget_us": OBS_SWEEP_OVERHEAD_PER_EVENT_US,
        "within_budget": overhead is not None
        and (overhead <= OBS_OVERHEAD_BUDGET
             or per_event_us <= OBS_SWEEP_OVERHEAD_PER_EVENT_US),
    }


def bench_chaos_events(scale: float, seeds, jobs: int = 2,
                       max_retries: int = 8,
                       trace_out: str = None) -> dict:
    """The chaos sweep with full sweep observability on.

    Re-runs the :func:`bench_chaos` scenario (injected worker crashes
    under supervision) with a sweep observer and the supervisor event
    log active, and asserts the *structured log names every fault the
    counters count*: one ``retry`` entry per counted retry (each
    naming its cell key and attempt), one ``pool_rebuild`` entry per
    counted rebuild.  ``trace_out`` additionally writes the merged
    cross-cell Chrome trace (the CI workflow uploads it as an
    artifact).
    """
    from repro.obs import SweepObserver, set_default_sweep, \
        write_chrome_trace
    from repro.perf.supervisor import (
        Supervisor,
        SupervisorConfig,
        set_default_supervisor,
    )

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    n_cells = 3 * len(seeds)
    plan, schedule = _find_chaos_plan(n_cells)

    baseline = multi_seed.replicate(base, seeds=seeds, jobs=1)

    supervisor = Supervisor(SupervisorConfig(
        max_retries=max_retries, worker_faults=plan, journal=True,
        backoff_base_s=0.0, backoff_max_s=0.0, poll_interval_s=0.02))
    sweep = SweepObserver()
    set_default_supervisor(supervisor)
    set_default_sweep(sweep)
    try:
        t0 = time.perf_counter()
        chaos = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        chaos_s = time.perf_counter() - t0
    finally:
        set_default_supervisor(None)
        set_default_sweep(None)

    stats = dict(supervisor.stats)
    counts = supervisor.events.counts()
    retries = supervisor.events.named("retry")
    report = {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": n_cells,
        "jobs": jobs,
        "fault_plan": {"crash_rate": plan.crash_rate, "seed": plan.seed},
        "injected_crashes": len(schedule),
        "chaos_wall_s": chaos_s,
        "supervisor_stats": stats,
        "event_counts": counts,
        "event_log_path": str(supervisor.events.path),
        "every_retry_logged": counts.get("retry", 0) == stats["retries"],
        "every_rebuild_logged":
            counts.get("pool_rebuild", 0) == stats["rebuilds"],
        "retries_name_cells": all(e.get("key") for e in retries),
        "cells_with_telemetry": sweep.cell_count,
        "survived_rebuilds": stats["rebuilds"] >= 1,
        "zero_quarantined": stats["quarantined"] == 0,
        "chaos_identical": _canon(baseline) == _canon(chaos),
    }
    if trace_out:
        path = write_chrome_trace(sweep.registry, trace_out)
        report["trace_out"] = str(path)
    return report


def bench_backends(scale: float, seeds, jobs: int = 4,
                   repeats: int = 2) -> dict:
    """Serial vs legacy pool vs persistent executor on one sweep grid.

    Runs the (seed, mode) cell grid through all three registered
    backends — serial in-process, the spawn-per-sweep pool, and the
    persistent warm-worker executor — min-of-N wall each, asserts
    three-way byte-identity outside ``"_perf"`` plus declaration-order
    merging, and scores the persistent executor against the serial
    wall (``sweep_speedup``) and the legacy pool
    (``speedup_vs_pool``).

    A throwaway warm-up sweep runs first so worker spawn cost is
    amortised the way real multi-sweep sessions amortise it — the warm
    pool *is* the tentpole; the cold start is reported separately as
    ``warmup_wall_s``.  ``workers_stayed_warm`` proves the measured
    persistent sweeps were served by the pre-warmed processes (zero
    new spawns after warm-up).  The ≥4-CPU honesty verdict
    (``meets_target``) is the caller's job.
    """
    from repro.perf.backend import BACKENDS
    from repro.perf.persistent import get_default_executor
    from repro.perf.pool import run_cells

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    cells = multi_seed.cell_grid(base, "so/ao/ai/bg", seeds)

    executor = get_default_executor()
    t0 = time.perf_counter()
    run_cells(cells[:jobs], jobs=jobs, backend="persistent")
    warmup_s = time.perf_counter() - t0
    spawns_before = executor.stats["spawns"]

    walls, walls_all, canons = {}, {}, {}
    order_preserved = True
    for name, run_jobs in (("serial", 1), ("pool", jobs),
                           ("persistent", jobs)):
        runs = []
        merged = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            merged = run_cells(cells, jobs=run_jobs, backend=name)
            runs.append(time.perf_counter() - t0)
        walls[name] = min(runs)
        walls_all[name] = runs
        canons[name] = _canon(merged)
        order_preserved = (order_preserved
                           and list(merged) == [c.key for c in cells])

    stats = dict(executor.stats)
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": len(cells),
        "jobs": jobs,
        "repeats": repeats,
        "registered_backends": sorted(BACKENDS),
        "warmup_wall_s": warmup_s,
        "serial_wall_s": walls["serial"],
        "pool_wall_s": walls["pool"],
        "persistent_wall_s": walls["persistent"],
        "wall_s_all": walls_all,
        "sweep_speedup": (walls["serial"] / walls["persistent"]
                          if walls["persistent"] > 0 else None),
        "speedup_vs_pool": (walls["pool"] / walls["persistent"]
                            if walls["persistent"] > 0 else None),
        "speedup_target": SWEEP_SPEEDUP_TARGET,
        "records_identical": (canons["serial"] == canons["pool"]
                              == canons["persistent"]),
        "merge_order_preserved": order_preserved,
        "workers_stayed_warm": stats["spawns"] == spawns_before,
        "executor_stats": stats,
    }


def bench_backend_chaos(scale: float, seeds, jobs: int = 2,
                        max_retries: int = 8) -> dict:
    """The :func:`bench_chaos` scenario on the persistent backend.

    Same provably-quarantine-free crash plan, but the supervisor must
    now answer each injected crash *surgically*: respawn exactly the
    worker that died (``respawns`` ≥ 1) and never tear down the world
    (``rebuilds`` == 0) — the legacy pool's all-workers rebuild is the
    failure mode the persistent loop exists to avoid — while still
    merging byte-identical to the fault-free serial baseline with
    nothing quarantined.
    """
    from repro.perf.backend import set_default_backend
    from repro.perf.supervisor import (
        Supervisor,
        SupervisorConfig,
        set_default_supervisor,
    )

    base = GangConfig("LU", "B", nprocs=1, scale=scale)
    n_cells = 3 * len(seeds)
    plan, schedule = _find_chaos_plan(n_cells)

    baseline = multi_seed.replicate(base, seeds=seeds, jobs=1)

    supervisor = Supervisor(SupervisorConfig(
        max_retries=max_retries, worker_faults=plan,
        backoff_base_s=0.0, backoff_max_s=0.0, poll_interval_s=0.02))
    set_default_supervisor(supervisor)
    set_default_backend("persistent")
    try:
        t0 = time.perf_counter()
        chaos = multi_seed.replicate(base, seeds=seeds, jobs=jobs)
        chaos_s = time.perf_counter() - t0
    finally:
        set_default_backend(None)
        set_default_supervisor(None)

    stats = dict(supervisor.stats)
    return {
        "label": f"multi_seed {base.label()} seeds={list(seeds)}",
        "cells": n_cells,
        "jobs": jobs,
        "fault_plan": {"crash_rate": plan.crash_rate, "seed": plan.seed},
        "injected_crashes": len(schedule),
        "max_retries": max_retries,
        "chaos_wall_s": chaos_s,
        "supervisor_stats": stats,
        "respawned_surgically": stats["respawns"] >= 1,
        "no_world_rebuilds": stats["rebuilds"] == 0,
        "zero_quarantined": stats["quarantined"] == 0,
        "chaos_identical": _canon(baseline) == _canon(chaos),
    }


def bench_fastpath_smoke_floor(repeats: int = 3) -> dict:
    """Fast-mode wall clock of the CI smoke cell, min-of-N.

    Stored in ``BENCH_PR5.json`` by full runs; a later ``--smoke`` run
    compares its own measurement against this committed floor and
    prints a GitHub-actions ``::warning::`` — never a failure, CI
    runners are too noisy for a hard gate — when it regresses by more
    than :data:`SMOKE_REGRESSION_FACTOR`.
    """
    from repro.gang.job import Job

    walls = []
    for _ in range(repeats):
        Job._next_jid = 1
        t0 = time.perf_counter()
        run_experiment(SMOKE_CELL)
        walls.append(time.perf_counter() - t0)
    return {
        "label": SMOKE_CELL.label(),
        "scale": SMOKE_CELL.scale,
        "repeats": repeats,
        "floor_wall_s": min(walls),
        "regression_factor": SMOKE_REGRESSION_FACTOR,
    }


def check_smoke_regression(measured_wall_s: float) -> dict:
    """Advisory perf gate: compare a smoke measurement to the floor.

    Reads the floor from the *committed* ``BENCH_PR5.json`` at the repo
    root (not ``--pr5-out``, which CI points at a scratch file) and
    emits a ``::warning::`` annotation on regression.  Missing or
    malformed floors disarm the gate silently — a fresh checkout
    without a recorded floor must not fail CI.
    """
    ref = REPO_ROOT / "BENCH_PR5.json"
    try:
        floor = json.loads(ref.read_text())["smoke_floor"]["floor_wall_s"]
    except (OSError, KeyError, TypeError, ValueError):
        return {"smoke_wall_s": measured_wall_s, "floor_wall_s": None,
                "regressed": False}
    limit = floor * SMOKE_REGRESSION_FACTOR
    regressed = measured_wall_s > limit
    if regressed:
        print(
            f"::warning::fast-path smoke cell took {measured_wall_s:.3f}s,"
            f" above the recorded floor {floor:.3f}s "
            f"x{SMOKE_REGRESSION_FACTOR} = {limit:.3f}s — possible "
            f"performance regression (advisory only)"
        )
    return {
        "smoke_wall_s": measured_wall_s,
        "floor_wall_s": floor,
        "limit_wall_s": limit,
        "regressed": regressed,
    }


def _jobs_arg(text: str) -> int:
    """``--jobs`` parser: a positive int or ``auto`` (host CPU count)."""
    from repro.perf.backend import resolve_jobs

    try:
        return resolve_jobs(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny scale, correctness only; for CI")
    ap.add_argument(
        "--section",
        choices=("pr2", "pr3", "pr4", "pr5", "pr6", "pr7", "pr8",
                 "pr10", "all"),
        default="pr10",
        help="benchmark section(s) to run; defaults to the current "
             "PR's section so routine runs refresh only its BENCH "
             "file instead of rewriting the historical reports")
    ap.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR2.json"))
    ap.add_argument("--obs-out", default=str(REPO_ROOT / "BENCH_PR3.json"))
    ap.add_argument("--pr4-out", default=str(REPO_ROOT / "BENCH_PR4.json"))
    ap.add_argument("--pr5-out", default=str(REPO_ROOT / "BENCH_PR5.json"))
    ap.add_argument("--pr6-out", default=str(REPO_ROOT / "BENCH_PR6.json"))
    ap.add_argument("--pr7-out", default=str(REPO_ROOT / "BENCH_PR7.json"))
    ap.add_argument("--pr8-out", default=str(REPO_ROOT / "BENCH_PR8.json"))
    ap.add_argument("--pr8-trace-out", default=None,
                    help="also write the merged chaos-sweep Chrome "
                         "trace here (CI uploads it as an artifact)")
    ap.add_argument("--pr10-out",
                    default=str(REPO_ROOT / "BENCH_PR10.json"))
    ap.add_argument(
        "--require-speedup", action="store_true",
        help="treat the pr10 sweep-speedup floor as a hard gate even "
             "though it is advisory by default (the CI 4-vCPU leg "
             "sets this; pointless on hosts with fewer than "
             f"{SPEEDUP_MIN_CPUS} CPUs)")
    ap.add_argument(
        "--jobs", type=_jobs_arg, default=4,
        help="worker count for sweep benchmarks; 'auto' = host CPU "
             "count")
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="repeat count for full-mode single-cell benchmarks; raise "
             "on noisy hosts so min-of-N approaches the quiet floor")
    args = ap.parse_args(argv)

    wanted = {s: args.section in (s, "all")
              for s in ("pr2", "pr3", "pr4", "pr5", "pr6", "pr7", "pr8",
                        "pr10")}
    mode = "smoke" if args.smoke else "full"

    def emit(report: dict, path: str) -> None:
        # every BENCH file carries the fig6 trajectory (see
        # fig6_trajectory) unless the section appended its own
        report.setdefault("fig6_trajectory", fig6_trajectory())
        out = Path(path)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        print(f"\nwritten to {out}")

    if wanted["pr2"]:
        if args.smoke:
            single = bench_single_cell(SMOKE_CELL, repeats=1)
            single.pop("baseline_wall_s")
            single.pop("speedup_vs_baseline")
            sweep = bench_sweep(scale=0.05, seeds=(1, 2), jobs=2)
        else:
            single = bench_single_cell(FIG6_LRU, repeats=args.repeats)
            sweep = bench_sweep(scale=0.1, seeds=(1, 2, 3, 4),
                                jobs=args.jobs)
        emit({
            "bench": "PR2 parallel execution + engine hot path",
            "mode": mode,
            "host_cpu_count": os.cpu_count(),
            "single_cell": single,
            "sweep": sweep,
        }, args.out)
        if not sweep["serial_parallel_identical"]:
            print("FAIL: parallel sweep output diverged from serial",
                  file=sys.stderr)
            return 1

    if wanted["pr3"]:
        obs_bench = bench_obs_overhead(
            SMOKE_CELL if args.smoke else FIG6_LRU,
            repeats=1 if args.smoke else args.repeats)
        emit({
            "bench": "PR3 telemetry subsystem overhead",
            "mode": mode,
            "host_cpu_count": os.cpu_count(),
            "obs_overhead": obs_bench,
        }, args.obs_out)
        if not obs_bench["simulation_identical"]:
            print("FAIL: instrumented run diverged from uninstrumented",
                  file=sys.stderr)
            return 1
        if not args.smoke and not obs_bench["within_budget"]:
            print(
                f"FAIL: telemetry overhead "
                f"{obs_bench['obs_overhead_frac']:.1%} "
                f"({obs_bench['obs_overhead_per_event_us']:.2f} us/event) "
                f"exceeds both the {OBS_OVERHEAD_BUDGET:.0%} relative and "
                f"{OBS_OVERHEAD_BUDGET_PER_EVENT_US:.1f} us/event budgets",
                file=sys.stderr,
            )
            return 1

    if wanted["pr4"]:
        if args.smoke:
            index_bench = bench_index(SMOKE_CELL, repeats=1)
            index_bench.pop("baseline_pr3_wall_s")
            index_bench.pop("speedup_vs_pr3_baseline")
            index_bench.pop("speedup_target")
            index_bench.pop("meets_target")
            cache_bench = bench_cache(scale=0.05, seeds=(1, 2))
        else:
            index_bench = bench_index(FIG6_LRU, repeats=args.repeats)
            cache_bench = bench_cache(scale=0.1, seeds=(1, 2, 3, 4))
        emit({
            "bench": "PR4 page-state index + reclaim fast path "
                     "+ cell cache",
            "mode": mode,
            "host_cpu_count": os.cpu_count(),
            "index": index_bench,
            "cell_cache": cache_bench,
        }, args.pr4_out)
        if not index_bench["simulation_identical"]:
            print("FAIL: indexed run diverged from scan-mode run",
                  file=sys.stderr)
            return 1
        if not cache_bench["cached_fresh_identical"]:
            print("FAIL: warm-cache sweep output diverged from cold",
                  file=sys.stderr)
            return 1
        if not cache_bench["meets_skip_target"]:
            print(
                f"FAIL: warm-cache rerun skipped only "
                f"{cache_bench['cells_skipped_frac']:.0%} of cells "
                f"(target {CACHE_SKIP_TARGET:.0%})",
                file=sys.stderr,
            )
            return 1

    if wanted["pr5"]:
        if args.smoke:
            fast_bench = bench_fastpath(SMOKE_CELL, repeats=1)
            fast_bench.pop("baseline_pr4_wall_s")
            fast_bench.pop("speedup_vs_pr4_baseline")
            fast_bench.pop("speedup_target")
            fast_bench.pop("meets_target")
            # advisory regression check against the committed floor,
            # before --pr5-out possibly overwrites it
            gate = check_smoke_regression(fast_bench["fast_wall_s_min"])
            report = {
                "bench": "PR5 steady-state execution fast path",
                "mode": mode,
                "host_cpu_count": os.cpu_count(),
                "fast_path": fast_bench,
                "regression_gate": gate,
            }
        else:
            fast_bench = bench_fastpath(FIG6_LRU, repeats=args.repeats)
            report = {
                "bench": "PR5 steady-state execution fast path",
                "mode": mode,
                "host_cpu_count": os.cpu_count(),
                "fast_path": fast_bench,
                "smoke_floor": bench_fastpath_smoke_floor(),
            }
        emit(report, args.pr5_out)
        if not fast_bench["simulation_identical"]:
            print("FAIL: fast-path run diverged from slow-mode run",
                  file=sys.stderr)
            return 1
        if not fast_bench["events_dropped"]:
            print("FAIL: fast path processed as many events as slow "
                  "mode — it never engaged", file=sys.stderr)
            return 1

    if wanted["pr6"]:
        if args.smoke:
            chaos_bench = bench_chaos(scale=0.05, seeds=(1, 2), jobs=2)
        else:
            chaos_bench = bench_chaos(scale=0.1, seeds=(1, 2, 3, 4),
                                      jobs=args.jobs)
        emit({
            "bench": "PR6 resilient sweep execution (supervisor)",
            "mode": mode,
            "host_cpu_count": os.cpu_count(),
            "chaos": chaos_bench,
        }, args.pr6_out)
        if not chaos_bench["chaos_identical"]:
            print("FAIL: fault-injected supervised sweep diverged from "
                  "the fault-free serial run", file=sys.stderr)
            return 1
        if not chaos_bench["zero_quarantined"]:
            print(
                f"FAIL: supervised sweep quarantined "
                f"{chaos_bench['supervisor_stats']['quarantined']} "
                f"cells under the injected crash plan",
                file=sys.stderr,
            )
            return 1
        if not chaos_bench["survived_rebuilds"]:
            print("FAIL: no pool rebuild happened — the crash plan "
                  "never engaged", file=sys.stderr)
            return 1

    if wanted["pr7"]:
        if args.smoke:
            # cheap identity check on the smoke cell, then a hard
            # regression gate on the real fig6 cell against the
            # committed floor (before --pr7-out possibly overwrites it)
            ba_bench = bench_batch_advance(SMOKE_CELL, repeats=1)
            ba_bench.pop("baseline_pr5_wall_s")
            ba_bench.pop("speedup_vs_pr5_baseline")
            ba_bench.pop("speedup_target")
            ba_bench.pop("meets_target")
            gate = check_fig6_regression(
                bench_fig6_smoke_floor(repeats=2)["floor_wall_s"])
            report = {
                "bench": "PR7 vectorized batch-advance event core",
                "mode": mode,
                "host_cpu_count": os.cpu_count(),
                "batch_advance": ba_bench,
                "regression_gate": gate,
            }
        else:
            ba_bench = bench_batch_advance(FIG6_LRU, repeats=args.repeats)
            gate = None
            report = {
                "bench": "PR7 vectorized batch-advance event core",
                "mode": mode,
                "host_cpu_count": os.cpu_count(),
                "batch_advance": ba_bench,
                "smoke_floor": bench_fig6_smoke_floor(),
                "fig6_trajectory": fig6_trajectory(
                    "PR7", ba_bench["fast_wall_s_min"]),
            }
        emit(report, args.pr7_out)
        if not ba_bench["simulation_identical"]:
            print("FAIL: batch-advance run diverged from scalar-dispatch "
                  "run", file=sys.stderr)
            return 1
        if ba_bench["events_batched"] <= 0:
            print("FAIL: batch-advance dispatched as many events as the "
                  "scalar loop — it never engaged", file=sys.stderr)
            return 1
        if gate is not None and gate["regressed"]:
            print(
                f"FAIL: fig6 LRU cell took {gate['fig6_wall_s']:.3f}s, "
                f"over the {gate['limit_wall_s']:.3f}s regression limit "
                f"({SMOKE_REGRESSION_FACTOR}x the committed floor)",
                file=sys.stderr,
            )
            return 1

    if wanted["pr8"]:
        if args.smoke:
            obs_sweep = bench_sweep_obs(scale=0.05, seeds=(1, 2), jobs=2,
                                        repeats=2)
            chaos_ev = bench_chaos_events(
                scale=0.05, seeds=(1, 2), jobs=2,
                trace_out=args.pr8_trace_out)
        else:
            obs_sweep = bench_sweep_obs(scale=0.1, seeds=(1, 2, 3, 4),
                                        jobs=args.jobs,
                                        repeats=args.repeats)
            chaos_ev = bench_chaos_events(
                scale=0.1, seeds=(1, 2, 3, 4), jobs=args.jobs,
                trace_out=args.pr8_trace_out)
        emit({
            "bench": "PR8 sweep-scale observability",
            "mode": mode,
            "host_cpu_count": os.cpu_count(),
            "sweep_obs": obs_sweep,
            "chaos_events": chaos_ev,
        }, args.pr8_out)
        for field, msg in (
            ("records_identical",
             "obs-on sweep records diverged from the obs-off serial "
             "run"),
            ("summary_equals_cell_sum",
             "sweep summary() != sum of per-cell summaries"),
            ("registry_counters_equal",
             "merged-registry counters disagree with the summed "
             "summaries"),
            ("one_track_per_cell",
             "merged Chrome trace does not carry one track per cell"),
        ):
            if not obs_sweep[field]:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1
        if not args.smoke and not obs_sweep["within_budget"]:
            print(
                f"FAIL: sweep telemetry overhead "
                f"{obs_sweep['obs_overhead_frac']:.1%} "
                f"({obs_sweep['obs_overhead_per_event_us']:.2f} "
                f"us/event) exceeds both the "
                f"{OBS_OVERHEAD_BUDGET:.0%} relative and "
                f"{OBS_SWEEP_OVERHEAD_PER_EVENT_US:.1f} us/event "
                f"budgets", file=sys.stderr)
            return 1
        for field, msg in (
            ("chaos_identical",
             "instrumented chaos sweep diverged from the fault-free "
             "serial run"),
            ("zero_quarantined",
             "instrumented chaos sweep quarantined cells"),
            ("survived_rebuilds",
             "no pool rebuild happened — the crash plan never engaged"),
            ("every_retry_logged",
             "event log is missing retries the supervisor counted"),
            ("every_rebuild_logged",
             "event log is missing pool rebuilds the supervisor "
             "counted"),
            ("retries_name_cells",
             "retry events do not all name their cell key"),
        ):
            if not chaos_ev[field]:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1

    if wanted["pr10"]:
        if args.smoke:
            backends_bench = bench_backends(
                scale=0.05, seeds=(1, 2, 3, 4), jobs=args.jobs,
                repeats=2)
            backend_chaos = bench_backend_chaos(
                scale=0.05, seeds=(1, 2), jobs=2)
        else:
            backends_bench = bench_backends(
                scale=0.1, seeds=tuple(range(1, 17)), jobs=args.jobs,
                repeats=max(2, args.repeats - 1))
            backend_chaos = bench_backend_chaos(
                scale=0.1, seeds=(1, 2, 3, 4), jobs=args.jobs)

        speedup = backends_bench["sweep_speedup"]
        # the multi-core floor is judged only where it can be met
        # (>= 4 CPUs) or where CI explicitly demands it
        gate_armed = (_require_cpus("the pr10 sweep-speedup floor")
                      or args.require_speedup)
        meets = (speedup is not None
                 and speedup >= SWEEP_SPEEDUP_TARGET
                 if gate_armed else None)
        backends_bench["meets_target"] = meets
        backends_bench["skipped_low_cpu"] = not gate_armed
        note = None if gate_armed else (
            f"floor skipped: {os.cpu_count() or 1}-cpu host")
        emit({
            "bench": "PR10 persistent-worker sweep executor",
            "mode": mode,
            "host_cpu_count": os.cpu_count(),
            "backends": backends_bench,
            "backend_chaos": backend_chaos,
            "sweep_trajectory": sweep_trajectory(
                speedup, jobs=args.jobs, note=note),
        }, args.pr10_out)
        for field, msg in (
            ("records_identical",
             "backend outputs diverged — serial, pool and persistent "
             "must merge byte-identically"),
            ("merge_order_preserved",
             "a backend merged cells out of declaration order"),
            ("workers_stayed_warm",
             "persistent executor spawned workers after warm-up — the "
             "warm pool never engaged"),
        ):
            if not backends_bench[field]:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1
        for field, msg in (
            ("chaos_identical",
             "chaos sweep on the persistent backend diverged from the "
             "fault-free serial run"),
            ("zero_quarantined",
             "persistent-backend chaos sweep quarantined cells"),
            ("respawned_surgically",
             "no worker respawn happened — the crash plan never "
             "engaged the persistent loop"),
            ("no_world_rebuilds",
             "persistent backend fell back to a world rebuild instead "
             "of a surgical respawn"),
        ):
            if not backend_chaos[field]:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1
        if meets is False:
            msg = (f"sweep speedup {speedup:.2f}x is below the "
                   f"{SWEEP_SPEEDUP_TARGET}x floor at {args.jobs} jobs "
                   f"on a {os.cpu_count()}-cpu host")
            if args.require_speedup:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1
            print(f"::warning::{msg} (advisory here; the CI 4-vCPU "
                  f"leg passes --require-speedup)")

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
