"""Benchmarks for the matrix, admission and disk-scheduling extensions."""

from repro.experiments import (
    extension_admission,
    extension_diskched,
    extension_matrix,
)

SCALE = 0.06


def test_extension_matrix(once):
    records = once(extension_matrix.run, scale=SCALE, quiet=True)
    print()
    print(extension_matrix.render(records))

    lru = records["lru"]
    full = records["so/ao/ai/bg"]
    # adaptive paging wins on the mixed matrix workload too
    assert full["makespan_s"] <= lru["makespan_s"]
    assert full["mean_completion_s"] <= lru["mean_completion_s"] * 1.02
    # and moves fewer pages doing it
    assert full["pages_read"] <= lru["pages_read"]


def test_extension_admission(once):
    records = once(extension_admission.run, scale=0.1, quiet=True)
    print()
    print(extension_admission.render(records))

    ac = records["admission (fits-only)"]
    lru = records["gang overcommit, lru"]
    full = records["gang overcommit, adaptive"]
    # ref. [15]'s trade-off: admission avoids paging entirely ...
    assert ac["pages_read"] == 0
    # ... but delays the short jobs relative to adaptive time-sharing
    assert (full["completions"]["short1"]
            < ac["completions"]["short1"])
    # and the adaptive stack beats overcommitted LRU on makespan
    assert full["makespan_s"] <= lru["makespan_s"] * 1.02


def test_extension_diskched(once):
    records = once(extension_diskched.run, scale=0.1, quiet=True)
    print()
    print(extension_diskched.render(records))

    # the elevator alone cannot substitute for adaptive paging: under
    # every discipline the adaptive run dominates the lru run
    for disc, r in records.items():
        assert (r["so/ao/ai/bg"]["makespan_s"]
                <= r["lru"]["makespan_s"]), disc
    # and the disciplines barely differ (queue depth ~1)
    lru_spans = [r["lru"]["makespan_s"] for r in records.values()]
    assert max(lru_spans) <= min(lru_spans) * 1.05
