"""Microbenchmarks of the simulation substrates.

Not a paper figure — these track the performance of the hot paths that
bound every experiment's wall-clock time: the event loop, the disk
service model, the fault planner and the reclaim path.
"""

import numpy as np

from repro.disk import Disk, DiskParams, SwapAllocator
from repro.mem import MemoryParams, PageTable, VirtualMemoryManager
from repro.mem.readahead import plan_swapins
from repro.sim import Environment


def test_engine_event_throughput(benchmark):
    """Schedule and drain 20k chained timeouts."""

    def run():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(4):
            env.process(ticker(env, 5000))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 5000.0


def test_disk_service_throughput(benchmark):
    """Service 2 000 scattered read requests."""

    def run():
        env = Environment()
        disk = Disk(env, DiskParams())
        for i in range(2000):
            disk.submit(np.arange(i * 40, i * 40 + 16), "read")
        env.run()
        return disk.total_requests

    assert benchmark(run) == 2000


def test_swap_allocator_churn(benchmark):
    """Allocate/free 4 000 runs with fragmentation."""

    def run():
        s = SwapAllocator(1 << 18)
        live = []
        for i in range(4000):
            live.append(s.allocate(32))
            if len(live) > 64:
                # free an interior run to fragment the free space
                s.free(live.pop(i % 64))
        for arr in live:
            s.free(arr)
        return s.free_slots

    assert benchmark(run) == 1 << 18


def test_fault_planning(benchmark):
    """Plan read-ahead groups for a 32k-page swapped table."""
    table = PageTable(1, 1 << 16)
    pages = np.arange(32768)
    table.make_resident(pages)
    table.record_access(pages, 1.0)
    table.assign_slots(pages, np.arange(32768) * 2)  # gappy slots
    table.evict(pages)

    def run():
        return len(plan_swapins(table, pages, window=16))

    groups = benchmark(run)
    assert groups > 1000


def test_vmm_fault_path(benchmark):
    """Fault 16k pages through the full VMM + disk stack."""

    def run():
        env = Environment()
        disk = Disk(env, DiskParams())
        vmm = VirtualMemoryManager(
            env, MemoryParams(total_frames=8192), disk
        )
        vmm.register_process(1, 32768)

        def proc():
            for lo in range(0, 32768, 4096):
                yield from vmm.touch(
                    1, np.arange(lo, lo + 4096), dirty=True
                )

        p = env.process(proc())
        env.run(until=p)
        return vmm.stats.minor_faults

    assert benchmark(run) == 32768
