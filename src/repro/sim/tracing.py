"""Structured tracing of discrete-event execution.

A debugging aid: :class:`EventTracer` wraps an environment's ``step``
to record every processed event — time, event type, whether it
succeeded — into a bounded ring buffer, with optional predicate
filtering.  When a simulation misbehaves ("why did this process resume
at t=412?"), the tail of the trace usually answers it.

Zero-cost when not installed; install/uninstall at any point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Environment, Event


@dataclass(frozen=True)
class TraceEntry:
    """One processed event."""

    time: float
    kind: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        flag = "" if self.ok else " FAILED"
        return f"[{self.time:12.6f}] {self.kind}{flag} {self.detail}".rstrip()


class EventTracer:
    """Ring-buffer tracer hooked into ``Environment.step``."""

    def __init__(
        self,
        env: Environment,
        capacity: int = 1000,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.predicate = predicate
        self.entries: deque[TraceEntry] = deque(maxlen=capacity)
        self.total_seen = 0
        self._orig_step: Optional[Callable[[], None]] = None

    # -- install / remove ----------------------------------------------------
    @property
    def installed(self) -> bool:
        return self._orig_step is not None

    def install(self) -> "EventTracer":
        """Hook the environment's step(); returns self for chaining."""
        if self.installed:
            raise RuntimeError("tracer already installed")
        orig = self.env.step

        def traced_step() -> None:
            queue = self.env._queue
            nxt = queue[0][3] if queue else None
            orig()
            if nxt is not None:
                self._record(nxt)

        self._orig_step = orig
        self.env.step = traced_step  # type: ignore[method-assign]
        return self

    def remove(self) -> None:
        """Unhook from the environment (idempotent)."""
        if self.installed:
            self.env.step = self._orig_step  # type: ignore[method-assign]
            self._orig_step = None

    def __enter__(self) -> "EventTracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.remove()

    # -- recording ---------------------------------------------------------
    def _record(self, event: Event) -> None:
        if self.predicate is not None and not self.predicate(event):
            return
        self.total_seen += 1
        ok = bool(event._ok)
        value = event._value
        detail = ""
        if not ok and isinstance(value, BaseException):
            detail = f"{type(value).__name__}: {value}"
        self.entries.append(
            TraceEntry(self.env.now, type(event).__name__, ok, detail)
        )

    # -- inspection -----------------------------------------------------------
    def tail(self, n: int = 20) -> list[TraceEntry]:
        """The most recent ``n`` entries."""
        return list(self.entries)[-n:]

    def failures(self) -> list[TraceEntry]:
        """All retained failed events."""
        return [e for e in self.entries if not e.ok]

    def render(self, n: int = 20) -> str:
        """The last ``n`` entries, one per line."""
        lines = [str(e) for e in self.tail(n)]
        return "\n".join(lines) if lines else "<no events traced>"


__all__ = ["EventTracer", "TraceEntry"]
