"""The steady-state execution fast-path switches.

Between gang switches a job's reference stream is hit-dominated; the
fast path removes per-chunk simulation machinery that provably cannot
change any simulated outcome:

* :meth:`~repro.mem.vmm.VirtualMemoryManager.touch_fast` services a
  fully-resident chunk without entering the generator fault path;
* the job execution loop coalesces consecutive fully-resident chunks
  into a single CPU timeout (:mod:`repro.gang.job`);
* the disk dispatches requests through a callback chain instead of one
  coroutine process per request, and folds the per-group major-fault
  CPU charge into the request's completion trigger.

On top of that sits the **batch-advance tier** (:data:`BATCH_ENABLED`):
inside a demand fill the VMM detects runs of same-type, non-interacting
events (sequential disk read groups, zero-fill delays, reclaim write
batches) and applies their entire effect synchronously with a local
clock, re-entering the event loop with a single resync timeout at the
run's exact end time (see ``VirtualMemoryManager._advance_eager``).
The events the run *would* have dispatched are tallied on
``Environment.events_absorbed``, so ``events_simulated`` stays
comparable across modes.

All of these are pure compute-saving transforms: with the fast path on,
every simulation *output* (makespan, paging/fault counters, metrics
records, mechanism counters) stays bit-for-bit identical, while
``Environment.events_processed`` legitimately drops because fewer
bookkeeping events exist.  ``set_fast_path_enabled(False)`` restores
the per-chunk/per-process event structure exactly, reproducing the
historical event stream (the documented re-baseline for pinned event
counts is keyed on this switch — see docs/architecture.md).

Like :func:`repro.mem.index.set_index_enabled`, the switches are read
at run time so identity tests can compare the modes; toggle them
*between* simulation runs, never while an environment is mid-run (a
half-switched run would mix event structures).

Environment overrides (read once at import, for CI matrix legs):

``REPRO_FASTPATH=0``       start with the whole fast path disabled
``REPRO_BATCH_ADVANCE=0``  start with only the batch-advance tier off

(A third tier — numba-compiled kernels — lives in
:mod:`repro.sim.compiled` and is forced with ``REPRO_NUMBA=1``.)
"""

from __future__ import annotations

import os

_OFF = ("0", "off", "false", "no")

#: Module-level switch consulted by the hot paths.  Mutate only through
#: :func:`set_fast_path_enabled`.
ENABLED = os.environ.get("REPRO_FASTPATH", "1").lower() not in _OFF

#: The batch-advance tier rides on top of the fast path: it only
#: engages while :data:`ENABLED` is also true.  Mutate only through
#: :func:`set_batch_advance_enabled`.
BATCH_ENABLED = os.environ.get("REPRO_BATCH_ADVANCE", "1").lower() not in _OFF


def set_fast_path_enabled(enabled: bool) -> None:
    """Globally enable/disable the steady-state fast path."""
    global ENABLED
    ENABLED = bool(enabled)


def fast_path_enabled() -> bool:
    """Whether the steady-state fast path is active."""
    return ENABLED


def set_batch_advance_enabled(enabled: bool) -> None:
    """Globally enable/disable the batch-advance execution tier."""
    global BATCH_ENABLED
    BATCH_ENABLED = bool(enabled)


def batch_advance_enabled() -> bool:
    """Whether the batch-advance tier is active (requires the fast path)."""
    return ENABLED and BATCH_ENABLED


__all__ = [
    "BATCH_ENABLED",
    "ENABLED",
    "batch_advance_enabled",
    "fast_path_enabled",
    "set_batch_advance_enabled",
    "set_fast_path_enabled",
]
