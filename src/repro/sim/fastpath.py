"""The steady-state execution fast-path switch.

Between gang switches a job's reference stream is hit-dominated; the
fast path removes per-chunk simulation machinery that provably cannot
change any simulated outcome:

* :meth:`~repro.mem.vmm.VirtualMemoryManager.touch_fast` services a
  fully-resident chunk without entering the generator fault path;
* the job execution loop coalesces consecutive fully-resident chunks
  into a single CPU timeout (:mod:`repro.gang.job`);
* the disk dispatches requests through a callback chain instead of one
  coroutine process per request, and folds the per-group major-fault
  CPU charge into the request's completion trigger.

All of these are pure compute-saving transforms: with the fast path on,
every simulation *output* (makespan, paging/fault counters, metrics
records, mechanism counters) stays bit-for-bit identical, while
``Environment.events_processed`` legitimately drops because fewer
bookkeeping events exist.  ``set_fast_path_enabled(False)`` restores
the per-chunk/per-process event structure exactly, reproducing the
historical event stream (the documented re-baseline for pinned event
counts is keyed on this switch — see docs/architecture.md).

Like :func:`repro.mem.index.set_index_enabled`, the switch is read at
run time so identity tests can compare both modes; toggle it *between*
simulation runs, never while an environment is mid-run (a half-switched
run would mix event structures).
"""

from __future__ import annotations

#: Module-level switch consulted by the hot paths.  Mutate only through
#: :func:`set_fast_path_enabled`.
ENABLED = True


def set_fast_path_enabled(enabled: bool) -> None:
    """Globally enable/disable the steady-state fast path."""
    global ENABLED
    ENABLED = bool(enabled)


def fast_path_enabled() -> bool:
    """Whether the steady-state fast path is active."""
    return ENABLED


__all__ = ["ENABLED", "fast_path_enabled", "set_fast_path_enabled"]
