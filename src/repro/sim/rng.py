"""Named, independently seeded random streams.

Every stochastic component of the simulation (each workload generator,
the network jitter model, ...) draws from its own named stream derived
from a single experiment seed.  Adding a new consumer therefore never
perturbs the draws seen by existing ones, which keeps regression
comparisons meaningful across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A family of :class:`numpy.random.Generator` objects keyed by name.

    Parameters
    ----------
    seed:
        Master seed for the whole experiment.  Streams with the same
        ``(seed, name)`` pair always produce identical sequences.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    @property
    def created(self) -> tuple[str, ...]:
        """Names of the streams materialised so far (sorted).

        Lets tests assert *transparency*: code paths that must not
        consume randomness (e.g. a zero-rate fault plan) leave this
        empty.
        """
        return tuple(sorted(self._streams))

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family (e.g. one per node) from this one."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"


__all__ = ["RngStreams"]
