"""Periodic sampling of simulation state.

A :class:`PeriodicSampler` evaluates a probe function at a fixed
virtual-time interval and accumulates ``(t, value)`` pairs — the
standard way to get continuous views (free frames, queue depths,
resident-set sizes) out of a discrete-event run without hooking every
mutation site.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Environment, Interrupt, Process


class PeriodicSampler:
    """Samples ``probe()`` every ``interval_s`` of virtual time.

    Sampling starts immediately (one sample at creation time) and stops
    at :meth:`stop` or when the event queue drains.
    """

    def __init__(
        self,
        env: Environment,
        probe: Callable[[], float],
        interval_s: float,
        name: str = "sampler",
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.env = env
        self.probe = probe
        self.interval_s = interval_s
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        self._proc: Optional[Process] = env.process(self._run())

    def _run(self):
        try:
            while True:
                self._times.append(self.env.now)
                self._values.append(float(self.probe()))
                # daemon timeout: the sampler never keeps an otherwise
                # finished simulation alive
                yield self.env.timeout(self.interval_s, daemon=True)
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop-sampling")
        self._proc = None

    @property
    def nsamples(self) -> int:
        return len(self._times)

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """The samples so far as ``(times, values)`` arrays."""
        return (
            np.asarray(self._times, dtype=float),
            np.asarray(self._values, dtype=float),
        )

    def time_average(self) -> float:
        """Time-weighted mean of the sampled value."""
        t, v = self.series()
        if t.size == 0:
            raise ValueError("no samples")
        if t.size == 1:
            return float(v[0])
        dt = np.diff(t)
        return float((v[:-1] * dt).sum() / dt.sum())

    def minimum(self) -> float:
        """Smallest sampled value."""
        _, v = self.series()
        if v.size == 0:
            raise ValueError("no samples")
        return float(v.min())


__all__ = ["PeriodicSampler"]
