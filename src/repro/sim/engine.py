"""Event loop, events, timeouts and coroutine processes.

The engine keeps a priority queue of ``(time, priority, sequence, event)``
entries.  :meth:`Environment.step` pops the earliest entry, advances the
virtual clock and runs the event's callbacks.  A :class:`Process` wraps a
generator; every value the generator yields must be an :class:`Event`,
and the process resumes when that event fires.

Determinism: ties in time are broken first by scheduling priority (so
``URGENT`` interrupts beat normal events), then by insertion order, so a
simulation with a fixed seed always replays identically.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

# Scheduling priorities: URGENT entries at the same timestamp run before
# NORMAL ones.  Used for interrupts so they preempt ordinary resumptions.
URGENT = 0
NORMAL = 1

#: Sentinel stored in Event._value while the event has not yet fired.
_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. yielding a
    non-event, re-triggering a fired event, or running a dead engine)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened; exposed
        via :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when given a value
    (or failure) and scheduled, and *processed* once its callbacks ran.
    Callbacks are ``f(event)`` callables appended to :attr:`callbacks`.

    The event classes carry ``__slots__``: tens of thousands of events
    are created per simulated minute, so per-instance dicts are a
    measurable cost.  Subclasses outside this module (e.g. disk
    requests) may still declare ad-hoc attributes — a subclass without
    ``__slots__`` gets a dict as usual.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_daemon")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: set True when a failure value has been retrieved or defused,
        #: so unhandled failures can be detected.
        self._defused = False
        #: daemon events do not keep Environment.run() alive.  The flag
        #: lives on the event (not in the heap entry): an event is
        #: scheduled at most once, so the heap can carry lean 4-tuples.
        self._daemon = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters see ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not escalate."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time after creation.

    A *daemon* timeout does not keep :meth:`Environment.run` alive: when
    only daemon events remain, an unbounded run terminates.  Background
    observers (e.g. :class:`repro.sim.monitor.PeriodicSampler`) use this
    so they never stall a simulation that is otherwise finished.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 daemon: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay, daemon=daemon)


class Initialize(Event):
    """Internal: first resumption of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT)


class _InterruptEvent(Event):
    """Internal: scheduled throw of :class:`Interrupt` into a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT)


class Process(Event):
    """Drives a generator; is itself an event that fires on termination.

    The wrapped generator yields :class:`Event` instances; the process
    suspends until each fires.  If the awaited event *fails* the
    exception is thrown into the generator (catchable there).  When the
    generator returns, the process event succeeds with the return value.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: event this process is currently waiting on (None when running
        #: or terminated).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator has terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and must not be interrupting itself.
        The event it was waiting on remains valid and may be re-awaited.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} already terminated")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- engine internals --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s value.

        This is the single hottest function of the whole simulator — it
        runs once per processed event — so the generator is advanced
        inline (send/throw chosen by branch) rather than through
        per-resume closure allocations.
        """
        if not self.is_alive:
            # The process terminated in the same timestep an interrupt was
            # scheduled; the interrupt is moot.
            return
        env = self.env
        gen = self._generator
        env._active_process = self
        while True:
            # Detach from the event we were waiting on (we may have been
            # resumed by an interrupt rather than by the target itself).
            waited = self._target
            if waited is not None and waited.callbacks is not None:
                try:
                    waited.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None

            try:
                if event is None or event._ok:
                    target = gen.send(None if event is None else event._value)
                elif isinstance(event, _InterruptEvent):
                    # Only deliver the interrupt if we are genuinely
                    # waiting; a process that terminated in the same
                    # timestep is a kernel bug (interrupt() guards the
                    # user-facing case).
                    target = gen.throw(event._value)
                else:
                    # Awaited event failed: throw into the generator.
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env._schedule(self, NORMAL)
                return
            except BaseException as exc:  # generator died with an error
                env._active_process = None
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process yielded non-event {target!r}; yield Timeout/"
                    "Event/Process instances"
                )
                env._active_process = None
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
                return
            if target.env is not env:
                raise SimulationError("yielded event belongs to another environment")

            if target.callbacks is None:
                # Already processed: continue immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            env._active_process = None
            return


class _ConditionBase(Event):
    """Common machinery for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("all condition events must share one env")
        self._done = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev.triggered}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_ConditionBase):
    """Fires once every constituent event has fired.

    Value is a dict mapping each event to its value.  Fails fast if any
    constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class AnyOf(_ConditionBase):
    """Fires as soon as any constituent event fires (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue.

    Parameters
    ----------
    initial_time:
        Virtual time at which the clock starts (seconds by convention
        throughout this library).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        # plain int sequence counter: cheaper than itertools.count and
        # trivially resettable state for the hot _schedule path
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: scheduled entries that are NOT daemons (keep run() alive)
        self._live = 0
        #: total events processed by step() — a wall-clock-free measure
        #: of how much simulation work a run performed
        self.events_processed = 0
        #: events the batch-advance tier applied synchronously instead
        #: of dispatching (see repro.sim.fastpath): each absorbed event
        #: is one heap pop the scalar fast path would have performed
        self.events_absorbed = 0

    @property
    def events_simulated(self) -> int:
        """Logical events: dispatched plus batch-absorbed.

        Comparable across fast-path modes — batching moves events from
        ``events_processed`` (loop iterations) into ``events_absorbed``
        without changing what was simulated.
        """
        return self.events_processed + self.events_absorbed

    # -- basic accessors ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    @property
    def live_events(self) -> int:
        """Scheduled non-daemon events — what keeps :meth:`run` going.

        Zero means the simulation has quiesced: only daemon timers (if
        any) remain.  Watchdogs use this to distinguish "finished" from
        "stuck" when stepping the simulation manually.
        """
        return self._live

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                daemon: bool = False) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value, daemon=daemon)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """Create an event firing at the *absolute* virtual time ``when``.

        Unlike ``timeout(when - now)`` this places the event at exactly
        ``when`` on the heap — float subtraction then re-addition does
        not round-trip, and the coalesced-run fast path needs its burst
        to end at the exact per-chunk accumulated time.
        """
        if when < self._now:
            raise SimulationError(
                f"timeout_at into the past: {when!r} < {self._now!r}"
            )
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self._schedule_at(ev, NORMAL, when)
        return ev

    def process(self, generator: Generator) -> Process:
        """Start a new coroutine process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing once every constituent fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing on the first constituent."""
        return AnyOf(self, events)

    # -- scheduling / execution ------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0, daemon: bool = False) -> None:
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))
        if daemon:
            event._daemon = True
        else:
            self._live += 1

    def _schedule_at(self, event: Event, priority: int, when: float,
                     daemon: bool = False) -> None:
        """Schedule ``event`` at the absolute time ``when`` (exact)."""
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (when, priority, seq, event))
        if daemon:
            event._daemon = True
        else:
            self._live += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        if not queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heappop(queue)
        if not event._daemon:
            self._live -= 1
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it rather than losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires, returning its
          value (and raising its exception if it failed).
        """
        if until is None:
            # daemon events do not keep the simulation alive.  ``step``
            # is re-read from ``self`` every batch so a tracer installed
            # mid-run (EventTracer monkey-patches ``env.step``) takes
            # effect within 64 events instead of never.
            while self._live > 0:
                step = self.step
                for _ in range(64):
                    step()
                    if self._live <= 0:
                        break
            return None

        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if self._live == 0:
                    raise SimulationError(
                        "event queue drained before `until` event fired"
                    )
                self.step()
            if sentinel._ok:
                return sentinel._value
            sentinel._defused = True
            raise sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run backwards to {horizon!r}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
