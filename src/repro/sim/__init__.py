"""Discrete-event simulation kernel.

A small, dependency-free event-driven simulator in the style of SimPy:
coroutine processes driven by an event loop with a virtual clock.  The
rest of the library (disk, virtual memory, gang scheduler, cluster) is
built on this kernel so that every experiment is deterministic and runs
at laptop scale regardless of how many simulated minutes it covers.

Public surface
--------------
:class:`Environment`  — the event loop and virtual clock.
:class:`Event`        — the basic one-shot event.
:class:`Timeout`      — an event that fires after a virtual delay.
:class:`Process`      — a generator-based coroutine process.
:class:`Interrupt`    — exception thrown into an interrupted process.
:class:`Resource`     — FIFO shared resource with finite capacity.
:class:`PriorityResource` — resource whose queue is priority-ordered.
:class:`RngStreams`   — named, independently seeded random streams.
:func:`set_fast_path_enabled` — toggle the steady-state fast path
(:mod:`repro.sim.fastpath`).
:func:`set_batch_advance_enabled` — toggle the batch-advance tier.
:func:`set_compiled_enabled` — toggle the numba-compiled kernels
(:mod:`repro.sim.compiled`; interpreted where numba is absent).
"""

from repro.sim.compiled import (
    compiled_enabled,
    have_numba,
    set_compiled_enabled,
)
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.fastpath import (
    batch_advance_enabled,
    fast_path_enabled,
    set_batch_advance_enabled,
    set_fast_path_enabled,
)
from repro.sim.resources import PriorityResource, Resource
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Timeout",
    "batch_advance_enabled",
    "compiled_enabled",
    "fast_path_enabled",
    "have_numba",
    "set_batch_advance_enabled",
    "set_compiled_enabled",
    "set_fast_path_enabled",
]
