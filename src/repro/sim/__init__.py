"""Discrete-event simulation kernel.

A small, dependency-free event-driven simulator in the style of SimPy:
coroutine processes driven by an event loop with a virtual clock.  The
rest of the library (disk, virtual memory, gang scheduler, cluster) is
built on this kernel so that every experiment is deterministic and runs
at laptop scale regardless of how many simulated minutes it covers.

Public surface
--------------
:class:`Environment`  — the event loop and virtual clock.
:class:`Event`        — the basic one-shot event.
:class:`Timeout`      — an event that fires after a virtual delay.
:class:`Process`      — a generator-based coroutine process.
:class:`Interrupt`    — exception thrown into an interrupted process.
:class:`Resource`     — FIFO shared resource with finite capacity.
:class:`PriorityResource` — resource whose queue is priority-ordered.
:class:`RngStreams`   — named, independently seeded random streams.
:func:`set_fast_path_enabled` — toggle the steady-state fast path
(:mod:`repro.sim.fastpath`).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.fastpath import fast_path_enabled, set_fast_path_enabled
from repro.sim.resources import PriorityResource, Resource
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Timeout",
    "fast_path_enabled",
    "set_fast_path_enabled",
]
