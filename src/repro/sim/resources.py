"""Shared resources for coroutine processes.

:class:`Resource` models a finite-capacity server with a FIFO wait
queue; :class:`PriorityResource` orders waiters by a numeric priority
(lower value = served earlier, FIFO within a priority level).  The disk
request queue uses the priority variant so foreground page faults can
overtake background dirty-page writes.

Usage::

    disk = Resource(env, capacity=1)

    def user(env, disk):
        req = disk.request()
        yield req
        try:
            yield env.timeout(0.010)   # hold the resource
        finally:
            disk.release(req)
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Optional

from repro.sim.engine import Environment, Event, SimulationError


class Request(Event):
    """Pending acquisition of a resource slot.

    Fires (succeeds) when the slot is granted.  Also usable as a context
    manager so ``with resource.request() as req: yield req`` releases on
    exit.
    """

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        #: set once the request has been granted a slot
        self.granted = False
        #: set if the request was cancelled before being granted
        self.cancelled = False

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request (no-op if already granted)."""
        if self.granted or self.cancelled:
            return
        self.cancelled = True
        self.resource._purge_cancelled()


class Resource:
    """Finite-capacity shared resource with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        # heap entries: (sort_key, seq, request)
        self._waiting: list[tuple[float, int, Request]] = []
        self._seq = count()

    # -- introspection ---------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of live (non-cancelled) waiting requests."""
        return sum(1 for _, _, r in self._waiting if not r.cancelled)

    # -- protocol ----------------------------------------------------------
    def _sort_key(self, request: Request) -> float:
        return 0.0  # FIFO: rely on the sequence counter

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self, priority)
        heapq.heappush(self._waiting, (self._sort_key(req), next(self._seq), req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (or cancel a pending request)."""
        if not request.granted:
            request.cancel()
            return
        if request.cancelled:
            raise SimulationError("request released twice")
        request.cancelled = True  # reuse flag to catch double release
        self._in_use -= 1
        self._grant()

    # -- internals ---------------------------------------------------------
    def _purge_cancelled(self) -> None:
        while self._waiting and self._waiting[0][2].cancelled:
            heapq.heappop(self._waiting)

    def _grant(self) -> None:
        self._purge_cancelled()
        while self._in_use < self.capacity and self._waiting:
            _, _, req = heapq.heappop(self._waiting)
            if req.cancelled:
                continue
            req.granted = True
            self._in_use += 1
            req.succeed(req)
            self._purge_cancelled()


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by request priority.

    Lower priority numbers are served first; equal priorities are FIFO.
    Granting is non-preemptive: a low-priority holder finishes its
    service even if a high-priority request arrives meanwhile.
    """

    def _sort_key(self, request: Request) -> float:
        return request.priority


def hold(env: Environment, resource: Resource, duration: float,
         priority: float = 0.0):
    """Convenience process fragment: acquire, hold for ``duration``, release.

    Yields from within a process::

        yield from hold(env, disk, 0.010, priority=1)
    """
    req = resource.request(priority)
    yield req
    try:
        yield env.timeout(duration)
    finally:
        resource.release(req)


__all__ = ["PriorityResource", "Request", "Resource", "hold"]
