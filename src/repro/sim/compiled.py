"""Optional numba-compiled kernels for the residual scalar hot loops.

The batch-advance tier (:mod:`repro.sim.fastpath`) turns most of the
paging hot path into numpy array operations, but two residual scalar
loops survive because their control flow is inherently sequential:

* the disk head-model *run decomposition* — walking a sorted slot list
  into maximal consecutive runs and summing positioning costs
  (:meth:`repro.disk.device.Disk.service_time`);
* the read-ahead planner's *window jump loop* — choosing which demand
  pages open a read-ahead window when the demand slots ascend
  (:func:`repro.mem.readahead.plan_swapins`).

Both are pure integer/float kernels, so they are expressed here as
plain Python functions that ``numba.njit`` compiles when available.
Without numba the same functions run interpreted — the *logic* of the
compiled tier is therefore exercised (and identity-tested) on every
host, and actual compilation is a pure speed difference on hosts that
have numba installed.

Feature detection happens once at import; the tier is **off by
default** (CI runs it in a dedicated matrix leg).  Force it on with
``REPRO_NUMBA=1`` in the environment or
:func:`set_compiled_enabled`.  Every kernel accumulates floats in
exactly the order of the scalar code it replaces (and ``math.sqrt`` is
bitwise-identical under numba), so enabling the tier never changes a
simulated trajectory.
"""

from __future__ import annotations

import math
import os

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common case in this tree
    _numba = None
    HAVE_NUMBA = False

_ON = ("1", "on", "true", "yes")

#: whether the compiled-kernel tier is consulted by the hot paths
COMPILED_ENABLED = os.environ.get("REPRO_NUMBA", "").lower() in _ON


def set_compiled_enabled(enabled: bool) -> None:
    """Toggle the compiled-kernel tier.

    Enabling works even without numba — the kernels then run
    interpreted, which keeps the tier's code paths testable everywhere
    (compilation is a host-local speedup, never a behaviour change).
    """
    global COMPILED_ENABLED
    COMPILED_ENABLED = bool(enabled)


def compiled_enabled() -> bool:
    """Whether the compiled-kernel tier is active."""
    return COMPILED_ENABLED


def have_numba() -> bool:
    """Whether numba was importable (kernels actually compile)."""
    return HAVE_NUMBA


def _maybe_jit(fn):
    if HAVE_NUMBA:  # pragma: no cover - exercised in the numba CI leg
        return _numba.njit(cache=True, fastmath=False)(fn)
    return fn


@_maybe_jit
def run_positioning(slots, head, last_op_same, positioning_s, coef):
    """Seek count and positioning cost of one request's slot list.

    Mirrors the list-walk in ``Disk.service_time`` exactly: decompose
    the sorted ``slots`` into maximal consecutive runs, charge
    ``positioning_s`` (plus the optional ``coef * sqrt(distance)``
    term) for every run that does not continue the previous transfer,
    accumulating in run order.  ``last_op_same`` is True when the head's
    last transfer had the same direction as this request.
    """
    seeks = 0
    positioning = 0.0
    pos = head
    n = slots.shape[0]
    i = 0
    first_run = True
    while i < n:
        start = slots[i]
        end = start + 1
        i += 1
        while i < n and slots[i] == end:
            end += 1
            i += 1
        continues = (start == pos) and ((not first_run) or last_op_same)
        if not continues:
            seeks += 1
            positioning += positioning_s
            if coef > 0.0:
                positioning += coef * math.sqrt(abs(start - pos))
        pos = end
        first_run = False
    return seeks, positioning


@_maybe_jit
def monotone_window_starts(slot_los, slot_his):
    """Indices of the swap-backed demand pages that open a window.

    ``slot_los``/``slot_his`` are the per-page ``searchsorted`` window
    bounds of the *swap-backed* demand pages, in touch order, under the
    monotone precondition (strictly ascending demand slots).  A page
    opens a new read-ahead window exactly when its ``lo`` lies at or
    past the previous window's ``hi`` — the same one-compare skip rule
    as the planner's scalar loop.  Returns a mask over the input.
    """
    n = slot_los.shape[0]
    chosen = np.zeros(n, dtype=np.bool_)
    last_hi = 0
    for i in range(n):
        if slot_los[i] >= last_hi:
            chosen[i] = True
            last_hi = slot_his[i]
    return chosen


def _warmup() -> None:  # pragma: no cover - numba hosts only
    """Compile the kernels eagerly so timings exclude JIT cost."""
    if not HAVE_NUMBA:
        return
    s = np.array([0, 1, 5], dtype=np.int64)
    run_positioning(s, 0, True, 0.01, 0.0)
    monotone_window_starts(
        np.array([0, 1], dtype=np.int64), np.array([2, 3], dtype=np.int64)
    )


if COMPILED_ENABLED:  # pragma: no cover - env-forced hosts only
    _warmup()


__all__ = [
    "COMPILED_ENABLED",
    "HAVE_NUMBA",
    "compiled_enabled",
    "have_numba",
    "monotone_window_starts",
    "run_positioning",
    "set_compiled_enabled",
]
