"""Synthetic NAS NPB2 benchmark models (LU, SP, CG, IS, MG).

The real NPB2 binaries cannot run in this environment, so each
benchmark is modelled by the four properties that determine its paging
behaviour under gang scheduling:

* **footprint** per data class (A/B/C), scaled to per-process size for
  parallel runs as ``serial_mb * n^(-gamma) + repl_mb`` (divide the
  grid, replicate halos/buffers);
* **access shape** per iteration:

  - ``LU``  — two wavefront sweeps (lower/upper SSOR) over the array,
  - ``SP``  — three directional line-solve passes,
  - ``CG``  — sparse matrix read in irregular (shuffled) chunk order
    plus a dirty vector segment,
  - ``IS``  — sequential key scan plus random-order bucket scatter,
  - ``MG``  — multigrid V-cycle: a fine-grid sweep plus geometrically
    shrinking coarse levels;

* **dirty ratio** (how much of the footprint each iteration writes);
* **compute density** (CPU seconds per iteration, divided across
  processes in parallel runs).

Footprints follow the published NPB2 class sizes where the paper
anchors them (e.g. LU class C is ~188 MB per node on 4 machines, §4)
and the paper's constraint that class B programs need 188–400 MB
(§4.1, footnote 3).  They are calibration constants of the simulation,
not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.mem.params import mb_to_pages
from repro.workloads.base import PageRange, Phase, Workload, chunk_ranges


@dataclass(frozen=True)
class NpbBenchmark:
    """Static description of one NPB2 program."""

    name: str
    #: serial footprint in MB per data class
    class_mb: dict[str, float]
    #: footprint scaling exponent with process count
    gamma: float
    #: replicated per-process overhead (halos, buffers), MB
    repl_mb: float
    #: fraction of the footprint dirtied per iteration
    dirty_fraction: float
    #: iterations per data class
    iterations: dict[str, int]
    #: total CPU seconds per iteration (serial) per data class
    cpu_iter_s: dict[str, float]
    #: access-shape id: sweep2 | sweep3 | cg | is | mg
    pattern: str
    #: per-barrier communication payload time (grows log2(n))
    comm_base_s: float
    #: valid process counts (e.g. SP needs a square number)
    valid_nprocs: tuple[int, ...] = (1, 2, 4, 8, 16)

    def footprint_mb(self, klass: str, nprocs: int) -> float:
        """Per-process footprint for ``nprocs`` ranks."""
        serial = self.class_mb[klass]
        if nprocs == 1:
            return serial
        return serial * nprocs ** (-self.gamma) + self.repl_mb


#: The five programs the paper evaluates.  SP does not compile for 2
#: processes (§4.2) — it requires a square process count.
NPB_BENCHMARKS: dict[str, NpbBenchmark] = {
    "LU": NpbBenchmark(
        name="LU",
        class_mb={"A": 45.0, "B": 190.0, "C": 580.0},
        gamma=1.0,
        repl_mb=43.0,
        dirty_fraction=0.6,
        iterations={"A": 12, "B": 20, "C": 24},
        cpu_iter_s={"A": 15.0, "B": 45.0, "C": 110.0},
        pattern="sweep2",
        comm_base_s=0.4,
    ),
    "SP": NpbBenchmark(
        name="SP",
        class_mb={"A": 50.0, "B": 310.0, "C": 1100.0},
        gamma=1.0,
        repl_mb=30.0,
        dirty_fraction=0.8,
        iterations={"A": 10, "B": 16, "C": 36},
        cpu_iter_s={"A": 20.0, "B": 60.0, "C": 130.0},
        pattern="sweep3",
        comm_base_s=0.5,
        valid_nprocs=(1, 4, 9, 16),
    ),
    "CG": NpbBenchmark(
        name="CG",
        class_mb={"A": 55.0, "B": 300.0, "C": 580.0},
        gamma=1.0,
        repl_mb=20.0,
        dirty_fraction=0.3,
        iterations={"A": 15, "B": 30, "C": 36},
        cpu_iter_s={"A": 10.0, "B": 25.0, "C": 60.0},
        pattern="cg",
        comm_base_s=0.3,
    ),
    "IS": NpbBenchmark(
        name="IS",
        class_mb={"A": 80.0, "B": 185.0, "C": 600.0},
        gamma=0.85,
        repl_mb=0.0,
        dirty_fraction=0.8,
        iterations={"A": 8, "B": 10, "C": 12},
        cpu_iter_s={"A": 15.0, "B": 35.0, "C": 120.0},
        pattern="is",
        comm_base_s=1.0,
    ),
    "MG": NpbBenchmark(
        name="MG",
        class_mb={"A": 60.0, "B": 330.0, "C": 620.0},
        gamma=1.0,
        repl_mb=0.0,
        dirty_fraction=0.5,
        iterations={"A": 8, "B": 12, "C": 16},
        cpu_iter_s={"A": 25.0, "B": 60.0, "C": 90.0},
        pattern="mg",
        comm_base_s=0.4,
    ),
    # The paper evaluates the five programs above; FT and EP complete the
    # NPB2 kernel set and are provided as extensions (EP is the
    # no-memory-pressure control, FT the worst-case strided sweep).
    "FT": NpbBenchmark(
        name="FT",
        class_mb={"A": 110.0, "B": 340.0, "C": 1300.0},
        gamma=1.0,
        repl_mb=10.0,
        dirty_fraction=0.9,
        iterations={"A": 6, "B": 10, "C": 14},
        cpu_iter_s={"A": 30.0, "B": 70.0, "C": 150.0},
        pattern="ft",
        comm_base_s=1.2,  # all-to-all transpose
    ),
    "EP": NpbBenchmark(
        name="EP",
        class_mb={"A": 8.0, "B": 12.0, "C": 20.0},
        gamma=0.3,  # footprint barely shrinks: it is all replicated state
        repl_mb=0.0,
        dirty_fraction=0.9,
        iterations={"A": 8, "B": 12, "C": 16},
        cpu_iter_s={"A": 30.0, "B": 90.0, "C": 200.0},
        pattern="sweep2",
        comm_base_s=0.05,  # a single reduction per iteration
    ),
}


class NpbWorkload(Workload):
    """Per-process phase generator for one NPB program instance."""

    def __init__(
        self,
        bench: NpbBenchmark,
        klass: str,
        nprocs: int = 1,
        max_phase_pages: int = 8192,
    ) -> None:
        if klass not in bench.class_mb:
            raise ValueError(f"{bench.name} has no class {klass!r}")
        if nprocs not in bench.valid_nprocs:
            raise ValueError(
                f"{bench.name} does not run on {nprocs} processes "
                f"(valid: {bench.valid_nprocs})"
            )
        footprint = mb_to_pages(bench.footprint_mb(klass, nprocs))
        super().__init__(
            name=f"{bench.name}.{klass}.{nprocs}",
            footprint_pages=footprint,
            iterations=bench.iterations[klass],
            max_phase_pages=max_phase_pages,
        )
        self.bench = bench
        self.klass = klass
        self.nprocs = nprocs
        #: CPU per iteration per process
        self.cpu_it_s = bench.cpu_iter_s[klass] / nprocs
        #: communication payload per barrier (0 when serial)
        self.comm_s = (
            bench.comm_base_s * float(np.log2(nprocs)) if nprocs > 1 else 0.0
        )
        self.parallel = nprocs > 1

    def _scale_cpu(self, factor: float) -> None:
        # per-iteration CPU is absolute, so it scales with the footprint
        self.cpu_it_s *= factor

    # -- per-pattern iteration shapes -----------------------------------
    def iteration_phases(self, it: int, rng: np.random.Generator):
        pattern = self.bench.pattern
        if pattern == "sweep2":
            yield from self._sweeps(it, nsweeps=2)
        elif pattern == "sweep3":
            yield from self._sweeps(it, nsweeps=3)
        elif pattern == "cg":
            yield from self._cg(it, rng)
        elif pattern == "is":
            yield from self._is(it, rng)
        elif pattern == "mg":
            yield from self._mg(it)
        elif pattern == "ft":
            yield from self._ft(it)
        else:  # pragma: no cover - guarded by the benchmark table
            raise ValueError(f"unknown pattern {pattern!r}")

    def _sweeps(self, it: int, nsweeps: int) -> Iterable[Phase]:
        """LU/SP: full-footprint directional sweeps; the leading
        ``dirty_fraction`` of the footprint is written each sweep."""
        n = self.footprint_pages
        split = int(n * self.bench.dirty_fraction)
        cpu = self.cpu_it_s / nsweeps
        for s in range(nsweeps):
            ranges = []
            if split:
                ranges.append(PageRange(0, split, dirty=True))
            if split < n:
                ranges.append(PageRange(split, n, dirty=False))
            yield from chunk_ranges(
                ranges,
                self.max_phase_pages,
                cpu_s=cpu,
                barrier=self.parallel,
                comm_s=self.comm_s,
                label=f"{self.name}:it{it}s{s}",
            )

    def _cg(self, it: int, rng: np.random.Generator) -> Iterable[Phase]:
        """CG: read the sparse matrix in irregular chunk order, then
        update the vector segment; two barrier points (matvec +
        allreduce)."""
        n = self.footprint_pages
        mat_end = int(n * 0.7)
        chunk = 256
        starts = np.arange(0, mat_end, chunk)
        rng.shuffle(starts)
        cpu_mat = self.cpu_it_s * 0.7
        cpu_chunk = cpu_mat / max(1, starts.size)
        acc: list[PageRange] = []
        acc_pages = 0
        for i, s in enumerate(starts):
            stop = min(int(s) + chunk, mat_end)
            acc.append(PageRange(int(s), stop, dirty=False))
            acc_pages += stop - int(s)
            last = i == starts.size - 1
            if acc_pages >= self.max_phase_pages or last:
                yield Phase(
                    tuple(acc),
                    cpu_s=cpu_chunk * len(acc),
                    barrier=self.parallel and last,
                    comm_s=self.comm_s if last else 0.0,
                    label=f"{self.name}:it{it}mat",
                )
                acc, acc_pages = [], 0
        # vector update (dirty, sequential)
        yield from chunk_ranges(
            [PageRange(mat_end, n, dirty=True)],
            self.max_phase_pages,
            cpu_s=self.cpu_it_s * 0.3,
            barrier=self.parallel,
            comm_s=self.comm_s,
            label=f"{self.name}:it{it}vec",
        )

    def _is(self, it: int, rng: np.random.Generator) -> Iterable[Phase]:
        """IS: sequential key scan, then random-order bucket scatter
        (dirty), ending in a heavy all-to-all barrier."""
        n = self.footprint_pages
        keys_end = int(n * 0.4)
        # key scan
        yield from chunk_ranges(
            [PageRange(0, keys_end, dirty=False)],
            self.max_phase_pages,
            cpu_s=self.cpu_it_s * 0.3,
            label=f"{self.name}:it{it}keys",
        )
        # bucket scatter in random chunk order
        chunk = 64
        starts = np.arange(keys_end, n, chunk)
        rng.shuffle(starts)
        cpu_chunk = self.cpu_it_s * 0.7 / max(1, starts.size)
        acc: list[PageRange] = []
        acc_pages = 0
        for i, s in enumerate(starts):
            stop = min(int(s) + chunk, n)
            acc.append(PageRange(int(s), stop, dirty=True))
            acc_pages += stop - int(s)
            last = i == starts.size - 1
            if acc_pages >= self.max_phase_pages or last:
                yield Phase(
                    tuple(acc),
                    cpu_s=cpu_chunk * len(acc),
                    barrier=self.parallel and last,
                    comm_s=self.comm_s * 2 if last else 0.0,  # all-to-all
                    label=f"{self.name}:it{it}buckets",
                )
                acc, acc_pages = [], 0

    def _mg(self, it: int) -> Iterable[Phase]:
        """MG: V-cycle — fine-grid relaxation sweep plus geometrically
        shrinking coarse levels (each ~1/8 of the previous)."""
        n = self.footprint_pages
        fine_end = int(n * 0.75)
        # fine grid (dirty per dirty_fraction)
        split = int(fine_end * self.bench.dirty_fraction)
        yield from chunk_ranges(
            [PageRange(0, split, dirty=True), PageRange(split, fine_end, dirty=False)],
            self.max_phase_pages,
            cpu_s=self.cpu_it_s * 0.75,
            barrier=self.parallel,
            comm_s=self.comm_s,
            label=f"{self.name}:it{it}fine",
        )
        # coarse levels
        start = fine_end
        size = max(1, (n - fine_end) // 2)
        level = 0
        cpu_rest = self.cpu_it_s * 0.25
        while start < n and size >= 1:
            stop = min(n, start + size)
            yield from chunk_ranges(
                [PageRange(start, stop, dirty=True)],
                self.max_phase_pages,
                cpu_s=cpu_rest / 2 ** (level + 1),
                barrier=self.parallel,
                comm_s=self.comm_s,
                label=f"{self.name}:it{it}lvl{level}",
            )
            start = stop
            size = max(1, size // 8)
            level += 1
            if level > 6:
                break
        # remaining tail of the footprint counts as the coarsest level
        if start < n:
            yield from chunk_ranges(
                [PageRange(start, n, dirty=True)],
                self.max_phase_pages,
                cpu_s=cpu_rest / 2 ** (level + 1),
                label=f"{self.name}:it{it}tail",
            )


    def _ft(self, it: int) -> Iterable[Phase]:
        """FT (extension): two contiguous FFT sweeps plus a strided
        transpose pass that visits every 8th chunk first — the paging
        worst case for read-ahead."""
        n = self.footprint_pages
        # contiguous passes (forward FFT + inverse FFT), dirty
        for s in range(2):
            yield from chunk_ranges(
                [PageRange(0, n, dirty=True)],
                self.max_phase_pages,
                cpu_s=self.cpu_it_s * 0.35,
                barrier=self.parallel,
                comm_s=self.comm_s,
                label=f"{self.name}:it{it}fft{s}",
            )
        # transpose: strided chunk order
        stride = 8
        chunk = 64
        starts = np.arange(0, n, chunk)
        order = np.concatenate([starts[k::stride] for k in range(stride)])
        acc: list[PageRange] = []
        acc_pages = 0
        cpu_chunk = self.cpu_it_s * 0.3 / max(1, order.size)
        for i, s in enumerate(order):
            stop = min(int(s) + chunk, n)
            acc.append(PageRange(int(s), stop, dirty=True))
            acc_pages += stop - int(s)
            last = i == order.size - 1
            if acc_pages >= self.max_phase_pages or last:
                yield Phase(
                    tuple(acc),
                    cpu_s=cpu_chunk * len(acc),
                    barrier=self.parallel and last,
                    comm_s=self.comm_s * 2 if last else 0.0,
                    label=f"{self.name}:it{it}transpose",
                )
                acc, acc_pages = [], 0


def make_npb(
    name: str, klass: str, nprocs: int = 1, **kw
) -> NpbWorkload:
    """Factory: ``make_npb("LU", "B")`` or ``make_npb("CG", "C", 4)``."""
    bench = NPB_BENCHMARKS.get(name.upper())
    if bench is None:
        raise ValueError(
            f"unknown NPB benchmark {name!r}; have {sorted(NPB_BENCHMARKS)}"
        )
    return NpbWorkload(bench, klass.upper(), nprocs, **kw)


__all__ = ["NPB_BENCHMARKS", "NpbBenchmark", "NpbWorkload", "make_npb"]
