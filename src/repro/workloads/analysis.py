"""Workload characterisation: the numbers that predict paging behaviour.

Given a workload (or recorded trace), computes the properties DESIGN.md
§2 says drive everything: footprint, touches per page, dirty ratio, and
a *phase-level reuse profile* — for each phase, how many of its pages
were last touched 1, 2, 3... phases ago.  The reuse profile is the
phase-granular analogue of a reuse-distance histogram and explains why
a pattern pages badly (long distances = little residual reuse within a
quantum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.report import format_table
from repro.workloads.base import Workload, expand_phase


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of one workload realisation."""

    name: str
    footprint_pages: int
    nphases: int
    total_touches: int
    dirty_touches: int
    total_cpu_s: float
    #: histogram over phase-reuse distance d>=1: touches whose previous
    #: touch was d phases earlier (first touches excluded)
    reuse_hist: dict[int, int]
    #: mean pages per phase
    mean_phase_pages: float

    @property
    def dirty_ratio(self) -> float:
        return self.dirty_touches / self.total_touches \
            if self.total_touches else 0.0

    @property
    def touches_per_page(self) -> float:
        return self.total_touches / self.footprint_pages \
            if self.footprint_pages else 0.0

    @property
    def mean_reuse_distance(self) -> float:
        """Mean phase-distance between successive touches of a page."""
        total = sum(self.reuse_hist.values())
        if total == 0:
            return float("inf")
        return sum(d * c for d, c in self.reuse_hist.items()) / total

    @property
    def cpu_per_touch_s(self) -> float:
        return self.total_cpu_s / self.total_touches \
            if self.total_touches else 0.0


def profile_workload(
    workload: Workload, rng: np.random.Generator
) -> WorkloadProfile:
    """Run through the workload's phases and characterise them."""
    last_touch = np.full(workload.footprint_pages, -1, dtype=np.int64)
    reuse: dict[int, int] = {}
    total = dirty = 0
    cpu = 0.0
    nphases = 0
    for idx, phase in enumerate(workload.phases(rng)):
        nphases += 1
        cpu += phase.cpu_s
        pages, dmask = expand_phase(phase)
        total += pages.size
        dirty += int(dmask.sum())
        prev = last_touch[pages]
        seen = prev >= 0
        if seen.any():
            dists, counts = np.unique(idx - prev[seen], return_counts=True)
            for d, c in zip(dists, counts):
                reuse[int(d)] = reuse.get(int(d), 0) + int(c)
        last_touch[pages] = idx
    return WorkloadProfile(
        name=workload.name,
        footprint_pages=workload.footprint_pages,
        nphases=nphases,
        total_touches=total,
        dirty_touches=dirty,
        total_cpu_s=cpu,
        reuse_hist=reuse,
        mean_phase_pages=total / nphases if nphases else 0.0,
    )


def render_profiles(profiles: list[WorkloadProfile]) -> str:
    """Comparison table across workloads."""
    rows = [
        (
            p.name,
            p.footprint_pages,
            p.nphases,
            f"{p.touches_per_page:.1f}",
            f"{p.dirty_ratio:.2f}",
            f"{p.mean_reuse_distance:.1f}",
            f"{p.total_cpu_s:.0f}",
        )
        for p in profiles
    ]
    return format_table(
        ("workload", "pages", "phases", "touches/page", "dirty ratio",
         "mean reuse dist", "cpu [s]"),
        rows,
        title="Workload characterisation",
    )


__all__ = ["WorkloadProfile", "profile_workload", "render_profiles"]
