"""Phase-based memory reference traces.

Simulating minutes of execution at per-reference granularity is
infeasible in Python; instead a process executes *phases*.  Each phase
names the page ranges it touches (with a dirty flag per range), the CPU
time it burns, and whether it ends at a barrier.  The VMM resolves a
phase's faults with vectorised set operations, so simulated time stays
decoupled from wall-clock cost.

Phases must be small enough to fit in memory alongside the reclaim
watermarks (the VMM enforces this); :func:`chunk_ranges` splits long
sweeps accordingly while preserving touch order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class PageRange:
    """A half-open page interval ``[start, stop)`` with a dirty flag."""

    start: int
    stop: int
    dirty: bool = False

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid range [{self.start}, {self.stop})")

    @property
    def npages(self) -> int:
        return self.stop - self.start

    def pages(self) -> np.ndarray:
        """Expand the range into its page numbers."""
        return np.arange(self.start, self.stop, dtype=np.int64)


@dataclass(frozen=True)
class Phase:
    """One unit of execution: touch ranges, compute, maybe synchronise."""

    ranges: tuple[PageRange, ...]
    cpu_s: float
    #: ends at an MPI-style barrier shared by all ranks of the job
    barrier: bool = False
    #: per-rank communication time paid at the barrier (network model)
    comm_s: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.cpu_s < 0 or self.comm_s < 0:
            raise ValueError("cpu_s and comm_s must be non-negative")

    @property
    def npages(self) -> int:
        return sum(r.npages for r in self.ranges)


#: memo for :func:`expand_phase`, keyed by the (frozen, hashable) phase.
#: Iterative workloads touch the same phases every iteration, and the
#: expansion's dedup pass shows up in profiles.  Cleared wholesale when
#: it outgrows the cap so long sweeps over many workloads stay bounded.
_EXPAND_CACHE: dict[Phase, tuple[np.ndarray, np.ndarray]] = {}
_EXPAND_CACHE_MAX = 512


def expand_phase(phase: Phase) -> tuple[np.ndarray, np.ndarray]:
    """Expand a phase into ``(pages, dirty_mask)`` in touch order.

    A page appearing in several ranges is touched once (first
    occurrence); it is dirty if *any* containing range dirties it.
    The returned arrays are cached (and marked read-only): callers
    treat them as immutable views of the phase.
    """
    hit = _EXPAND_CACHE.get(phase)
    if hit is not None:
        return hit
    if not phase.ranges:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    pages = np.concatenate([r.pages() for r in phase.ranges])
    dirty = np.concatenate(
        [np.full(r.npages, r.dirty, dtype=bool) for r in phase.ranges]
    )
    uniq, first = np.unique(pages, return_index=True)
    if uniq.size != pages.size:
        # de-duplicate, keeping touch order and OR-ing dirty flags
        order = np.sort(first)
        out_pages = pages[order]
        # map occurrences to their first occurrence and OR dirty bits
        inv = np.searchsorted(uniq, pages)
        dirty_by_uniq = np.zeros(uniq.size, dtype=bool)
        np.logical_or.at(dirty_by_uniq, inv, dirty)
        out_dirty = dirty_by_uniq[np.searchsorted(uniq, out_pages)]
        pages, dirty = out_pages, out_dirty
    pages.flags.writeable = False
    dirty.flags.writeable = False
    if len(_EXPAND_CACHE) >= _EXPAND_CACHE_MAX:
        _EXPAND_CACHE.clear()
    _EXPAND_CACHE[phase] = (pages, dirty)
    return pages, dirty


def chunk_ranges(
    ranges: Sequence[PageRange],
    max_pages: int,
    cpu_s: float,
    barrier: bool = False,
    comm_s: float = 0.0,
    label: str = "",
) -> list[Phase]:
    """Split ``ranges`` into phases touching at most ``max_pages`` each.

    ``cpu_s`` is distributed across chunks proportionally to page count.
    Only the final chunk carries the barrier/comm cost.
    """
    if max_pages <= 0:
        raise ValueError("max_pages must be positive")
    # flatten into (start, stop, dirty) pieces no larger than max_pages
    pieces: list[PageRange] = []
    for r in ranges:
        for s in range(r.start, r.stop, max_pages):
            pieces.append(PageRange(s, min(r.stop, s + max_pages), r.dirty))

    total = sum(p.npages for p in pieces)
    phases: list[Phase] = []
    acc: list[PageRange] = []
    acc_pages = 0

    def flush(last: bool) -> None:
        nonlocal acc, acc_pages
        if not acc:
            return
        share = cpu_s * (acc_pages / total) if total else 0.0
        phases.append(
            Phase(
                tuple(acc),
                cpu_s=share,
                barrier=barrier and last,
                comm_s=comm_s if last else 0.0,
                label=label,
            )
        )
        acc, acc_pages = [], 0

    for i, piece in enumerate(pieces):
        if acc_pages + piece.npages > max_pages:
            flush(last=False)
        acc.append(piece)
        acc_pages += piece.npages
    flush(last=True)
    return phases


class Workload:
    """Base class: a named, finite sequence of phases.

    Subclasses implement :meth:`iteration_phases`; the full program is
    that iteration repeated ``iterations`` times (plus an optional
    initialisation touch of the whole footprint).
    """

    def __init__(
        self,
        name: str,
        footprint_pages: int,
        iterations: int,
        max_phase_pages: int = 8192,
        init_touch: bool = True,
    ) -> None:
        if footprint_pages <= 0:
            raise ValueError("footprint_pages must be positive")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.name = name
        self.footprint_pages = int(footprint_pages)
        self.iterations = int(iterations)
        self.max_phase_pages = int(max_phase_pages)
        self.init_touch = init_touch

    def iteration_phases(self, it: int,
                         rng: np.random.Generator) -> Iterable[Phase]:
        """Phases of one iteration (subclass responsibility)."""
        raise NotImplementedError

    def phases(self, rng: np.random.Generator) -> Iterator[Phase]:
        """The whole program's phases, chunked and in order."""
        if self.init_touch:
            # initial data placement: touch (and dirty) the footprint
            yield from chunk_ranges(
                [PageRange(0, self.footprint_pages, dirty=True)],
                self.max_phase_pages,
                cpu_s=1e-6 * self.footprint_pages,
                label=f"{self.name}:init",
            )
        for it in range(self.iterations):
            yield from self.iteration_phases(it, rng)

    def total_phases(self, rng: np.random.Generator) -> int:
        """Count phases (consumes a fresh iterator)."""
        return sum(1 for _ in self.phases(rng))

    def scale_in_place(self, factor: float, min_pages: int = 64) -> "Workload":
        """Proportionally shrink/grow this workload (footprint and any
        absolute CPU demand) for fast runs.  Subclasses with absolute
        per-iteration CPU override :meth:`_scale_cpu`.  Returns self.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.footprint_pages = max(min_pages,
                                   int(self.footprint_pages * factor))
        self._scale_cpu(factor)
        return self

    def _scale_cpu(self, factor: float) -> None:
        """Hook: scale absolute CPU demands.  Workloads whose CPU is
        per-page need no change (it follows the footprint)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"pages={self.footprint_pages}, iters={self.iterations})"
        )


__all__ = ["PageRange", "Phase", "Workload", "chunk_ranges", "expand_phase"]
