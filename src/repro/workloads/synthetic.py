"""Generic synthetic access patterns.

Building blocks for examples, tests and calibration: a sequential
sweep (LU/SP-like), a random chunk shuffle (IS-like) and a strided
pass (cache-unfriendly numeric kernels).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.workloads.base import PageRange, Phase, Workload, chunk_ranges


class SequentialSweepWorkload(Workload):
    """Each iteration sweeps the whole footprint front to back.

    Parameters
    ----------
    dirty_fraction:
        Leading fraction of the footprint that is written each sweep.
    cpu_per_page_s:
        Compute time charged per touched page.
    barrier_per_iteration:
        Emit a barrier at the end of every iteration (parallel runs).
    """

    def __init__(
        self,
        footprint_pages: int,
        iterations: int,
        dirty_fraction: float = 0.5,
        cpu_per_page_s: float = 2e-5,
        barrier_per_iteration: bool = False,
        comm_s: float = 0.0,
        name: str = "sweep",
        **kw,
    ) -> None:
        super().__init__(name, footprint_pages, iterations, **kw)
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in [0, 1]")
        self.dirty_fraction = dirty_fraction
        self.cpu_per_page_s = cpu_per_page_s
        self.barrier_per_iteration = barrier_per_iteration
        self.comm_s = comm_s

    def iteration_phases(self, it: int, rng: np.random.Generator):
        split = int(self.footprint_pages * self.dirty_fraction)
        ranges = []
        if split > 0:
            ranges.append(PageRange(0, split, dirty=True))
        if split < self.footprint_pages:
            ranges.append(PageRange(split, self.footprint_pages, dirty=False))
        yield from chunk_ranges(
            ranges,
            self.max_phase_pages,
            cpu_s=self.cpu_per_page_s * self.footprint_pages,
            barrier=self.barrier_per_iteration,
            comm_s=self.comm_s,
            label=f"{self.name}:sweep{it}",
        )


class RandomAccessWorkload(Workload):
    """Each iteration touches the footprint in shuffled chunks.

    Models bucketed/scattered access (IS-like): the *order* of chunks is
    random each iteration, so demand page-in order never matches swap
    layout.
    """

    def __init__(
        self,
        footprint_pages: int,
        iterations: int,
        chunk_pages: int = 64,
        dirty_fraction: float = 0.8,
        cpu_per_page_s: float = 5e-6,
        barrier_per_iteration: bool = False,
        comm_s: float = 0.0,
        name: str = "random",
        **kw,
    ) -> None:
        super().__init__(name, footprint_pages, iterations, **kw)
        if chunk_pages <= 0:
            raise ValueError("chunk_pages must be positive")
        self.chunk_pages = chunk_pages
        self.dirty_fraction = dirty_fraction
        self.cpu_per_page_s = cpu_per_page_s
        self.barrier_per_iteration = barrier_per_iteration
        self.comm_s = comm_s

    def iteration_phases(self, it: int, rng: np.random.Generator):
        starts = np.arange(0, self.footprint_pages, self.chunk_pages)
        rng.shuffle(starts)
        cpu_per_chunk = (
            self.cpu_per_page_s * self.footprint_pages / max(1, starts.size)
        )
        n_dirty = int(starts.size * self.dirty_fraction)
        acc: list[PageRange] = []
        acc_pages = 0
        for i, s in enumerate(starts):
            stop = min(int(s) + self.chunk_pages, self.footprint_pages)
            acc.append(PageRange(int(s), stop, dirty=i < n_dirty))
            acc_pages += stop - int(s)
            if acc_pages >= self.max_phase_pages or i == starts.size - 1:
                last = i == starts.size - 1
                yield Phase(
                    tuple(acc),
                    cpu_s=cpu_per_chunk * len(acc),
                    barrier=self.barrier_per_iteration and last,
                    comm_s=self.comm_s if last else 0.0,
                    label=f"{self.name}:scatter{it}",
                )
                acc, acc_pages = [], 0


class StridedWorkload(Workload):
    """Each iteration touches every ``stride``-th chunk, then the rest.

    A deterministic non-sequential pattern useful for exercising the
    read-ahead planner without randomness.
    """

    def __init__(
        self,
        footprint_pages: int,
        iterations: int,
        stride: int = 4,
        chunk_pages: int = 16,
        dirty: bool = True,
        cpu_per_page_s: float = 1e-5,
        name: str = "strided",
        **kw,
    ) -> None:
        super().__init__(name, footprint_pages, iterations, **kw)
        if stride <= 1:
            raise ValueError("stride must be > 1")
        self.stride = stride
        self.chunk_pages = chunk_pages
        self.dirty = dirty
        self.cpu_per_page_s = cpu_per_page_s

    def iteration_phases(self, it: int, rng: np.random.Generator):
        starts = np.arange(0, self.footprint_pages, self.chunk_pages)
        order = np.concatenate(
            [starts[k :: self.stride] for k in range(self.stride)]
        )
        acc: list[PageRange] = []
        acc_pages = 0
        cpu_chunk = self.cpu_per_page_s * self.chunk_pages
        for i, s in enumerate(order):
            stop = min(int(s) + self.chunk_pages, self.footprint_pages)
            acc.append(PageRange(int(s), stop, dirty=self.dirty))
            acc_pages += stop - int(s)
            if acc_pages >= self.max_phase_pages or i == order.size - 1:
                yield Phase(
                    tuple(acc),
                    cpu_s=cpu_chunk * len(acc),
                    label=f"{self.name}:stride{it}",
                )
                acc, acc_pages = [], 0


class PointerChaseWorkload(Workload):
    """Single-page random access — the paging worst case.

    Each iteration touches every page exactly once in a fully random
    per-page order (a pointer chase over the whole footprint), so
    neither the kernel's slot read-ahead nor spatial locality helps the
    baseline at all.  Useful as the adversarial bound in policy
    comparisons: adaptive page-in still wins because the *recorded*
    flush list is read in slot order regardless of access order.
    """

    def __init__(
        self,
        footprint_pages: int,
        iterations: int,
        dirty_fraction: float = 0.5,
        cpu_per_page_s: float = 1e-5,
        pages_per_phase: int = 512,
        name: str = "chase",
        **kw,
    ) -> None:
        super().__init__(name, footprint_pages, iterations, **kw)
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in [0, 1]")
        if pages_per_phase <= 0:
            raise ValueError("pages_per_phase must be positive")
        self.dirty_fraction = dirty_fraction
        self.cpu_per_page_s = cpu_per_page_s
        self.pages_per_phase = min(pages_per_phase, self.max_phase_pages)

    def iteration_phases(self, it: int, rng: np.random.Generator):
        order = rng.permutation(self.footprint_pages)
        n_dirty = int(self.footprint_pages * self.dirty_fraction)
        dirty_set = np.zeros(self.footprint_pages, dtype=bool)
        dirty_set[order[:n_dirty]] = True  # random dirty subset
        for lo in range(0, order.size, self.pages_per_phase):
            chunk = order[lo : lo + self.pages_per_phase]
            # single-page ranges: no spatial locality whatsoever
            ranges = tuple(
                PageRange(int(p), int(p) + 1, bool(dirty_set[p]))
                for p in chunk
            )
            yield Phase(
                ranges,
                cpu_s=self.cpu_per_page_s * chunk.size,
                label=f"{self.name}:chase{it}",
            )


__all__ = [
    "PointerChaseWorkload",
    "RandomAccessWorkload",
    "SequentialSweepWorkload",
    "StridedWorkload",
]
