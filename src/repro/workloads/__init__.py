"""Workload substrate: phase-based memory reference traces.

The paper evaluates with NAS NPB2 programs (LU, SP, CG, IS, MG).  Real
NPB binaries cannot run here, so :mod:`repro.workloads.npb` provides
synthetic generators parameterised by the four properties that drive
paging behaviour: footprint, per-iteration access shape (sequential
sweeps, irregular sparse access, random scatter, multigrid levels),
dirty ratio, and compute density.  :mod:`repro.workloads.synthetic`
offers generic building blocks used by the examples and tests.

A workload is a sequence of :class:`Phase` objects; each phase touches
a set of page ranges (some dirtying), burns CPU, and optionally ends at
a synchronisation barrier (for the parallel MPI-style runs).
"""

from repro.workloads.base import (
    Phase,
    PageRange,
    Workload,
    chunk_ranges,
    expand_phase,
)
from repro.workloads.npb import (
    NPB_BENCHMARKS,
    NpbBenchmark,
    make_npb,
)
from repro.workloads.synthetic import (
    PointerChaseWorkload,
    RandomAccessWorkload,
    SequentialSweepWorkload,
    StridedWorkload,
)

__all__ = [
    "NPB_BENCHMARKS",
    "NpbBenchmark",
    "PageRange",
    "Phase",
    "PointerChaseWorkload",
    "RandomAccessWorkload",
    "SequentialSweepWorkload",
    "StridedWorkload",
    "Workload",
    "chunk_ranges",
    "expand_phase",
    "make_npb",
]
