"""Workload trace recording and replay.

A :class:`Trace` is a fully materialised phase list — every range,
CPU charge, barrier flag and communication payload — detached from the
generator that produced it.  Uses:

* **freezing randomness**: CG/IS shuffle their access order per seed;
  recording once and replaying the *same* trace under different paging
  policies removes workload variance from a comparison entirely;
* **portability**: traces save to ``.npz`` and reload without the
  generator, so measured traces from elsewhere can drive the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.workloads.base import PageRange, Phase, Workload


@dataclass(frozen=True)
class Trace:
    """An immutable, materialised workload trace."""

    name: str
    footprint_pages: int
    phases: tuple[Phase, ...]

    @property
    def nphases(self) -> int:
        return len(self.phases)

    @property
    def total_cpu_s(self) -> float:
        return sum(p.cpu_s for p in self.phases)

    @property
    def total_pages_touched(self) -> int:
        return sum(p.npages for p in self.phases)

    # -- recording ---------------------------------------------------------
    @classmethod
    def record(cls, workload: Workload, rng: np.random.Generator) -> "Trace":
        """Materialise ``workload``'s full phase list."""
        return cls(
            name=workload.name,
            footprint_pages=workload.footprint_pages,
            phases=tuple(workload.phases(rng)),
        )

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise to ``.npz`` (flat arrays; no pickling)."""
        starts, stops, dirties, phase_idx = [], [], [], []
        cpu, barrier, comm, labels = [], [], [], []
        for i, phase in enumerate(self.phases):
            cpu.append(phase.cpu_s)
            barrier.append(phase.barrier)
            comm.append(phase.comm_s)
            labels.append(phase.label)
            for r in phase.ranges:
                starts.append(r.start)
                stops.append(r.stop)
                dirties.append(r.dirty)
                phase_idx.append(i)
        np.savez_compressed(
            Path(path),
            name=np.array(self.name),
            footprint_pages=np.array(self.footprint_pages),
            range_start=np.asarray(starts, dtype=np.int64),
            range_stop=np.asarray(stops, dtype=np.int64),
            range_dirty=np.asarray(dirties, dtype=bool),
            range_phase=np.asarray(phase_idx, dtype=np.int64),
            phase_cpu=np.asarray(cpu, dtype=np.float64),
            phase_barrier=np.asarray(barrier, dtype=bool),
            phase_comm=np.asarray(comm, dtype=np.float64),
            phase_label=np.asarray(labels, dtype=object),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace saved by :meth:`save`."""
        with np.load(Path(path), allow_pickle=True) as data:
            nphases = data["phase_cpu"].size
            ranges_by_phase: list[list[PageRange]] = [
                [] for _ in range(nphases)
            ]
            for start, stop, dirty, idx in zip(
                data["range_start"], data["range_stop"],
                data["range_dirty"], data["range_phase"],
            ):
                ranges_by_phase[int(idx)].append(
                    PageRange(int(start), int(stop), bool(dirty))
                )
            phases = tuple(
                Phase(
                    tuple(ranges_by_phase[i]),
                    cpu_s=float(data["phase_cpu"][i]),
                    barrier=bool(data["phase_barrier"][i]),
                    comm_s=float(data["phase_comm"][i]),
                    label=str(data["phase_label"][i]),
                )
                for i in range(nphases)
            )
            return cls(
                name=str(data["name"]),
                footprint_pages=int(data["footprint_pages"]),
                phases=phases,
            )


class TraceWorkload(Workload):
    """A workload replaying a recorded :class:`Trace` verbatim.

    The trace already contains any randomness, so the ``rng`` passed to
    :meth:`phases` is ignored — two replays are always identical.
    """

    def __init__(self, trace: Trace) -> None:
        super().__init__(
            name=f"{trace.name}:replay",
            footprint_pages=trace.footprint_pages,
            iterations=1,
            init_touch=False,
        )
        self.trace = trace

    def phases(self, rng: np.random.Generator) -> Iterator[Phase]:
        return iter(self.trace.phases)

    def iteration_phases(self, it: int, rng) -> Iterable[Phase]:
        # unused: phases() is overridden wholesale
        return self.trace.phases


__all__ = ["Trace", "TraceWorkload"]
