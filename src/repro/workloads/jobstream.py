"""Open-system job streams: random arrivals of random-sized jobs.

The gang-scheduling literature the paper builds on (refs. [2, 4, 5])
evaluates schedulers against *streams* of arriving jobs, not fixed
pairs.  :func:`generate_stream` draws a reproducible stream with
Poisson arrivals, log-normal memory footprints and log-uniform compute
demands — the standard parallel-workload shape — for the open-system
extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mem.params import mb_to_pages


@dataclass(frozen=True)
class StreamJobSpec:
    """One job of an arrival stream."""

    name: str
    arrival_s: float
    footprint_pages: int
    compute_s: float
    dirty_fraction: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0 or self.compute_s <= 0:
            raise ValueError("invalid job timing")
        if self.footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        if not 0 <= self.dirty_fraction <= 1:
            raise ValueError("dirty_fraction out of range")


def generate_stream(
    rng: np.random.Generator,
    njobs: int,
    mean_interarrival_s: float,
    mem_mb_median: float = 180.0,
    mem_mb_sigma: float = 0.35,
    mem_mb_max: float = 330.0,
    compute_s_range: tuple[float, float] = (180.0, 900.0),
    dirty_range: tuple[float, float] = (0.4, 0.9),
) -> list[StreamJobSpec]:
    """Draw ``njobs`` arrivals.

    * inter-arrival times: exponential with the given mean (Poisson
      process);
    * footprints: log-normal around ``mem_mb_median`` (clipped to
      ``mem_mb_max`` so a single job always fits one node);
    * compute demand: log-uniform over ``compute_s_range``;
    * dirty fraction: uniform over ``dirty_range``.
    """
    if njobs <= 0:
        raise ValueError("njobs must be positive")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    lo, hi = compute_s_range
    if not 0 < lo <= hi:
        raise ValueError("invalid compute range")

    arrivals = np.cumsum(rng.exponential(mean_interarrival_s, njobs))
    mem = np.minimum(
        mem_mb_max,
        mem_mb_median * np.exp(rng.normal(0.0, mem_mb_sigma, njobs)),
    )
    compute = np.exp(rng.uniform(np.log(lo), np.log(hi), njobs))
    dirty = rng.uniform(dirty_range[0], dirty_range[1], njobs)
    return [
        StreamJobSpec(
            name=f"job{i:03d}",
            arrival_s=float(arrivals[i]),
            footprint_pages=max(64, mb_to_pages(float(mem[i]))),
            compute_s=float(compute[i]),
            dirty_fraction=float(dirty[i]),
        )
        for i in range(njobs)
    ]


def offered_load(
    stream: list[StreamJobSpec], capacity_jobs: float = 1.0
) -> float:
    """Offered CPU load of the stream: compute demand per wall second."""
    if not stream:
        return 0.0
    horizon = max(s.arrival_s for s in stream)
    if horizon <= 0:
        return float("inf")
    total = sum(s.compute_s for s in stream)
    return total / (horizon * capacity_jobs)


__all__ = ["StreamJobSpec", "generate_stream", "offered_load"]
