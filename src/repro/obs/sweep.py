"""Sweep-scale observability: cross-process telemetry aggregation.

PR 3's :class:`~repro.obs.registry.Registry` instruments one process;
since the sweep layer (:mod:`repro.perf.pool` /
:mod:`repro.perf.supervisor`) fans cells across worker processes, a
worker's counters and spans never reached the parent.  This module
closes the gap with four pieces:

* **Capture + absorb.**  When capture is on (:func:`set_capture`, or
  automatically via :func:`set_default_sweep`),
  :func:`repro.perf.pool._execute` runs every cell against a fresh
  default registry and attaches its
  :meth:`~repro.obs.registry.Registry.snapshot` (plus the flat
  :func:`~repro.obs.export.summary`) under the result's ``"_perf"``
  quarantine — the established nondeterminism channel, so obs-on and
  obs-off sweeps stay byte-identical outside it and cell cache
  fingerprints never change.  :class:`SweepObserver` folds the shipped
  snapshots into one sweep-level registry, one track group per cell,
  which is what makes ``--trace-out`` meaningful under ``--jobs N``.

* **Sweep summaries.**  :meth:`SweepObserver.summary` is the
  elementwise sum of the per-cell summaries (:func:`merge_summaries`),
  so it *equals* that sum by construction — including span totals,
  which would not survive re-aggregation from raw spans under floating
  point.  Counters, gauges and histograms in the merged registry agree
  with the summed view exactly (additive merges in the same order).

* **Supervisor event log.**  :class:`SweepEventLog` records every
  retry, grace extension, hung-kill, pool rebuild and quarantine as a
  structured entry correlated by cell key + attempt; with journaling
  on it is mirrored to ``<sweep_id>.events.jsonl`` next to the sweep
  journal.  :func:`load_events` / :func:`render_event_table` read a
  log back for ``repro obs``.

* **Progress + bench trajectory.**  :class:`ProgressTicker` renders a
  single-line live done/running/quarantined + ETA + events/sec display
  to stderr (auto-disabled when not a TTY), driven by the supervisor's
  EMA cost estimates.  :func:`load_bench_reports` /
  :func:`render_bench_report` back ``repro obs bench-report``: the
  cumulative fig6 perf trajectory across every committed
  ``BENCH_PR*.json``, with consecutive-step regression flags.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Hashable,
    IO,
    Iterable,
    Mapping,
    Optional,
    Union,
)

from repro.obs.export import summary as registry_summary
from repro.obs.registry import Registry, Span

#: environment flag that turns on worker-side telemetry capture.  An
#: env var rather than a module global because pool workers are child
#: processes: they inherit the environment, not the parent's globals.
CAPTURE_ENV = "REPRO_SWEEP_OBS"


def capture_enabled() -> bool:
    """Whether sweep telemetry capture is on in this process."""
    return os.environ.get(CAPTURE_ENV, "") not in ("", "0")


def set_capture(on: bool) -> None:
    """Raise or clear the capture flag (inherited by new workers)."""
    if on:
        os.environ[CAPTURE_ENV] = "1"
    else:
        os.environ.pop(CAPTURE_ENV, None)


# ---------------------------------------------------------------------------
# summary folding
# ---------------------------------------------------------------------------

def merge_summaries(summaries: Iterable[dict]) -> dict:
    """Elementwise sum of :func:`~repro.obs.export.summary` dicts.

    Counters, gauges, span counts/totals and histogram counts/sums
    add; histogram min/max combine; span ``max_s`` takes the maximum.
    Keys are sorted so the result is deterministic regardless of
    absorb order.
    """
    out: dict[str, dict] = {"counters": {}, "gauges": {},
                            "histograms": {}, "spans": {}}
    for s in summaries:
        for k, v in s.get("counters", {}).items():
            out["counters"][k] = out["counters"].get(k, 0.0) + v
        for k, v in s.get("gauges", {}).items():
            out["gauges"][k] = out["gauges"].get(k, 0.0) + v
        for k, h in s.get("histograms", {}).items():
            agg = out["histograms"].setdefault(
                k, {"count": 0, "sum": 0.0, "min": None, "max": None})
            agg["count"] += h["count"]
            agg["sum"] += h["sum"]
            if h.get("min") is not None and (
                    agg["min"] is None or h["min"] < agg["min"]):
                agg["min"] = h["min"]
            if h.get("max") is not None and (
                    agg["max"] is None or h["max"] > agg["max"]):
                agg["max"] = h["max"]
        for k, sp in s.get("spans", {}).items():
            agg = out["spans"].setdefault(
                k, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            agg["count"] += sp["count"]
            agg["total_s"] += sp["total_s"]
            if sp["max_s"] > agg["max_s"]:
                agg["max_s"] = sp["max_s"]
    return {sec: dict(sorted(vals.items())) for sec, vals in out.items()}


def summary_of_snapshot(snap: dict) -> dict:
    """The flat summary a snapshot's source registry would produce."""
    reg = Registry()
    reg.merge(snap)
    return registry_summary(reg)


# ---------------------------------------------------------------------------
# the sweep observer
# ---------------------------------------------------------------------------

class SweepObserver:
    """Fold per-cell telemetry payloads into one sweep-level view.

    ``registry`` is the merged :class:`~repro.obs.registry.Registry`
    feeding the cross-cell Chrome trace: every absorbed cell's spans
    land under a track prefix built from its cell key (repeat keys are
    disambiguated with ``#n``), plus one ``cell`` marker span per cell
    covering ``[0, makespan)`` so cells without switch-phase spans
    (batch mode) still appear as a track of their own.

    :meth:`summary` is computed from the per-cell summaries, not from
    the merged registry — see :func:`merge_summaries`.
    """

    def __init__(self) -> None:
        #: the merged registry (spans prefixed per cell)
        self.registry = Registry()
        self._summaries: list[tuple[str, dict]] = []
        self._prefix_counts: dict[str, int] = {}
        #: results absorbed without a telemetry payload (e.g. cache
        #: hits stored by an obs-off run, or non-dict cell results)
        self.cells_skipped = 0
        #: cells per persistent-executor worker id, from the
        #: ``_perf["worker"]`` annotation (empty for serial / legacy
        #: pool sweeps, which have no stable worker identity); shows
        #: how evenly the work-stealing scheduler spread the sweep
        self.worker_cells: dict[int, int] = {}

    @property
    def cell_count(self) -> int:
        """Number of cells whose telemetry was absorbed."""
        return len(self._summaries)

    def cell_summaries(self) -> dict[str, dict]:
        """Per-cell flat summaries, keyed by the cell's track prefix."""
        return dict(self._summaries)

    def _prefix(self, key: Hashable) -> str:
        base = key if isinstance(key, str) else repr(key)
        n = self._prefix_counts.get(base, 0)
        self._prefix_counts[base] = n + 1
        return base if n == 0 else f"{base}#{n + 1}"

    def absorb(self, key: Hashable, result: Any) -> bool:
        """Fold one cell result's shipped telemetry; True if absorbed."""
        perf = result.get("_perf") if isinstance(result, dict) else None
        if isinstance(perf, dict) and isinstance(perf.get("worker"),
                                                 int):
            wid = perf["worker"]
            self.worker_cells[wid] = self.worker_cells.get(wid, 0) + 1
        snap = perf.get("obs_snapshot") if isinstance(perf, dict) else None
        if not isinstance(snap, dict):
            self.cells_skipped += 1
            return False
        prefix = self._prefix(key)
        self.registry.merge(snap, track_prefix=prefix)
        # one marker span per cell on the same trace process its own
        # spans map to (or the bare prefix when it recorded none), so
        # every cell — including span-free batch cells — gets exactly
        # one distinct track group in the merged trace
        proc = ""
        if snap.get("spans"):
            proc = snap["spans"][0][1].rpartition("/")[0]
        track = f"{prefix}/{proc}/sweep" if proc else f"{prefix}/sweep"
        end = result.get("makespan")
        end = float(end) if isinstance(end, (int, float)) else 0.0
        self.registry.spans.append(
            Span("cell", track, 0.0, end, {"key": prefix}))
        cell_summary = perf.get("obs")
        if not isinstance(cell_summary, dict):
            cell_summary = summary_of_snapshot(snap)
        self._summaries.append((prefix, cell_summary))
        return True

    def absorb_results(self, merged: Mapping[Hashable, Any]) -> int:
        """Absorb a merged sweep record; returns the absorbed count."""
        return sum(self.absorb(k, v) for k, v in merged.items())

    def summary(self) -> dict:
        """Elementwise sum of the absorbed per-cell summaries.

        Exact by construction: the fold happens on the per-cell
        aggregates themselves, so the result equals the sum of the
        cells' ``summary()`` dicts — including span totals, which a
        re-aggregation over the merged registry's raw spans could
        perturb in the last float ulp.
        """
        return merge_summaries(s for _, s in self._summaries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SweepObserver(cells={self.cell_count}, "
                f"skipped={self.cells_skipped}, registry={self.registry!r})")


_default_sweep: Optional[SweepObserver] = None


def get_default_sweep() -> Optional[SweepObserver]:
    """The process-wide default sweep observer (``None`` = off)."""
    return _default_sweep


def set_default_sweep(obs: Optional[SweepObserver]) -> None:
    """Install (or with ``None`` remove) the default sweep observer.

    Installing also raises the worker capture flag so pool workers
    created afterwards ship their telemetry; removing clears it.
    """
    global _default_sweep
    _default_sweep = obs
    set_capture(obs is not None)


# ---------------------------------------------------------------------------
# supervisor event log
# ---------------------------------------------------------------------------

class SweepEventLog:
    """Structured supervision event log: in-memory, optionally JSONL.

    Every entry carries ``seq`` (monotonic), ``t`` (host epoch
    seconds), ``event``, and — for cell-scoped events — ``key`` (the
    cell key's repr) and ``attempt`` (failed attempts charged so far),
    plus event-specific detail fields.  Event names emitted by the
    supervisor: ``sweep_begin``, ``resumed``, ``retry``,
    ``grace_extension``, ``hung_kill``, ``pool_rebuild``,
    ``requeued``, ``quarantine``, ``cell_done``.
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.entries: list[dict] = []
        self.path: Optional[Path] = None
        self._fh: Optional[IO[str]] = None
        if path is not None:
            self.attach(path)

    def attach(self, path: Union[str, Path]) -> Path:
        """Mirror subsequent entries to a JSONL file (append mode)."""
        self.close_file()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        return self.path

    def log(self, event: str, key: Any = None,
            attempt: Optional[int] = None, **detail: Any) -> dict:
        """Record one event; returns the entry dict."""
        entry: dict = {"seq": len(self.entries), "t": time.time(),
                       "event": event}
        if key is not None:
            entry["key"] = key if isinstance(key, str) else repr(key)
        if attempt is not None:
            entry["attempt"] = int(attempt)
        entry.update(detail)
        self.entries.append(entry)
        if self._fh is not None:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()
        return entry

    def named(self, event: str) -> list[dict]:
        """All entries of one event type, in order."""
        return [e for e in self.entries if e["event"] == event]

    def counts(self) -> dict[str, int]:
        """``{event: occurrences}``, name-sorted."""
        out: dict[str, int] = {}
        for e in self.entries:
            out[e["event"]] = out.get(e["event"], 0) + 1
        return dict(sorted(out.items()))

    def close_file(self) -> None:
        """Stop mirroring to the file (entries stay in memory)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def load_events(path: Union[str, Path]) -> list[dict]:
    """Read a :class:`SweepEventLog` JSONL file back.

    Returns ``[]`` when the file is missing or is not an event log
    (any line that fails to parse as an ``{"event": ...}`` object
    disqualifies the whole file) — callers use that to sniff file
    types.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    events: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            return []
        if not isinstance(obj, dict) or "event" not in obj:
            return []
        events.append(obj)
    return events


def _fmt_detail(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def render_event_table(events: list[dict],
                       title: str = "Supervisor events") -> str:
    """ASCII table of event-log entries (for ``repro obs``)."""
    if not events:
        return f"{title}\n<no events recorded>"
    rows = []
    for e in events:
        detail = {k: v for k, v in e.items()
                  if k not in ("seq", "t", "event", "key", "attempt")}
        rows.append((
            e.get("seq", ""),
            e.get("event", "?"),
            str(e.get("key", "")),
            "" if e.get("attempt") is None else e["attempt"],
            ", ".join(f"{k}={_fmt_detail(v)}"
                      for k, v in sorted(detail.items())),
        ))
    # Imported lazily: repro.metrics pulls in the scheduler stack, which
    # itself imports repro.obs — a module-level import would be circular.
    from repro.metrics.report import format_table

    return format_table(("#", "event", "cell", "attempt", "detail"),
                        rows, title=title)


# ---------------------------------------------------------------------------
# live progress / ETA ticker
# ---------------------------------------------------------------------------

def _fmt_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.0f}"


def _fmt_eta(eta_s: float) -> str:
    eta = max(0, int(round(eta_s)))
    h, rem = divmod(eta, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}h{m:02d}m"
    if m:
        return f"{m}m{s:02d}s"
    return f"{s}s"


class ProgressTicker:
    """Single-line live progress display for long sweeps.

    Renders ``sweep D/T done · R running [· Q quarantined] · X ev/s ·
    ETA E`` to ``stream`` (default stderr) with carriage-return
    rewriting, throttled to ``min_interval_s``.  ``enabled=None``
    auto-detects: on only when the stream is a TTY, so redirected and
    CI output is never polluted.  Rates use *events_dispatched* — the
    host-work counter — accumulated from settled cells.
    """

    def __init__(self, total: int, done: int = 0, stream=None,
                 enabled: Optional[bool] = None,
                 min_interval_s: float = 0.2,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty",
                                   lambda: False)())
        self.enabled = enabled
        self.total = total
        self.done = done
        self.running = 0
        self.quarantined = 0
        self.events = 0.0
        self._clock = clock
        self._t0 = clock()
        self._min_interval = min_interval_s
        self._last_render = float("-inf")
        self._last_len = 0
        self._rendered = False

    def add_events(self, n: float) -> None:
        """Credit dispatched events from one settled cell."""
        self.events += n

    def render_line(self, eta_s: Optional[float] = None) -> str:
        """The current status line (no terminal control characters)."""
        elapsed = max(1e-9, self._clock() - self._t0)
        rate = self.events / elapsed
        parts = [f"sweep {self.done}/{self.total} done",
                 f"{self.running} running"]
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.events > 0:
            parts.append(f"{_fmt_rate(rate)} ev/s")
        if eta_s is not None:
            parts.append(f"ETA {_fmt_eta(eta_s)}")
        return " · ".join(parts)

    def update(self, done: Optional[int] = None,
               running: Optional[int] = None,
               quarantined: Optional[int] = None,
               eta_s: Optional[float] = None,
               force: bool = False) -> None:
        """Refresh the state and (rate-limited) redraw the line."""
        if done is not None:
            self.done = done
        if running is not None:
            self.running = running
        if quarantined is not None:
            self.quarantined = quarantined
        if not self.enabled:
            return
        now = self._clock()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        line = self.render_line(eta_s)
        pad = " " * max(0, self._last_len - len(line))
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_len = len(line)
        self._rendered = True

    def close(self) -> None:
        """Terminate the live line with a newline (if anything drew)."""
        if self.enabled and self._rendered:
            self.stream.write("\n")
            self.stream.flush()


# ---------------------------------------------------------------------------
# bench-trajectory report
# ---------------------------------------------------------------------------

_BENCH_RE = re.compile(r"^BENCH_PR(\d+)\.json$")

#: a trajectory step is flagged when its fig6 wall time exceeds its
#: predecessor's by more than this factor (absorbs host noise between
#: the recorded measurements)
BENCH_REGRESSION_TOLERANCE = 1.1


def load_bench_reports(root: Union[str, Path] = ".") -> list[dict]:
    """Every committed ``BENCH_PR*.json`` under ``root``, PR-sorted.

    Returns ``[{"pr": n, "path": ..., "report": {...}}, ...]``;
    unreadable or malformed files are skipped silently (a fresh
    checkout must not fail on a partial set).
    """
    out = []
    for path in sorted(Path(root).glob("BENCH_PR*.json")):
        m = _BENCH_RE.match(path.name)
        if not m:
            continue
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(report, dict):
            out.append({"pr": int(m.group(1)), "path": str(path),
                        "report": report})
    out.sort(key=lambda r: r["pr"])
    return out


def bench_trajectory(reports: list[dict]) -> list[dict]:
    """The fullest ``fig6_trajectory`` across the reports.

    Every BENCH file carries the cumulative trajectory forward, so the
    longest list is the complete history; rows without a wall time are
    dropped.
    """
    best: list = []
    for r in reports:
        traj = r["report"].get("fig6_trajectory")
        if isinstance(traj, list) and len(traj) > len(best):
            best = traj
    return [t for t in best
            if isinstance(t, dict) and isinstance(t.get("wall_s"),
                                                  (int, float))]


def sweep_speedup_trajectory(reports: list[dict]) -> list[dict]:
    """The fullest parallel-sweep speedup history across the reports.

    Mirrors :func:`bench_trajectory` for the second perf axis: PR 10
    reports carry a cumulative ``sweep_trajectory`` list
    (``[{"pr": "PR2", "speedup": 0.74}, ...]``); older reports that
    predate it contribute their recorded ``sweep.sweep_speedup``
    (BENCH_PR2) as a fallback so the history renders even on a
    checkout whose newest report is old.
    """
    best: list = []
    for r in reports:
        traj = r["report"].get("sweep_trajectory")
        if isinstance(traj, list) and len(traj) > len(best):
            best = traj
    if not best:
        for r in reports:
            sweep = r["report"].get("sweep")
            if isinstance(sweep, dict) and isinstance(
                    sweep.get("sweep_speedup"), (int, float)):
                best.append({"pr": f"PR{r['pr']}",
                             "speedup": sweep["sweep_speedup"],
                             "jobs": sweep.get("jobs"),
                             "host_cpu_count":
                                 r["report"].get("host_cpu_count")})
    return [t for t in best
            if isinstance(t, dict) and isinstance(t.get("speedup"),
                                                  (int, float))]


def flag_regressions(traj: list[dict],
                     tolerance: float = BENCH_REGRESSION_TOLERANCE
                     ) -> list[dict]:
    """Consecutive trajectory steps whose wall time grew past
    ``tolerance``× the previous PR's — each PR's committed measurement
    is the floor its successor is judged against."""
    flags = []
    for prev, cur in zip(traj, traj[1:]):
        if prev["wall_s"] > 0 and cur["wall_s"] > prev["wall_s"] * tolerance:
            flags.append({
                "pr": cur.get("pr"),
                "wall_s": cur["wall_s"],
                "prev_pr": prev.get("pr"),
                "prev_wall_s": prev["wall_s"],
                "factor": cur["wall_s"] / prev["wall_s"],
            })
    return flags


def render_bench_report(reports: list[dict],
                        tolerance: float = BENCH_REGRESSION_TOLERANCE
                        ) -> tuple[str, list[dict]]:
    """(report text, regression flags) for ``repro obs bench-report``."""
    from repro.metrics.report import format_table  # lazy: circular

    traj = bench_trajectory(reports)
    lines = []
    if traj:
        base = traj[0]["wall_s"]
        rows = []
        prev: Optional[float] = None
        for t in traj:
            step = "" if prev is None or prev <= 0 \
                else f"{prev / t['wall_s']:.2f}x"
            rows.append((
                t.get("pr", "?"),
                f"{t['wall_s']:.3f}",
                f"{base / t['wall_s']:.2f}x" if t["wall_s"] > 0 else "?",
                step,
            ))
            prev = t["wall_s"]
        lines.append(format_table(
            ("pr", "fig6 wall s", "vs seed", "vs prev"),
            rows, title="Figure-6 LRU cell perf trajectory"))
    else:
        lines.append("no fig6 trajectory found in BENCH reports")
    sweep_traj = sweep_speedup_trajectory(reports)
    if sweep_traj:
        rows = []
        for t in sweep_traj:
            speedup = t["speedup"]
            jobs = t.get("jobs")
            cpus = t.get("host_cpu_count")
            note = t.get("note", "")
            if not note and isinstance(cpus, int) and cpus < 4:
                note = f"{cpus}-cpu host"
            rows.append((
                t.get("pr", "?"),
                f"{speedup:.2f}x",
                str(jobs) if jobs is not None else "?",
                str(cpus) if cpus is not None else "?",
                note,
            ))
        lines.append("")
        lines.append(format_table(
            ("pr", "sweep speedup", "jobs", "host cpus", "note"),
            rows, title="Parallel sweep speedup trajectory "
                        "(vs serial, target 1.50x)"))
    rows = [
        (f"PR{r['pr']}", r["report"].get("mode", "?"),
         str(r["report"].get("bench", "?")), r["path"])
        for r in reports
    ]
    if rows:
        lines.append("")
        lines.append(format_table(("report", "mode", "bench", "file"),
                                  rows, title="Committed BENCH reports"))
    regressions = flag_regressions(traj, tolerance)
    lines.append("")
    for f in regressions:
        lines.append(
            f"REGRESSION: {f['pr']} fig6 wall {f['wall_s']:.3f}s is "
            f"{f['factor']:.2f}x {f['prev_pr']} "
            f"({f['prev_wall_s']:.3f}s), beyond the {tolerance:.2f}x "
            f"tolerance")
    if not regressions and traj:
        lines.append(
            f"no regressions: every step within {tolerance:.2f}x of "
            f"its predecessor")
    return "\n".join(lines), regressions


__all__ = [
    "BENCH_REGRESSION_TOLERANCE",
    "CAPTURE_ENV",
    "ProgressTicker",
    "SweepEventLog",
    "SweepObserver",
    "bench_trajectory",
    "capture_enabled",
    "flag_regressions",
    "get_default_sweep",
    "load_bench_reports",
    "load_events",
    "merge_summaries",
    "render_bench_report",
    "render_event_table",
    "set_capture",
    "set_default_sweep",
    "summary_of_snapshot",
    "sweep_speedup_trajectory",
]
