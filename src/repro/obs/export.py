"""Telemetry exporters: Chrome trace, JSONL, summary dicts, reports.

Three consumption paths for one :class:`~repro.obs.registry.Registry`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by ``chrome://tracing`` and Perfetto.  Span tracks
  map to trace threads, run scopes map to trace processes, so a
  multi-cell experiment (e.g. the four Figure-6 policies) renders as
  four process groups with per-node switch-phase lanes.
* :func:`write_jsonl` — one JSON object per line (counters first, then
  spans), for ad-hoc ``jq``/pandas analysis.
* :func:`summary` — a flat, JSON-ready dict of every counter, gauge,
  histogram and per-phase span aggregate.  Deterministic for a given
  simulation (everything is keyed on simulated time), which is what
  lets :func:`repro.experiments.runner.run_cell` ship it through the
  perf pool's reserved ``"_perf"`` quarantine without breaking the
  serial-vs-parallel byte-identity guarantee.

:func:`phase_breakdown` + :func:`render_phase_table` turn the recorded
switch-phase spans into the where-does-switch-time-go table — the
paper's Fig. 1 decomposition, measured.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.registry import Registry, Span

#: Canonical ordering of the switch-phase spans in reports.
PHASE_ORDER = ("switch", "drain", "page_out", "page_in_prefetch",
               "demand_fill")


def _labels_dict(labels: tuple[tuple[str, str], ...]) -> dict[str, str]:
    return {k: str(v) for k, v in labels}


def _flat_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


# ---------------------------------------------------------------------------
# summary / JSONL
# ---------------------------------------------------------------------------

def summary(reg: Registry) -> dict:
    """Flatten a registry into a deterministic, JSON-ready dict."""
    spans: dict[str, dict] = {}
    for s in reg.spans:
        agg = spans.setdefault(s.name, {"count": 0, "total_s": 0.0,
                                        "max_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += s.duration
        if s.duration > agg["max_s"]:
            agg["max_s"] = s.duration
    return {
        "counters": {
            _flat_name(c.name, c.labels): c.value for c in reg.counters()
        },
        "gauges": {
            _flat_name(g.name, g.labels): g.value for g in reg.gauges()
        },
        "histograms": {
            _flat_name(h.name, h.labels): h.snapshot()
            for h in reg.histograms()
        },
        "spans": spans,
    }


def write_jsonl(reg: Registry, path: Union[str, Path]) -> Path:
    """Write counters then spans, one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for c in reg.counters():
            fh.write(json.dumps({
                "type": "counter", "name": c.name,
                "labels": _labels_dict(c.labels), "value": c.value,
            }, sort_keys=True) + "\n")
        for g in reg.gauges():
            fh.write(json.dumps({
                "type": "gauge", "name": g.name,
                "labels": _labels_dict(g.labels), "value": g.value,
            }, sort_keys=True) + "\n")
        for h in reg.histograms():
            fh.write(json.dumps({
                "type": "histogram", "name": h.name,
                "labels": _labels_dict(h.labels), **h.snapshot(),
            }, sort_keys=True) + "\n")
        for s in reg.spans:
            fh.write(json.dumps({
                "type": "span", "name": s.name, "track": s.track,
                "start": s.start, "end": s.end, "args": s.args or {},
            }, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

def chrome_trace(reg: Registry) -> dict:
    """Registry → Trace Event Format dict (object form).

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; each run scope is a trace *process*, each track within
    it a trace *thread*, both named via metadata events.
    """
    # track "<run>/<node>" → process <run>, thread <node>.  Run labels
    # may themselves contain "/" (policy specs like "so/ao/ai/bg"), so
    # split at the LAST separator: component track names never do.
    procs: dict[str, int] = {}
    threads: dict[tuple[str, str], int] = {}
    split: list[tuple[Span, str, str]] = []
    for s in reg.spans:
        proc, _, thread = s.track.rpartition("/")
        if not proc:
            proc, thread = "sim", s.track
        split.append((s, proc, thread))
    for _, proc, thread in split:
        if proc not in procs:
            procs[proc] = len(procs)
        key = (proc, thread)
        if key not in threads:
            threads[key] = sum(1 for p, _ in threads if p == proc)

    events: list[dict] = []
    for proc, pid in procs.items():
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": proc},
        })
    for (proc, thread), tid in threads.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": procs[proc],
            "tid": tid, "args": {"name": thread},
        })

    spans_ev = []
    for s, proc, thread in split:
        spans_ev.append({
            "name": s.name,
            "cat": "obs",
            "ph": "X",
            "ts": s.start * 1e6,            # Trace Event ts is in µs
            "dur": (s.end - s.start) * 1e6,
            "pid": procs[proc],
            "tid": threads[(proc, thread)],
            "args": s.args or {},
        })
    # Stable nesting: at equal start time the longer (enclosing) span
    # must come first for viewers that honour emission order.
    spans_ev.sort(key=lambda e: (e["ts"], -e["dur"], e["pid"], e["tid"]))
    events.extend(spans_ev)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": "simulated seconds x 1e6",
            "counters": {
                _flat_name(c.name, c.labels): c.value
                for c in reg.counters()
            },
        },
    }


def write_chrome_trace(reg: Registry, path: Union[str, Path]) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(chrome_trace(reg), fh, indent=1)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# phase-breakdown report
# ---------------------------------------------------------------------------

def _iter_spans(source: Union[Registry, Iterable[Span]]) -> list[Span]:
    if isinstance(source, Registry):
        return list(source.spans)
    return list(source)


def phase_breakdown(source: Union[Registry, Iterable[Span]],
                    run: Optional[str] = None) -> list[dict]:
    """Aggregate spans by phase name: count, total, mean, share.

    ``share`` is each phase's total relative to the ``switch`` total
    when switch spans exist (so drain + page_out + page_in_prefetch
    decompose the switch), else relative to the grand total.  Returns
    rows in :data:`PHASE_ORDER` then alphabetically.
    """
    spans = _iter_spans(source)
    if run is not None:
        prefix = f"{run}/"
        spans = [s for s in spans
                 if s.track.startswith(prefix) or s.track == run]
    agg: dict[str, dict] = {}
    for s in spans:
        row = agg.setdefault(s.name, {"phase": s.name, "count": 0,
                                      "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += s.duration
        if s.duration > row["max_s"]:
            row["max_s"] = s.duration
    base = agg.get("switch", {}).get("total_s", 0.0)
    if base <= 0.0:
        base = sum(r["total_s"] for r in agg.values())
    for row in agg.values():
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
        row["share"] = row["total_s"] / base if base > 0 else 0.0
    order = {name: i for i, name in enumerate(PHASE_ORDER)}
    return sorted(
        agg.values(),
        key=lambda r: (order.get(r["phase"], len(order)), r["phase"]),
    )


def render_phase_table(rows: list[dict],
                       title: str = "Switch-phase breakdown") -> str:
    """ASCII table for :func:`phase_breakdown` rows."""
    if not rows:
        return f"{title}\n<no spans recorded>"
    body = [
        (r["phase"], r["count"], f"{r['total_s']:.2f}",
         f"{r['mean_s']:.3f}", f"{r['max_s']:.3f}",
         f"{100.0 * r['share']:.1f}%")
        for r in rows
    ]
    # Imported lazily: repro.metrics pulls in the scheduler stack, which
    # itself imports repro.obs — a module-level import would be circular.
    from repro.metrics.report import format_table

    return format_table(
        ("phase", "spans", "total s", "mean s", "max s", "share"),
        body, title=title,
    )


def render_counter_table(reg: Registry, prefixes: tuple[str, ...] = (),
                         title: str = "Counters") -> str:
    """ASCII table of counter values, optionally prefix-filtered.

    ``prefixes`` selects counters whose *name* starts with any entry
    (empty = all).  Used by ``repro obs`` to surface host-side
    counters (``cellcache_*``, ``supervisor_*``) that live outside the
    simulated-time phase table.
    """
    rows = [
        (_flat_name(c.name, c.labels), c.value)
        for c in reg.counters()
        if not prefixes or any(c.name.startswith(p) for p in prefixes)
    ]
    if not rows:
        return f"{title}\n<no matching counters>"
    # Imported lazily: repro.metrics pulls in the scheduler stack, which
    # itself imports repro.obs — a module-level import would be circular.
    from repro.metrics.report import format_table

    return format_table(("counter", "value"), rows, title=title)


def load_spans(path: Union[str, Path]) -> list[Span]:
    """Read spans back from a Chrome trace or JSONL file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    # JSONL lines also start with "{", so sniffing the first character
    # is not enough: a Chrome trace parses as ONE document, a JSONL
    # file does not (line two fails with "Extra data").
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        spans = []
        for ev in doc.get("traceEvents", []):
            if ev.get("ph") != "X":
                continue
            start = ev["ts"] / 1e6
            spans.append(Span(
                name=ev["name"],
                track=f"{ev.get('pid', 0)}/{ev.get('tid', 0)}",
                start=start,
                end=start + ev.get("dur", 0.0) / 1e6,
                args=ev.get("args") or None,
            ))
        return spans
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("type") != "span":
            continue
        spans.append(Span(
            name=obj["name"], track=obj["track"],
            start=obj["start"], end=obj["end"],
            args=obj.get("args") or None,
        ))
    return spans


__all__ = [
    "PHASE_ORDER",
    "chrome_trace",
    "load_spans",
    "phase_breakdown",
    "render_counter_table",
    "render_phase_table",
    "summary",
    "write_chrome_trace",
    "write_jsonl",
]
