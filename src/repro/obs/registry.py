"""The telemetry registry: counters, gauges, histograms and spans.

One :class:`Registry` holds every metric a simulation emits.  Metrics
are identified by a name plus arbitrary string labels (``node=...``,
``job=...``, ``op=...``); asking for the same (name, labels) pair twice
returns the same instrument, so instrumented components create their
instruments once at construction time and pay only an attribute
increment on the hot path.

Spans record *where simulated time goes*: a span is a named interval
``[start, end)`` on a named track (one track per node, plus a
scheduler track), optionally carrying structured args.  The gang
scheduler and the VMM emit the switch-phase spans (``switch`` →
``drain`` / ``page_out`` / ``page_in_prefetch`` / ``demand_fill``) that
make the paper's mechanism claims directly measurable per quantum.

Zero-overhead guarantee
-----------------------
:data:`NULL_OBS` — a shared :class:`NullRegistry` — is the default
``obs`` argument of every instrumented component.  Its factory methods
return one shared no-op instrument and its ``span()`` does nothing, so
a run without telemetry pays a handful of no-op method calls per disk
request / switch and allocates nothing.  Crucially the instrumentation
never creates simulation events or reads anything but ``env.now``, so
instrumented and uninstrumented runs are bit-for-bit identical in
simulated time and event counts.

Run scoping
-----------
One registry may observe several experiment runs (e.g. the four policy
cells of Figure 6).  :meth:`Registry.begin_run` opens a named scope:
instruments created inside it gain an implicit ``run=<id>`` label and
span tracks are prefixed with the run id, so cells stay separable in
exports and in :meth:`Registry.value` queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Optional

import numpy as np


@dataclass(slots=True)
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float = 0.0

    def inc(self, n: float = 1) -> None:
        self.value += n


@dataclass(slots=True)
class Gauge:
    """A value that goes up and down (last write wins)."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v


@dataclass(slots=True)
class Histogram:
    """Summary statistics of an observed distribution.

    Stores count/sum/min/max rather than buckets: enough for the
    mechanism analyses (mean burst length, worst-case switch) without
    per-observation allocation.
    """

    name: str
    labels: tuple[tuple[str, str], ...]
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    def observe_many(self, values) -> None:
        """Bulk :meth:`observe` of a 1-d float array.

        The running ``total`` is folded left-to-right exactly as the
        equivalent sequence of scalar observes would, so the
        batch-advance tier produces bit-identical summaries.
        """
        n = int(values.size)
        if n == 0:
            return
        self.count += n
        self.total = float(np.add.accumulate(
            np.concatenate(([self.total], values)))[-1])
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.vmin:
            self.vmin = lo
        if hi > self.vmax:
            self.vmax = hi

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
        }


@dataclass(frozen=True)
class Span:
    """One named interval of simulated time on one track."""

    name: str
    track: str
    start: float
    end: float
    args: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: records nothing, allocates nothing.

    Same trick as :class:`repro.sim.tracing.EventTracer`: components
    are always instrumented, but against this sink the instrumentation
    degenerates to no-op method calls.
    """

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str, track: str, start: float, end: float,
             **args: Any) -> None:
        pass

    def begin_run(self, label: str) -> None:
        return None

    def end_run(self) -> None:
        pass

    @property
    def current_run(self) -> None:
        return None

    def value(self, name: str, **labels: str) -> float:
        return 0.0


#: The process-wide disabled registry (default everywhere).
NULL_OBS = NullRegistry()


class Registry:
    """A live telemetry registry (see module docstring)."""

    enabled = True

    #: wire format version of :meth:`snapshot` / :meth:`merge`
    SNAPSHOT_VERSION = 1

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self.spans: list[Span] = []
        self._run_id: Optional[str] = None
        self._run_seq = count()

    # -- run scoping -------------------------------------------------------
    def begin_run(self, label: str) -> str:
        """Open a run scope; returns its id (``<n>:<label>``).

        Instruments created and spans emitted until :meth:`end_run`
        carry the id (as a ``run`` label / track prefix).
        """
        self._run_id = f"{next(self._run_seq)}:{label}"
        return self._run_id

    def end_run(self) -> None:
        """Close the current run scope (idempotent)."""
        self._run_id = None

    @property
    def current_run(self) -> Optional[str]:
        return self._run_id

    # -- instruments -------------------------------------------------------
    def _key(self, name: str, labels: dict[str, str]) -> tuple:
        if self._run_id is not None and "run" not in labels:
            labels["run"] = self._run_id
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels: str) -> Counter:
        key = self._key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = self._key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = self._key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1])
        return h

    # -- spans -------------------------------------------------------------
    def span(self, name: str, track: str, start: float, end: float,
             **args: Any) -> None:
        """Record a completed span on ``track`` (run-prefixed if scoped)."""
        if self._run_id is not None:
            track = f"{self._run_id}/{track}"
        self.spans.append(Span(name, track, start, end, args or None))

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> dict:
        """Compact, picklable and JSON-able dump of everything recorded.

        Instruments are label-sorted (the same deterministic order
        :meth:`counters` / :meth:`gauges` / :meth:`histograms` return);
        spans keep insertion order.  The inverse is :meth:`merge` — the
        pair is the worker-to-parent telemetry transport of
        :mod:`repro.obs.sweep`: a worker process snapshots its per-cell
        registry, ships the dict through the ``"_perf"`` quarantine,
        and the sweep observer folds it into the sweep-level registry.
        """
        return {
            "v": self.SNAPSHOT_VERSION,
            "counters": [
                [c.name, [list(kv) for kv in c.labels], c.value]
                for c in self.counters()
            ],
            "gauges": [
                [g.name, [list(kv) for kv in g.labels], g.value]
                for g in self.gauges()
            ],
            "histograms": [
                [h.name, [list(kv) for kv in h.labels], h.count, h.total,
                 h.vmin if h.count else None, h.vmax if h.count else None]
                for h in self.histograms()
            ],
            "spans": [
                [s.name, s.track, s.start, s.end, s.args]
                for s in self.spans
            ],
        }

    def merge(self, other: "Registry | dict",
              track_prefix: Optional[str] = None) -> None:
        """Fold another registry (or one of its snapshots) into this one.

        Deterministic label-sorted semantics: instruments match by
        (name, sorted labels) exactly as recorded — the current run
        scope is deliberately *not* injected, a snapshot's labels are
        final.  Counters and histogram statistics add.  Gauges add
        too: last-write-wins is a within-process notion that does not
        survive aggregation, so the sweep view of a gauge is the sum
        of per-cell final values.  Spans append in snapshot order with
        ``track_prefix + "/"`` prepended when given — which is what
        gives every cell its own track group in a merged Chrome trace.
        """
        snap = other.snapshot() if isinstance(other, Registry) else other
        version = snap.get("v")
        if version != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"cannot merge registry snapshot version {version!r} "
                f"(expected {self.SNAPSHOT_VERSION})"
            )
        for name, labels, value in snap["counters"]:
            key = (name, tuple((k, v) for k, v in labels))
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter(name, key[1])
            c.value += value
        for name, labels, value in snap["gauges"]:
            key = (name, tuple((k, v) for k, v in labels))
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge(name, key[1])
            g.value += value
        for name, labels, cnt, total, vmin, vmax in snap["histograms"]:
            key = (name, tuple((k, v) for k, v in labels))
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(name, key[1])
            h.count += cnt
            h.total += total
            if vmin is not None and vmin < h.vmin:
                h.vmin = vmin
            if vmax is not None and vmax > h.vmax:
                h.vmax = vmax
        for name, track, start, end, args in snap["spans"]:
            if track_prefix:
                track = f"{track_prefix}/{track}"
            self.spans.append(Span(name, track, start, end, args or None))

    # -- queries -----------------------------------------------------------
    def value(self, name: str, **labels: str) -> float:
        """Sum of all counters named ``name`` whose labels ⊇ ``labels``."""
        want = labels.items()
        total = 0.0
        for c in self._counters.values():
            if c.name != name:
                continue
            have = dict(c.labels)
            if all(have.get(k) == v for k, v in want):
                total += c.value
        return total

    def counters(self) -> list[Counter]:
        """All counters, sorted by (name, labels) for determinism."""
        return sorted(self._counters.values(),
                      key=lambda c: (c.name, c.labels))

    def gauges(self) -> list[Gauge]:
        return sorted(self._gauges.values(),
                      key=lambda g: (g.name, g.labels))

    def histograms(self) -> list[Histogram]:
        return sorted(self._histograms.values(),
                      key=lambda h: (h.name, h.labels))

    def spans_named(self, name: str,
                    run: Optional[str] = None) -> list[Span]:
        """Spans with ``name``, optionally restricted to one run scope."""
        out = [s for s in self.spans if s.name == name]
        if run is not None:
            prefix = f"{run}/"
            out = [s for s in out if s.track.startswith(prefix)]
        return out

    def clear(self) -> None:
        """Drop every recorded instrument and span."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()
        self._run_id = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Registry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)}, spans={len(self.spans)})"
        )


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_OBS",
    "NullRegistry",
    "Registry",
    "Span",
]
