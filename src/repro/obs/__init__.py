"""Unified telemetry: counters, switch-phase spans, trace export.

The observability layer of the reproduction.  Components throughout
:mod:`repro.sim` / :mod:`repro.mem` / :mod:`repro.core` /
:mod:`repro.disk` / :mod:`repro.gang` accept an ``obs`` registry and
emit named counters, histograms and switch-phase spans into it; the
exporters in :mod:`repro.obs.export` turn one registry into a Chrome
trace (``chrome://tracing`` / Perfetto), a JSONL stream, or a flat
summary dict.

Disabled by default: every instrumented component defaults to
:data:`NULL_OBS`, whose methods are no-ops (the
:class:`~repro.sim.tracing.EventTracer` trick).  Telemetry never
creates simulation events, so enabling it cannot perturb simulated
time — instrumented and uninstrumented runs are bit-for-bit identical
in makespan and event counts (enforced by ``tests/obs``).

Process default
---------------
The CLI enables telemetry for a whole experiment invocation without
threading a registry through every harness: :func:`set_default`
installs a registry that :func:`repro.experiments.runner.run_experiment`
picks up when no explicit ``obs`` is passed.  The default is
process-local — parallel sweep workers (``--jobs N``) do not inherit
it; use ``run_cell(cfg, obs_enabled=True)`` for per-cell summaries
that merge through the ``"_perf"`` quarantine instead.

Sweep scale
-----------
:mod:`repro.obs.sweep` extends the single-process registry across a
multi-process sweep: workers ship ``Registry.snapshot()`` payloads
through the ``"_perf"`` channel and a :class:`SweepObserver` merges
them into one sweep-level registry (per-cell trace tracks, exact
summed summaries), plus the supervisor event log, the live progress
ticker, and the ``BENCH_PR*.json`` trajectory reporter.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.export import (
    PHASE_ORDER,
    chrome_trace,
    load_spans,
    phase_breakdown,
    render_counter_table,
    render_phase_table,
    summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_OBS,
    NullRegistry,
    Registry,
    Span,
)
from repro.obs.sweep import (
    ProgressTicker,
    SweepEventLog,
    SweepObserver,
    capture_enabled,
    get_default_sweep,
    load_bench_reports,
    load_events,
    merge_summaries,
    render_bench_report,
    render_event_table,
    set_default_sweep,
)

_default: Union[Registry, NullRegistry] = NULL_OBS


def get_default() -> Union[Registry, NullRegistry]:
    """The process-wide default registry (NULL_OBS unless installed)."""
    return _default


def set_default(reg: Optional[Registry]) -> None:
    """Install (or with ``None`` remove) the process default registry."""
    global _default
    _default = reg if reg is not None else NULL_OBS


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_OBS",
    "NullRegistry",
    "PHASE_ORDER",
    "ProgressTicker",
    "Registry",
    "Span",
    "SweepEventLog",
    "SweepObserver",
    "capture_enabled",
    "chrome_trace",
    "get_default",
    "get_default_sweep",
    "load_bench_reports",
    "load_events",
    "load_spans",
    "merge_summaries",
    "phase_breakdown",
    "render_bench_report",
    "render_counter_table",
    "render_event_table",
    "render_phase_table",
    "set_default",
    "set_default_sweep",
    "summary",
    "write_chrome_trace",
    "write_jsonl",
]
