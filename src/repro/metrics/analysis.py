"""Derived metrics matching the paper's definitions.

The paper compares three execution modes of the same two-instance
workload:

``batch``   the two instances run one after the other — no switches, so
            its makespan is the zero-overhead reference (§4.1);
``lru``     gang-scheduled under the unmodified paging policy;
``policy``  gang-scheduled under an adaptive-mechanism combination.

From these:

* **switching overhead** (Fig. 7b/8b/9b): the fraction of the gang
  makespan attributable to job switching,
  ``(T_gang - T_batch) / T_gang``;
* **paging reduction** (Fig. 7c/8c/9c): how much of the original
  policy's switching overhead the adaptive policy removes,
  ``1 - (T_policy - T_batch) / (T_lru - T_batch)``.
"""

from __future__ import annotations


def overhead_seconds(gang_makespan: float, batch_makespan: float) -> float:
    """Absolute job-switching overhead in seconds (clamped at 0)."""
    return max(0.0, gang_makespan - batch_makespan)


def overhead_fraction(gang_makespan: float, batch_makespan: float) -> float:
    """Fraction of the gang makespan spent on job switching."""
    if gang_makespan <= 0:
        raise ValueError("gang makespan must be positive")
    return overhead_seconds(gang_makespan, batch_makespan) / gang_makespan


def paging_reduction(
    lru_makespan: float,
    policy_makespan: float,
    batch_makespan: float,
) -> float:
    """Reduction of switching overhead relative to the original policy.

    1.0 means the adaptive policy eliminated all overhead; 0.0 means it
    matched plain LRU; negative values mean it was worse.  When the
    baseline itself has (near-)zero overhead the reduction is defined
    as 0 (nothing to reduce) — the CG-on-4-nodes case of §4.2.
    """
    base = overhead_seconds(lru_makespan, batch_makespan)
    if base <= 1e-9:
        return 0.0
    mine = overhead_seconds(policy_makespan, batch_makespan)
    return 1.0 - mine / base


__all__ = ["overhead_fraction", "overhead_seconds", "paging_reduction"]
