"""Measurement layer: paging traces, completion metrics, reports.

:class:`MetricsCollector` hooks every node's disk to record paging
events (the Figure 6 activity traces) and the scheduler's switches.
:mod:`repro.metrics.analysis` computes the paper's derived quantities —
switching overhead against the batch baseline (§4.1 Fig. 7b) and paging
reduction relative to the original LRU (§4.1 Fig. 7c).
:mod:`repro.metrics.report` renders ASCII tables and time series for
the experiment harnesses.
"""

from repro.metrics.analysis import (
    overhead_fraction,
    overhead_seconds,
    paging_reduction,
)
from repro.metrics.collector import MetricsCollector, PagingEvent
from repro.metrics.report import ascii_series, format_table
from repro.metrics.timeline import (
    JobBreakdown,
    NodeUtilization,
    job_breakdown,
    node_utilization,
    render_breakdown,
)

__all__ = [
    "JobBreakdown",
    "MetricsCollector",
    "NodeUtilization",
    "PagingEvent",
    "ascii_series",
    "format_table",
    "job_breakdown",
    "node_utilization",
    "overhead_fraction",
    "overhead_seconds",
    "paging_reduction",
    "render_breakdown",
]
