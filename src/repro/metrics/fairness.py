"""Fairness metrics for gang schedules.

Gang scheduling's promise (paper §1) is *fair* time-sharing: every job
makes progress each rotation.  These helpers quantify it:

* :func:`cpu_shares` — each job's consumed CPU as a share of the total;
* :func:`jains_index` — Jain's fairness index over those shares
  (1.0 = perfectly equal, 1/n = one job got everything);
* :func:`progress_ratios` — consumed CPU over demanded CPU per job, a
  completion-progress view usable mid-run.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.gang.job import Job


def cpu_shares(jobs: Iterable[Job]) -> dict[str, float]:
    """Fraction of all consumed CPU seconds received by each job."""
    consumed = {
        job.name: sum(p.control.cpu_consumed_s for p in job.processes)
        for job in jobs
    }
    total = sum(consumed.values())
    if total <= 0:
        return {name: 0.0 for name in consumed}
    return {name: c / total for name, c in consumed.items()}


def jains_index(values: Sequence[float] | Mapping[str, float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``."""
    if isinstance(values, Mapping):
        values = list(values.values())
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    if np.any(arr < 0):
        raise ValueError("shares must be non-negative")
    denom = arr.size * float((arr ** 2).sum())
    if denom == 0:
        return 1.0  # all zero: trivially equal
    return float(arr.sum()) ** 2 / denom


def progress_ratios(jobs: Iterable[Job],
                    demands_s: Mapping[str, float]) -> dict[str, float]:
    """Consumed CPU over total demand per job (1.0 = finished compute)."""
    out = {}
    for job in jobs:
        demand = demands_s.get(job.name)
        if demand is None or demand <= 0:
            raise ValueError(f"no positive demand for {job.name}")
        consumed = sum(p.control.cpu_consumed_s for p in job.processes)
        out[job.name] = consumed / demand
    return out


__all__ = ["cpu_shares", "jains_index", "progress_ratios"]
