"""Per-job time breakdowns and node utilisation summaries.

Answers "where did the time go?" for a finished run:

* :func:`job_breakdown` — per job: CPU actually consumed, time stopped
  by the gang scheduler, and the remainder (paging waits + barrier
  synchronisation), from the process controls' accounting;
* :func:`node_utilization` — per node: disk-busy share of the makespan
  and the paging read/write split, from the metrics collector;
* :func:`render_breakdown` — the stacked ASCII view of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gang.job import Job
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_table


@dataclass(frozen=True)
class JobBreakdown:
    """Where one job's wall-clock time went (per slowest rank)."""

    name: str
    completion_s: float
    cpu_s: float
    stopped_s: float
    #: completion - cpu - stopped: paging waits + barrier sync + switch
    other_s: float

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_s / self.completion_s if self.completion_s else 0.0


def job_breakdown(jobs: Iterable[Job]) -> list[JobBreakdown]:
    """Compute per-job breakdowns (jobs must be finished)."""
    out = []
    for job in jobs:
        if not job.finished:
            raise ValueError(f"{job.name} has not finished")
        # the slowest rank determines the job's completion; average the
        # rank accounting (ranks are symmetric under gang scheduling)
        n = len(job.processes)
        cpu = sum(p.control.cpu_consumed_s for p in job.processes) / n
        stopped = sum(p.control.stopped_waiting_s for p in job.processes) / n
        other = max(0.0, job.completed_at - cpu - stopped)
        out.append(
            JobBreakdown(job.name, job.completed_at, cpu, stopped, other)
        )
    return out


@dataclass(frozen=True)
class NodeUtilization:
    """One node's disk activity over a run."""

    node: str
    disk_busy_s: float
    pages_read: int
    pages_written: int

    def busy_fraction(self, makespan_s: float) -> float:
        """Disk-busy share of the run's makespan."""
        return self.disk_busy_s / makespan_s if makespan_s else 0.0


def node_utilization(collector: MetricsCollector) -> list[NodeUtilization]:
    """Aggregate the collector's paging events per node."""
    nodes = sorted({e.node for e in collector.paging})
    return [
        NodeUtilization(
            node,
            collector.io_busy_seconds(node=node),
            collector.pages_moved(op="read", node=node),
            collector.pages_moved(op="write", node=node),
        )
        for node in nodes
    ]


def _bar(fractions: Sequence[tuple[str, float]], width: int = 40) -> str:
    """Stacked bar: one glyph per segment kind, proportional widths."""
    glyphs = {"cpu": "█", "stopped": "░", "other": "▒"}
    cells = []
    for kind, frac in fractions:
        cells.append(glyphs.get(kind, "?") * max(0, round(frac * width)))
    return "|" + "".join(cells)[:width].ljust(width) + "|"


def render_breakdown(
    jobs: Iterable[Job],
    collector: MetricsCollector | None = None,
    makespan_s: float | None = None,
    width: int = 40,
) -> str:
    """Tables + stacked bars for jobs (and nodes, if a collector given)."""
    downs = job_breakdown(jobs)
    rows = []
    for d in downs:
        total = d.completion_s or 1.0
        bar = _bar(
            [
                ("cpu", d.cpu_s / total),
                ("stopped", d.stopped_s / total),
                ("other", d.other_s / total),
            ],
            width,
        )
        rows.append(
            (
                d.name,
                f"{d.completion_s:.0f}",
                f"{d.cpu_s:.0f}",
                f"{d.stopped_s:.0f}",
                f"{d.other_s:.0f}",
                bar,
            )
        )
    out = format_table(
        ("job", "done [s]", "cpu [s]", "stopped [s]", "paging+sync [s]",
         "█ cpu ░ stopped ▒ other"),
        rows,
        title="Per-job time breakdown",
    )
    if collector is not None:
        utils = node_utilization(collector)
        mk = makespan_s or max((d.completion_s for d in downs), default=0.0)
        nrows = [
            (
                u.node,
                f"{u.disk_busy_s:.0f}",
                f"{u.busy_fraction(mk):.0%}",
                u.pages_read,
                u.pages_written,
            )
            for u in utils
        ]
        out += "\n\n" + format_table(
            ("node", "disk busy [s]", "busy share", "pages in", "pages out"),
            nrows,
            title="Per-node paging utilisation",
        )
    return out


__all__ = [
    "JobBreakdown",
    "NodeUtilization",
    "job_breakdown",
    "node_utilization",
    "render_breakdown",
]
