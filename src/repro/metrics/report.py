"""Plain-text rendering of tables and time series.

The experiment harnesses print the same rows/series the paper's figures
show; everything renders in a terminal with no plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: eight-level block characters for ASCII time series
_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), len(sep)))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in srows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3g}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)


def ascii_series(
    values: np.ndarray | Sequence[float],
    width: int = 80,
    label: str = "",
    vmax: float | None = None,
) -> str:
    """Render a series as one line of block characters.

    Values are re-binned to ``width`` columns (sum within each column)
    and scaled to ``vmax`` (default: the series maximum).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return f"{label:<12}|{' ' * width}|"
    if width <= 0:
        raise ValueError("width must be positive")
    # re-bin by summing
    edges = np.linspace(0, arr.size, width + 1).astype(int)
    binned = np.array(
        [arr[a:b].sum() if b > a else 0.0 for a, b in zip(edges, edges[1:])]
    )
    top = vmax if vmax is not None else binned.max()
    if top <= 0:
        body = " " * width
    else:
        idx = np.clip(
            np.ceil(binned / top * (len(_BLOCKS) - 1)), 0, len(_BLOCKS) - 1
        ).astype(int)
        body = "".join(_BLOCKS[i] for i in idx)
    return f"{label:<12}|{body}|"


def percent(x: float) -> str:
    """Format a ratio as a percentage string."""
    return f"{100.0 * x:.0f}%"


__all__ = ["ascii_series", "format_table", "percent"]
