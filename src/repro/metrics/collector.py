"""Event collection for paging traces and switch records."""

from __future__ import annotations

from bisect import bisect
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class PagingEvent:
    """One completed disk transfer (a page-in or page-out burst)."""

    node: str
    op: str          # "read" (page-in) or "write" (page-out)
    pages: int
    start: float
    end: float
    pid: Optional[int]

    @property
    def duration(self) -> float:
        return self.end - self.start


class MetricsCollector:
    """Records paging events and switches across a whole cluster."""

    def __init__(self) -> None:
        self.paging: list[PagingEvent] = []
        self.switches: list = []
        self.nodes: list = []
        # sort keys parallel to `paging` (see attach_node); kept in a
        # separate list so `paging` stays a plain list of events that
        # tests and consumers may read (or even append to) directly
        self._pkeys: list = []
        self.scheduler = None
        self.faults = None
        self.registry = None
        self._registry_run: Optional[str] = None

    # -- wiring ----------------------------------------------------------
    def attach_node(self, node) -> None:
        """Hook a node's disk completions (call before running).

        Events are kept in the canonical ``(end, node)`` order rather
        than hook-invocation order: the batch-advance tier commits a
        whole run of completions at once (future-stamped, before other
        nodes' interleaved events are appended), and same-instant
        completions on different nodes pop in heap order, which is an
        implementation detail.  Sorted insertion makes the trace
        identical across execution modes — per-node ends strictly
        increase (every transfer has positive duration), so the key is
        a strict total order, and in-order appends stay O(1).  Nodes
        are ranked by attach order, not name (lexicographic ordering
        would misplace ``node10`` before ``node2``).
        """
        name = node.name
        node_rank = len(self.nodes)
        self.nodes.append(node)
        paging = self.paging
        keys = self._pkeys

        def hook(req, start, end, _name=name, _rank=node_rank):
            key = (end, _rank)
            ev = PagingEvent(_name, req.op, req.npages, start, end, req.pid)
            if not keys or key >= keys[-1]:
                keys.append(key)
                paging.append(ev)
            else:
                i = bisect(keys, key)
                keys.insert(i, key)
                paging.insert(i, ev)

        def run_hook(op, sizes, starts, ends, pid,
                     _name=name, _rank=node_rank):
            # a whole eager run at once: per-node ends strictly
            # increase, so the run's keys are pre-sorted and the
            # result of per-event bisect insertion is a stable merge
            # with whatever future-stamped tail already exists
            new_keys = [(e, _rank) for e in ends]
            evs = [PagingEvent(_name, op, n, s, e, pid)
                   for n, s, e in zip(sizes, starts, ends)]
            if not keys or new_keys[0] >= keys[-1]:
                keys.extend(new_keys)
                paging.extend(evs)
                return
            i = bisect(keys, new_keys[0])
            if new_keys[-1] <= keys[i]:
                # the run fits in one gap: contiguous splice
                keys[i:i] = new_keys
                paging[i:i] = evs
                return
            tk = keys[i:]
            tp = paging[i:]
            del keys[i:]
            del paging[i:]
            a = 0
            b = 0
            na = len(new_keys)
            nb = len(tk)
            while a < na and b < nb:
                if new_keys[a] < tk[b]:
                    keys.append(new_keys[a])
                    paging.append(evs[a])
                    a += 1
                else:
                    keys.append(tk[b])
                    paging.append(tp[b])
                    b += 1
            if a < na:
                keys.extend(new_keys[a:])
                paging.extend(evs[a:])
            else:
                keys.extend(tk[b:])
                paging.extend(tp[b:])

        node.disk.on_complete = hook
        node.disk.on_complete_run = run_hook

    def attach_scheduler(self, sched) -> None:
        """Keep a handle on the scheduler for eviction accounting."""
        self.scheduler = sched

    def attach_faults(self, plan) -> None:
        """Keep a handle on the fault plan for injection accounting."""
        self.faults = plan

    def attach_registry(self, registry) -> None:
        """Use an obs :class:`~repro.obs.registry.Registry` as the
        source for :meth:`fault_summary` counters.

        The registry's *current* run scope is remembered, so a
        multi-cell registry still yields per-run summaries.  A disabled
        (null) registry is ignored — attribute scraping stays in effect.
        """
        if registry is not None and registry.enabled:
            self.registry = registry
            self._registry_run = registry.current_run
        else:
            self.registry = None
            self._registry_run = None

    def detach_all(self) -> None:
        """Drop every attached handle (nodes, scheduler, faults,
        registry) so the collector can be reused across runs without
        stale references keeping dead simulations alive."""
        self.nodes.clear()
        self.scheduler = None
        self.faults = None
        self.registry = None
        self._registry_run = None

    def on_switch(self, record) -> None:
        """Scheduler switch callback (pass as ``on_switch=``)."""
        self.switches.append(record)

    # -- analysis ----------------------------------------------------------
    def pages_moved(self, op: Optional[str] = None,
                    node: Optional[str] = None) -> int:
        """Total pages transferred, optionally filtered by op/node."""
        return sum(
            e.pages
            for e in self.paging
            if (op is None or e.op == op) and (node is None or e.node == node)
        )

    def io_busy_seconds(self, node: Optional[str] = None) -> float:
        """Total disk-busy time spent on paging."""
        return sum(
            e.duration for e in self.paging
            if node is None or e.node == node
        )

    def paging_series(
        self,
        bin_s: float,
        t_end: Optional[float] = None,
        node: Optional[str] = None,
    ) -> dict[str, np.ndarray]:
        """Bin paging activity over time — the Figure 6 traces.

        Returns ``{"t": bin_starts, "read": pages/bin, "write": pages/bin}``.
        A transfer's pages land in the bin of its completion time.
        """
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        events = [e for e in self.paging if node is None or e.node == node]
        horizon = t_end if t_end is not None else (
            max((e.end for e in events), default=0.0)
        )
        nbins = max(1, int(np.ceil(horizon / bin_s)))
        t = np.arange(nbins) * bin_s
        series = {
            "t": t,
            "read": np.zeros(nbins),
            "write": np.zeros(nbins),
        }
        for e in events:
            idx = min(nbins - 1, int(e.end / bin_s))
            series[e.op][idx] += e.pages
        return series

    def switch_paging_windows(self, window_s: float) -> list[tuple[float, int]]:
        """Pages moved within ``window_s`` after each switch start."""
        out = []
        for rec in self.switches:
            t0 = rec.started_at
            pages = sum(
                e.pages for e in self.paging if t0 <= e.end < t0 + window_s
            )
            out.append((t0, pages))
        return out

    def fault_summary(self) -> dict:
        """Injected faults and the system's graceful responses.

        ``injected`` counts draws that hit (from the fault plan);
        everything else counts the *responses* — retries, fallbacks,
        evictions.  With a registry attached (:meth:`attach_registry`)
        the response counts come from the telemetry counters; otherwise
        they are scraped off the attached nodes and scheduler.  Both
        paths agree exactly — the counters mirror the attributes.  All
        zeros (and no evictions) in a fault-free run.
        """
        summary: dict = {
            "injected": dict(self.faults.counters)
            if self.faults is not None
            else {},
            "disk_retries": 0,
            "disk_failed_requests": 0,
            "disk_latency_spikes": 0,
            "ai_fallbacks": 0,
            "records_lost": 0,
            "records_corrupted": 0,
            "bg_write_failures": 0,
            "jobs_evicted": 0,
            "straggler_extensions": 0,
            "evictions": [],
        }
        if self.registry is not None:
            reg, run = self.registry, self._registry_run
            scope = {"run": run} if run is not None else {}
            for key, counter in (
                ("disk_retries", "disk_retries"),
                ("disk_failed_requests", "disk_failed_requests"),
                ("disk_latency_spikes", "disk_latency_spikes"),
                ("ai_fallbacks", "ai_fallbacks"),
                ("records_lost", "ai_records_lost"),
                ("records_corrupted", "ai_records_corrupted"),
                ("bg_write_failures", "bg_write_failures"),
                ("jobs_evicted", "jobs_evicted"),
                ("straggler_extensions", "straggler_extensions"),
            ):
                summary[key] = int(reg.value(counter, **scope))
        else:
            for node in self.nodes:
                summary["disk_retries"] += node.disk.retry_count
                summary["disk_failed_requests"] += node.disk.failed_requests
                summary["disk_latency_spikes"] += node.disk.latency_spikes
                ap = node.adaptive
                summary["ai_fallbacks"] += ap.ai_fallbacks
                if ap.recorder is not None:
                    summary["records_lost"] += ap.recorder.records_lost
                    summary["records_corrupted"] += (
                        ap.recorder.records_corrupted
                    )
                if ap.bgwriter is not None:
                    summary["bg_write_failures"] += ap.bgwriter.write_failures
            sched = self.scheduler
            if sched is not None and hasattr(sched, "evictions"):
                summary["jobs_evicted"] = len(sched.evictions)
                summary["straggler_extensions"] = sched.straggler_extensions
        sched = self.scheduler
        if sched is not None and hasattr(sched, "evictions"):
            summary["evictions"] = [
                {"at": r.at, "job": r.job, "cause": r.cause}
                for r in sched.evictions
            ]
        return summary

    def clear(self) -> None:
        """Reset the collector for a fresh run.

        Drops recorded events and switches *and* every attached handle —
        previously ``nodes``/``scheduler``/``faults`` survived a clear,
        so a reused collector double-counted old nodes in
        :meth:`fault_summary`.
        """
        self.paging.clear()
        self._pkeys.clear()
        self.switches.clear()
        self.detach_all()


__all__ = ["MetricsCollector", "PagingEvent"]
