"""Event collection for paging traces and switch records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class PagingEvent:
    """One completed disk transfer (a page-in or page-out burst)."""

    node: str
    op: str          # "read" (page-in) or "write" (page-out)
    pages: int
    start: float
    end: float
    pid: Optional[int]

    @property
    def duration(self) -> float:
        return self.end - self.start


class MetricsCollector:
    """Records paging events and switches across a whole cluster."""

    def __init__(self) -> None:
        self.paging: list[PagingEvent] = []
        self.switches: list = []

    # -- wiring ----------------------------------------------------------
    def attach_node(self, node) -> None:
        """Hook a node's disk completions (call before running)."""
        name = node.name

        def hook(req, start, end, _name=name):
            self.paging.append(
                PagingEvent(_name, req.op, req.npages, start, end, req.pid)
            )

        node.disk.on_complete = hook

    def on_switch(self, record) -> None:
        """Scheduler switch callback (pass as ``on_switch=``)."""
        self.switches.append(record)

    # -- analysis ----------------------------------------------------------
    def pages_moved(self, op: Optional[str] = None,
                    node: Optional[str] = None) -> int:
        """Total pages transferred, optionally filtered by op/node."""
        return sum(
            e.pages
            for e in self.paging
            if (op is None or e.op == op) and (node is None or e.node == node)
        )

    def io_busy_seconds(self, node: Optional[str] = None) -> float:
        """Total disk-busy time spent on paging."""
        return sum(
            e.duration for e in self.paging
            if node is None or e.node == node
        )

    def paging_series(
        self,
        bin_s: float,
        t_end: Optional[float] = None,
        node: Optional[str] = None,
    ) -> dict[str, np.ndarray]:
        """Bin paging activity over time — the Figure 6 traces.

        Returns ``{"t": bin_starts, "read": pages/bin, "write": pages/bin}``.
        A transfer's pages land in the bin of its completion time.
        """
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        events = [e for e in self.paging if node is None or e.node == node]
        horizon = t_end if t_end is not None else (
            max((e.end for e in events), default=0.0)
        )
        nbins = max(1, int(np.ceil(horizon / bin_s)))
        t = np.arange(nbins) * bin_s
        series = {
            "t": t,
            "read": np.zeros(nbins),
            "write": np.zeros(nbins),
        }
        for e in events:
            idx = min(nbins - 1, int(e.end / bin_s))
            series[e.op][idx] += e.pages
        return series

    def switch_paging_windows(self, window_s: float) -> list[tuple[float, int]]:
        """Pages moved within ``window_s`` after each switch start."""
        out = []
        for rec in self.switches:
            t0 = rec.started_at
            pages = sum(
                e.pages for e in self.paging if t0 <= e.end < t0 + window_s
            )
            out.append((t0, pages))
        return out

    def clear(self) -> None:
        """Drop all recorded events and switches."""
        self.paging.clear()
        self.switches.clear()


__all__ = ["MetricsCollector", "PagingEvent"]
