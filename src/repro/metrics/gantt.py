"""ASCII Gantt charts of gang schedules.

Renders which job held each node over time — the visual proof of
coordinated context switching.  Sources the scheduled/stopped
transitions each :class:`~repro.gang.signals.ProcessControl` logs.

Glyphs: each job gets a letter; ``·`` marks idle (no job scheduled).
"""

from __future__ import annotations

import string
from typing import Iterable, Sequence

import numpy as np

from repro.gang.job import Job


def scheduled_intervals(job: Job, node) -> list[tuple[float, float]]:
    """[(start, stop)] intervals during which ``job`` was runnable on
    ``node`` (stop = completion time for the final open interval)."""
    proc = job.process_on(node)
    out = []
    open_at = None
    for t, state in proc.control.transitions:
        if state == "running" and open_at is None:
            open_at = t
        elif state == "stopped" and open_at is not None:
            out.append((open_at, t))
            open_at = None
    if open_at is not None:
        end = proc.finished_at if proc.finished_at is not None else open_at
        out.append((open_at, end))
    return out


def render_gantt(
    jobs: Sequence[Job],
    nodes: Iterable,
    width: int = 72,
    t_end: float | None = None,
) -> str:
    """One row per node; columns are time buckets; letters are jobs."""
    if width <= 0:
        raise ValueError("width must be positive")
    jobs = list(jobs)
    if not jobs:
        raise ValueError("no jobs")
    horizon = t_end if t_end is not None else max(
        j.completed_at or 0.0 for j in jobs
    )
    if horizon <= 0:
        raise ValueError("nothing to render (horizon 0)")
    letters = {}
    pool = string.ascii_uppercase + string.ascii_lowercase + string.digits
    for i, job in enumerate(jobs):
        letters[job.name] = pool[i % len(pool)]

    lines = []
    edges = np.linspace(0.0, horizon, width + 1)
    for node in nodes:
        cells = ["·"] * width
        for job in jobs:
            try:
                intervals = scheduled_intervals(job, node)
            except KeyError:
                continue  # job has no rank on this node
            glyph = letters[job.name]
            for start, stop in intervals:
                a = int(np.searchsorted(edges, start, side="right")) - 1
                b = int(np.searchsorted(edges, min(stop, horizon),
                                        side="left"))
                for c in range(max(0, a), min(width, b)):
                    cells[c] = glyph
        name = getattr(node, "name", str(node))
        lines.append(f"{name:<8}|{''.join(cells)}|")

    legend = "  ".join(
        f"{letters[j.name]}={j.name}" for j in jobs
    )
    header = (
        f"gantt 0..{horizon:.0f}s  ({horizon / width:.1f}s per column)"
    )
    return "\n".join([header, *lines, f"legend: {legend}  ·=idle"])


def coordination_score(jobs: Sequence[Job]) -> float:
    """How gang-coordinated the schedule was: mean over jobs of the
    overlap between rank schedules (1.0 = all ranks always switched
    together; meaningful for multi-node jobs)."""
    scores = []
    for job in jobs:
        if len(job.nodes) < 2:
            continue
        per_node = [
            scheduled_intervals(job, node) for node in job.nodes
        ]
        total = sum(stop - start for start, stop in per_node[0])
        if total <= 0:
            continue
        # overlap of every node's schedule with node 0's
        ref = per_node[0]
        overlaps = []
        for intervals in per_node[1:]:
            ov = 0.0
            for a0, a1 in ref:
                for b0, b1 in intervals:
                    ov += max(0.0, min(a1, b1) - max(a0, b0))
            overlaps.append(ov / total)
        scores.append(min(overlaps))
    if not scores:
        return 1.0
    return float(np.mean(scores))


__all__ = ["coordination_score", "render_gantt", "scheduled_intervals"]
