"""Extension — admission control vs adaptive paging (§5, ref. [15]).

Batat & Feitelson's alternative: never overcommit — a job joins the
gang rotation only when its memory fits alongside the admitted jobs.
The paper notes this "gives overall improvement in performance while
suffering from delayed job execution".

Workload: one long 190 MB job plus two short 150 MB jobs on a 350 MB
node.  Under admission control the short jobs queue behind the long
one; under overcommitted gang scheduling they time-share immediately —
thrashing with plain LRU, cheaply with adaptive paging.  Reported per
strategy: makespan (throughput) and mean completion time (response).
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.disk.device import ERA_DISK
from repro.gang.admission import AdmissionGangScheduler
from repro.gang.job import Job
from repro.gang.scheduler import GangScheduler
from repro.mem.params import MemoryParams, mb_to_pages
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.workloads.synthetic import SequentialSweepWorkload

MEMORY_MB = 350.0
QUANTUM_S = 300.0
#: (name, footprint MB, total compute seconds)
JOB_MIX = (
    ("long", 190.0, 1500.0),
    ("short1", 150.0, 300.0),
    ("short2", 150.0, 300.0),
)

STRATEGIES = (
    ("admission (fits-only)", "admission", "lru"),
    ("gang overcommit, lru", "gang", "lru"),
    ("gang overcommit, adaptive", "gang", "so/ao/ai/bg"),
)


def _build(env, scale, seed, policy):
    rngs = RngStreams(seed)
    memory = MemoryParams.from_mb(MEMORY_MB * scale)
    node = Node(env, "node0", memory, policy, disk_params=ERA_DISK,
                refault_window_s=0.5 * QUANTUM_S * scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    jobs = []
    for name, mb, cpu_total in JOB_MIX:
        pages = max(64, int(mb_to_pages(mb) * scale))
        iters = 10
        w = SequentialSweepWorkload(
            pages, iters,
            dirty_fraction=0.6,
            cpu_per_page_s=(cpu_total * scale) / (pages * iters),
            max_phase_pages=max_phase,
            name=name,
        )
        jobs.append(Job(name, [node], [w], rngs.spawn(name)))
    return node, jobs


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    records = {}
    for label, mode, policy in STRATEGIES:
        env = Environment()
        node, jobs = _build(env, scale, seed, policy)
        if mode == "admission":
            sched = AdmissionGangScheduler(env, jobs,
                                           quantum_s=QUANTUM_S * scale)
        else:
            sched = GangScheduler(env, jobs, quantum_s=QUANTUM_S * scale)
        sched.start()
        env.run()
        completions = {j.name: j.completed_at for j in jobs}
        records[label] = {
            "makespan_s": max(completions.values()),
            "mean_completion_s": sum(completions.values()) / len(completions),
            "completions": completions,
            "pages_read": node.disk.total_pages["read"],
            "queueing": (
                {j.name: sched.queueing_delay(j) for j in jobs}
                if mode == "admission" else None
            ),
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = []
    for label, r in records.items():
        c = r["completions"]
        rows.append(
            (
                label,
                f"{r['makespan_s']:.0f}",
                f"{r['mean_completion_s']:.0f}",
                f"{c['short1']:.0f}",
                f"{c['long']:.0f}",
                r["pages_read"],
            )
        )
    return format_table(
        ("strategy", "makespan [s]", "mean completion [s]",
         "short job [s]", "long job [s]", "pages in"),
        rows,
        title="Extension (§5 / ref. [15]) — admission control vs "
              "adaptive paging (1 long + 2 short jobs, 350 MB)",
    )


if __name__ == "__main__":
    run()
