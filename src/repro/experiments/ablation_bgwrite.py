"""§3.4 ablation — how long should background writing run?

"With some experimentation we have found that background writing for
[the] last 10 % of the time quantum minimizes the repeated writing of
pages and improves the performance of co-scheduling further by about
10 %."  This sweep runs LU serial under ``so/ao/bg`` with the
background-writing window set to different fractions of the quantum and
reports completion time and the §3.4 cost metric — pages written more
than once because the job re-dirtied them.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.policies import PagingPolicy
from repro.experiments.runner import GangConfig, run_experiment, run_modes
from repro.metrics.analysis import overhead_seconds, paging_reduction
from repro.metrics.report import format_table, percent

FRACTIONS = (0.05, 0.1, 0.2, 0.35, 0.5)


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    batch = run_experiment(replace(base, mode="batch")).makespan
    no_bg = run_experiment(replace(base, policy="so/ao")).makespan
    records = {"no-bg": {"makespan_s": no_bg, "bg_writes": 0}}
    for frac in FRACTIONS:
        records[f"bg@{frac:.2f}"] = _run_with_fraction(base, frac)
    if not quiet:
        print(render(records, batch, no_bg))
    records["_batch_s"] = batch
    return records


def _run_with_fraction(base: GangConfig, frac: float) -> dict:
    """Run so/ao/bg with a custom bg_fraction via the node policy."""
    from repro.experiments import runner as _r

    # GangConfig carries only the policy string; build the run inline so
    # the PagingPolicy tunable can be set.
    from repro.cluster.node import Node
    from repro.gang.job import Job
    from repro.gang.scheduler import GangScheduler
    from repro.mem.params import MemoryParams
    from repro.sim.engine import Environment
    from repro.sim.rng import RngStreams

    env = Environment()
    rngs = RngStreams(base.seed)
    memory = MemoryParams.from_mb(base.memory_mb * base.scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    policy = PagingPolicy.parse("so/ao/bg", bg_fraction=frac)
    node = Node(env, "node0", memory, policy, disk_params=base.disk)
    jobs = []
    for j in range(base.njobs):
        w = _r._scaled_workload(base, max_phase)
        jobs.append(Job(f"LU#{j}", [node], [w], rngs.spawn(f"job{j}")))
    GangScheduler(env, jobs, quantum_s=base.quantum_s * base.scale).start()
    env.run()
    bw = node.adaptive.bgwriter
    return {
        "makespan_s": max(j.completed_at for j in jobs),
        "bg_writes": bw.pages_written if bw is not None else 0,
    }


def render(records: dict, batch: float, no_bg: float) -> str:
    rows = []
    for label, r in records.items():
        if label.startswith("_"):
            continue
        mk = r["makespan_s"]
        gain = (no_bg - mk) / overhead_seconds(no_bg, batch) \
            if no_bg > batch else 0.0
        rows.append(
            (label, f"{mk:.0f}", r["bg_writes"], percent(max(-9.99, gain)))
        )
    return format_table(
        ("config", "makespan [s]", "bg pages written",
         "overhead cut vs so/ao"),
        rows,
        title="§3.4 ablation — background-write window (LU.B serial, "
              "so/ao base)",
    )


if __name__ == "__main__":
    run()
