"""§3.2/§3.5 ablation — does the working-set estimator matter?

The §3.5 API takes the incoming working-set size from the gang
scheduler "or the kernel estimates it using the incoming process' run
during the previous time quantum".  This ablation runs ``so/ao`` (the
mechanisms that consume the estimate) with three sources:

* **estimator** — the kernel-side previous-quantum estimate (default);
* **oracle** — the exact footprint, as a perfectly informed scheduler
  would supply;
* **whole-memory** — no information: aggressively free everything
  (target = all frames), the degenerate upper bound.

If the estimator is any good, its column matches the oracle; the
whole-memory column shows the §3.2 cost of over-eviction (extra
page-outs the incoming job did not need).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import repro.core.api as _api
from repro.experiments.runner import GangConfig, run_experiment
from repro.metrics.analysis import overhead_fraction
from repro.metrics.report import format_table, percent

MODES = ("estimator", "oracle", "whole-memory")


class _ForcedWs:
    """Context manager overriding the WS source inside AdaptivePaging."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._orig = None

    def __enter__(self):
        orig = _api.AdaptivePaging.working_set_estimate
        mode = self.mode

        def patched(self, pid: int) -> int:
            if mode == "oracle":
                table = self.vmm.tables.get(pid)
                return table.num_pages if table is not None else 0
            if mode == "whole-memory":
                return self.vmm.params.total_frames
            return orig(self, pid)

        self._orig = orig
        _api.AdaptivePaging.working_set_estimate = patched
        return self

    def __exit__(self, *exc):
        _api.AdaptivePaging.working_set_estimate = self._orig


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    batch = run_experiment(replace(base, mode="batch")).makespan
    records: dict = {"_batch_s": batch}
    for mode in MODES:
        with _ForcedWs(mode):
            res = run_experiment(replace(base, policy="so/ao"))
        records[mode] = {
            "makespan_s": res.makespan,
            "overhead": overhead_fraction(res.makespan, batch),
            "pages_written": res.pages_written,
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            mode,
            f"{r['makespan_s']:.0f}",
            percent(r["overhead"]),
            r["pages_written"],
        )
        for mode, r in records.items()
        if not mode.startswith("_")
    ]
    return format_table(
        ("WS source", "makespan [s]", "overhead", "pages written"),
        rows,
        title="§3.2/§3.5 ablation — working-set size source for "
              "aggressive page-out (LU.B serial, so/ao)",
    )


if __name__ == "__main__":
    run()
