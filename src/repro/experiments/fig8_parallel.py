"""Figure 8 — gang-scheduled parallel NPB2 benchmarks (§4.2).

Two instances of each parallel (MPI) program run on two and on four
nodes.  SP appears only at four nodes (it does not compile for two) and
uses a seven-minute quantum there to avoid continuous thrashing; MG
appears only at two nodes (its per-node footprint at four no longer
stresses the 350 MB memory).

Paper reductions: 2 nodes — LU 61 %, IS 72 %, CG 38 %;
4 nodes — LU 43 %, IS 57 %, SP 70 %, CG 7 %.
"""

from __future__ import annotations

from repro.experiments.runner import GangConfig, run_modes
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent

#: (benchmark, nodes, quantum seconds)
CASES = (
    ("LU", 2, 300.0),
    ("CG", 2, 300.0),
    ("IS", 2, 300.0),
    ("MG", 2, 300.0),
    ("LU", 4, 300.0),
    ("SP", 4, 420.0),  # §4.2: SP needs a longer quantum on 4 machines
    ("CG", 4, 300.0),
    ("IS", 4, 300.0),
)

PAPER_REDUCTION = {
    ("LU", 2): 0.61, ("IS", 2): 0.72, ("CG", 2): 0.38, ("MG", 2): None,
    ("LU", 4): 0.43, ("IS", 4): 0.57, ("SP", 4): 0.70, ("CG", 4): 0.07,
}

POLICIES = ("lru", "so/ao/ai/bg")


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    """Run Figure 8; returns one record per (benchmark, nodes) case."""
    records = {}
    for bench, nprocs, quantum in CASES:
        cfg = GangConfig(
            bench, "C", nprocs=nprocs, quantum_s=quantum,
            seed=seed, scale=scale,
        )
        res = run_modes(cfg, POLICIES)
        batch = res["batch"].makespan
        lru = res["lru"].makespan
        full = res["so/ao/ai/bg"].makespan
        records[(bench, nprocs)] = {
            "batch_s": batch,
            "lru_s": lru,
            "adaptive_s": full,
            "overhead_lru": overhead_fraction(lru, batch),
            "overhead_adaptive": overhead_fraction(full, batch),
            "reduction": paging_reduction(lru, full, batch),
            "paper_reduction": PAPER_REDUCTION.get((bench, nprocs)),
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    blocks = []
    for nprocs, panel in ((2, "a-c"), (4, "d-f")):
        rows = []
        for (bench, n), r in records.items():
            if n != nprocs:
                continue
            paper = r["paper_reduction"]
            rows.append(
                (
                    bench,
                    f"{r['lru_s']:.0f}",
                    f"{r['adaptive_s']:.0f}",
                    f"{r['batch_s']:.0f}",
                    percent(r["overhead_lru"]),
                    percent(r["overhead_adaptive"]),
                    percent(r["reduction"]),
                    percent(paper) if paper is not None else "-",
                )
            )
        blocks.append(
            format_table(
                ("bench", "lru [s]", "adaptive [s]", "batch [s]",
                 "oh lru", "oh adaptive", "reduction", "paper"),
                rows,
                title=f"Fig 8({panel}) — {nprocs} machines, class C, "
                      "2 instances",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    run()
