"""Experiment harnesses — one module per paper table/figure.

==================  =====================================================
module              reproduces
==================  =====================================================
``fig1_compaction``  Fig. 1 — paging compaction schematic, measured
``fig6_traces``      Fig. 6 — LU.C×4 paging activity traces per policy
``fig7_serial``      Fig. 7 — serial NPB class B: completion / overhead /
                     reduction
``fig8_parallel``    Fig. 8 — parallel NPB on 2 and 4 nodes
``fig9_lu_detail``   Fig. 9 — LU across all six policy combinations
``motivation``       §1 — Moreira et al. 128 MB vs 256 MB slowdown
``ablation_bgwrite`` §3.4 — background-write duration sweep
``ablation_readahead`` §3.3 — naive read-ahead boost vs adaptive page-in
``ablation_false_eviction`` §3.1 — refault counting, LRU vs selective
``ablation_wsestimator`` §3.2 — WS estimate: estimator vs oracle vs none
``extension_quantum``   overhead vs quantum length (§5/§6)
``extension_policies``  three baseline replacement policies (ref. [17])
``extension_scaling``   2/4/8/16-node clusters (§6 future work)
``extension_diskched``  FIFO/SSTF/C-SCAN dispatch vs adaptive paging
``extension_faults``    fault-injection sweep: graceful degradation
``extension_admission`` memory-aware admission control (ref. [15])
``extension_matrix``    mixed workload on the scheduling matrix
``extension_jobstream`` open-system Poisson arrivals, slowdown metrics
``extension_topology``  rack topology: wire vs straggler sync
``extension_characterization`` workload properties vs adaptive win
``sensitivity``      robustness grid for the headline result
``calibration``      the ERA_DISK seek×transfer calibration grid
``fig_summary``      one paper-vs-measured table across fig 7/8/9
``multi_seed``       replication statistics across seeds
``report_io``        JSON persistence of experiment records
==================  =====================================================

Every module exposes ``run(scale=..., seed=...) -> dict`` (structured
results) and prints the paper-style table/series when executed as a
script.  ``scale`` shrinks memory, footprints, CPU and quanta together
so the same experiment runs at sub-second size in the benchmarks.
"""

from repro.experiments.runner import (
    GangConfig,
    RunResult,
    run_cell,
    run_experiment,
    run_modes,
)

__all__ = ["GangConfig", "RunResult", "run_cell", "run_experiment",
           "run_modes"]
