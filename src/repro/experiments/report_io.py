"""JSON persistence for experiment records.

Every experiment harness returns a nested plain-Python/numpy record;
:func:`save_record` writes it to JSON (numpy scalars and arrays are
converted, non-serialisable leaves like collectors are dropped with a
marker) so results can be archived and diffed between code versions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np


def _sanitise(obj: Any) -> Any:
    """Convert a record tree into JSON-compatible values."""
    if isinstance(obj, dict):
        return {str(k): _sanitise(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitise(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "__dict__") and type(obj).__module__.startswith("repro"):
        # dataclass-ish repro objects: keep their public scalars
        fields = {
            k: v for k, v in vars(obj).items() if not k.startswith("_")
        }
        return {"__type__": type(obj).__name__, **_sanitise(fields)}
    return f"<unserialisable:{type(obj).__name__}>"


def save_record(record: dict, path: str | Path) -> Path:
    """Write ``record`` as pretty-printed JSON; returns the path.

    The write is atomic (temp file + ``os.replace``): a crash mid-write
    leaves either the previous file or the new one, never a truncated
    JSON — which matters for the partial records exported while an
    experiment is dying.  The containing directory is fsynced after the
    rename: ``os.replace`` makes the *data* durable but the directory
    entry pointing at it lives in the parent, and a host crash between
    the rename and the directory flush could otherwise lose the record
    (or a freshly created sweep journal) despite the atomic dance.
    """
    from repro.perf.journal import fsync_dir

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(_sanitise(record), fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_record(path: str | Path) -> dict:
    """Read a record saved by :func:`save_record`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


__all__ = ["load_record", "save_record"]
