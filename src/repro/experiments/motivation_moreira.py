"""§1 motivation — the Moreira et al. paging-overhead observation.

The paper motivates the problem with Moreira et al. [3]: three
gang-scheduled instances of a job with a 45 MB footprint ran on average
3.5× slower on a 128 MB AIX system than on a 256 MB one, purely from
context-switch paging.  This experiment reproduces that setup: three
instances of a 45 MB synthetic job, one node, two memory sizes, plain
LRU paging — and reports the slowdown ratio.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.disk.device import ERA_DISK
from repro.gang.job import Job
from repro.gang.scheduler import GangScheduler
from repro.mem.params import MemoryParams
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.workloads.synthetic import SequentialSweepWorkload

#: the referenced experiment: 3 jobs x 45 MB on 128 vs 256 MB
FOOTPRINT_MB = 45.0
MEMORY_SIZES_MB = (128.0, 256.0)
NJOBS = 3
PAPER_RATIO = 3.5


def _run_one(memory_mb: float, scale: float, seed: int) -> float:
    env = Environment()
    rngs = RngStreams(seed)
    # leave room for the era AIX kernel, daemons and buffer cache:
    # ~40 % of RAM is not available to the jobs
    memory = MemoryParams.from_mb(memory_mb * 0.60 * scale)
    node = Node(env, "node0", memory, "lru", disk_params=ERA_DISK)
    # three jobs rotate here, so up to two fault services can be in
    # flight at once; cap phases at a third of reclaimable memory so
    # their protected demand sets can always coexist
    max_phase = max(64, (memory.total_frames - memory.freepages_high) // 3)
    jobs = []
    for j in range(NJOBS):
        w = SequentialSweepWorkload(
            footprint_pages=max(64, int(FOOTPRINT_MB * 256 * scale)),
            iterations=12,
            dirty_fraction=0.6,
            # dense enough that one job spans many quanta
            cpu_per_page_s=1.5e-3,
            max_phase_pages=max_phase,
            name=f"job{j}",
        )
        jobs.append(Job(f"job{j}", [node], [w], rngs.spawn(f"j{j}")))
    # an interactive-responsiveness quantum, as in the referenced
    # LoadLeveler gang-scheduling setup
    GangScheduler(env, jobs, quantum_s=8.0 * scale).start()
    env.run()
    return sum(j.completed_at for j in jobs) / NJOBS


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    small = _run_one(MEMORY_SIZES_MB[0], scale, seed)
    large = _run_one(MEMORY_SIZES_MB[1], scale, seed)
    record = {
        "avg_completion_128mb_s": small,
        "avg_completion_256mb_s": large,
        "slowdown_ratio": small / large,
        "paper_ratio": PAPER_RATIO,
    }
    if not quiet:
        print(render(record))
    return record


def render(record: dict) -> str:
    rows = [
        ("128 MB", f"{record['avg_completion_128mb_s']:.0f}"),
        ("256 MB", f"{record['avg_completion_256mb_s']:.0f}"),
        ("slowdown ratio", f"{record['slowdown_ratio']:.2f}"),
        ("paper (Moreira et al.)", f"{record['paper_ratio']:.1f}"),
    ]
    return format_table(
        ("configuration", "avg completion [s] / ratio"),
        rows,
        title="§1 motivation — 3 × 45 MB gang-scheduled jobs, LRU paging",
    )


if __name__ == "__main__":
    run()
