"""Extension — open-system evaluation under an arriving job stream.

The gang-scheduling studies the paper builds on (refs. [2, 4, 5])
measure schedulers against job *streams*: jobs arrive over time, and
the figure of merit is the **slowdown** — response time (completion −
arrival) divided by the job's ideal compute demand.  The paper's claim
that adaptive paging "can improve system responsiveness" (§1, §6) is an
open-system claim; this experiment tests it directly.

One node, a Poisson stream of serial jobs with log-normal footprints
(median 180 MB on a 350 MB node, so concurrent jobs overcommit memory),
gang-scheduled with 5-minute quanta under ``lru`` vs ``so/ao/ai/bg``.
Reported: mean and p95 slowdown, mean response, total paging volume.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import Node
from repro.disk.device import ERA_DISK
from repro.gang.job import Job
from repro.gang.matrix import MatrixGangScheduler, ScheduleMatrix
from repro.mem.params import MemoryParams
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.workloads.jobstream import StreamJobSpec, generate_stream
from repro.workloads.synthetic import SequentialSweepWorkload

MEMORY_MB = 350.0
QUANTUM_S = 300.0
POLICIES = ("lru", "so/ao/ai/bg")
NJOBS = 12
#: ~0.65 offered CPU load: congested enough that jobs overlap in memory,
#: light enough that paging (not pure queueing) drives the slowdown
MEAN_INTERARRIVAL_S = 600.0


def _run_stream(policy: str, stream: list[StreamJobSpec],
                scale: float, seed: int) -> dict:
    env = Environment()
    rngs = RngStreams(seed)
    memory = MemoryParams.from_mb(MEMORY_MB * scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    node = Node(env, "node0", memory, policy, disk_params=ERA_DISK,
                refault_window_s=0.5 * QUANTUM_S * scale)
    matrix = ScheduleMatrix(1)
    sched = MatrixGangScheduler(
        env, [node], matrix, quantum_s=QUANTUM_S * scale,
        accept_arrivals=True,
    )
    sched.start()
    jobs: dict[str, Job] = {}

    def arrivals():
        t = 0.0
        for spec in stream:
            delay = spec.arrival_s * scale - t
            if delay > 0:
                yield env.timeout(delay)
                t = spec.arrival_s * scale
            pages = max(64, int(spec.footprint_pages * scale))
            iters = 8
            w = SequentialSweepWorkload(
                pages, iters,
                dirty_fraction=spec.dirty_fraction,
                cpu_per_page_s=(spec.compute_s * scale) / (pages * iters),
                max_phase_pages=max_phase,
                name=spec.name,
            )
            job = Job(spec.name, [node], [w], rngs.spawn(spec.name))
            jobs[spec.name] = job
            sched.submit(job, [0])
        sched.close()

    env.process(arrivals())
    env.run()

    slowdowns = []
    responses = []
    for spec in stream:
        job = jobs[spec.name]
        response = job.completed_at - spec.arrival_s * scale
        responses.append(response)
        slowdowns.append(response / (spec.compute_s * scale))
    sl = np.asarray(slowdowns)
    return {
        "mean_slowdown": float(sl.mean()),
        "p95_slowdown": float(np.quantile(sl, 0.95)),
        "mean_response_s": float(np.mean(responses)),
        "pages_read": node.disk.total_pages["read"],
        "makespan_s": max(j.completed_at for j in jobs.values()),
        "slowdowns": slowdowns,
    }


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        njobs: int = NJOBS) -> dict:
    stream_rng = np.random.default_rng(seed + 1000)
    stream = generate_stream(
        stream_rng, njobs, MEAN_INTERARRIVAL_S,
    )
    records = {
        pol: _run_stream(pol, stream, scale, seed) for pol in POLICIES
    }
    records["_stream"] = stream
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            pol,
            f"{r['mean_slowdown']:.2f}",
            f"{r['p95_slowdown']:.2f}",
            f"{r['mean_response_s']:.0f}",
            f"{r['makespan_s']:.0f}",
            r["pages_read"],
        )
        for pol, r in records.items()
        if not pol.startswith("_")
    ]
    return format_table(
        ("policy", "mean slowdown", "p95 slowdown", "mean response [s]",
         "makespan [s]", "pages in"),
        rows,
        title=f"Extension — open-system job stream "
              f"({len(records['_stream'])} Poisson arrivals, 350 MB node)",
    )


if __name__ == "__main__":
    run()
