"""One-shot paper-vs-measured summary across all headline figures.

Runs the Fig. 7/8/9 harnesses and condenses them into the single
comparison table `EXPERIMENTS.md` reports — the quickest way to see the
whole reproduction at once (use ``scale=1.0`` for the recorded
full-size numbers, smaller scales for a fast look).
"""

from __future__ import annotations

from repro.experiments import fig7_serial, fig8_parallel, fig9_lu_detail
from repro.metrics.report import format_table, percent


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    f7 = fig7_serial.run(scale=scale, seed=seed, quiet=True)
    f8 = fig8_parallel.run(scale=scale, seed=seed, quiet=True)
    f9 = fig9_lu_detail.run(scale=scale, seed=seed, quiet=True)

    rows = []
    for bench, r in f7.items():
        rows.append({
            "experiment": f"Fig7 {bench}.B serial",
            "measured": r["reduction"],
            "paper": r["paper_reduction"],
        })
    for (bench, n), r in f8.items():
        rows.append({
            "experiment": f"Fig8 {bench}.C @{n}",
            "measured": r["reduction"],
            "paper": r["paper_reduction"],
        })
    for label, per in f9.items():
        rows.append({
            "experiment": f"Fig9 LU {label} (full combo)",
            "measured": per["so/ao/ai/bg"]["reduction"],
            "paper": fig9_lu_detail.PAPER_FULL_REDUCTION[label],
        })
    record = {"rows": rows, "scale": scale}
    if not quiet:
        print(render(record))
    return record


def render(record: dict) -> str:
    table_rows = []
    for row in record["rows"]:
        paper = row["paper"]
        measured = row["measured"]
        delta = (measured - paper) if paper is not None else None
        table_rows.append(
            (
                row["experiment"],
                percent(measured),
                percent(paper) if paper is not None else "-",
                f"{delta:+.0%}" if delta is not None else "-",
            )
        )
    return format_table(
        ("experiment", "measured reduction", "paper", "delta"),
        table_rows,
        title=f"Paper-vs-measured summary (scale {record['scale']})",
    )


if __name__ == "__main__":
    run()
