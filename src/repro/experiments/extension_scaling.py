"""Extension — the paper's future work: 8- and 16-node clusters (§6).

"We are currently conducting experiments with a larger cluster ... We
are extending our performance study to parallel applications running on
8 and 16 nodes."  This experiment runs LU class C on 2/4/8/16 nodes
under ``lru`` and ``so/ao/ai/bg`` and reports how the switching
overhead and the adaptive reduction evolve as the per-node footprint
shrinks and synchronisation costs grow.
"""

from __future__ import annotations

from repro.experiments.runner import GangConfig, run_modes
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent

NODE_COUNTS = (2, 4, 8, 16)
POLICIES = ("lru", "so/ao/ai/bg")


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        node_counts=NODE_COUNTS) -> dict:
    records = {}
    for n in node_counts:
        cfg = GangConfig("LU", "C", nprocs=n, seed=seed, scale=scale)
        res = run_modes(cfg, POLICIES)
        batch = res["batch"].makespan
        lru = res["lru"].makespan
        full = res["so/ao/ai/bg"].makespan
        records[n] = {
            "batch_s": batch,
            "lru_s": lru,
            "adaptive_s": full,
            "overhead_lru": overhead_fraction(lru, batch),
            "overhead_adaptive": overhead_fraction(full, batch),
            "reduction": paging_reduction(lru, full, batch),
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            f"{n} nodes",
            f"{r['batch_s']:.0f}",
            f"{r['lru_s']:.0f}",
            f"{r['adaptive_s']:.0f}",
            percent(r["overhead_lru"]),
            percent(r["overhead_adaptive"]),
            percent(r["reduction"]),
        )
        for n, r in records.items()
    ]
    return format_table(
        ("cluster", "batch [s]", "lru [s]", "adaptive [s]",
         "oh lru", "oh adaptive", "reduction"),
        rows,
        title="Extension (§6 future work) — LU.C x 2 jobs on growing "
              "clusters",
    )


if __name__ == "__main__":
    run()
