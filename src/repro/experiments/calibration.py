"""Disk-parameter calibration grid.

Documents (and regenerates) the procedure behind ``ERA_DISK``
(docs/calibration.md): sweep seek time × transfer rate on the serial
LU.B headline and report LRU overhead and adaptive reduction per grid
point.  The chosen era disk is the point whose LRU overhead sits
nearest the paper's 26 % while keeping the parallel-band behaviour.
"""

from __future__ import annotations

from dataclasses import replace

from repro.disk.device import DiskParams
from repro.experiments.runner import GangConfig, run_modes
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent

#: (seek seconds, transfer bytes/s) grid
GRID = (
    (0.008, 20e6),
    (0.012, 10e6),   # the chosen ERA_DISK point
    (0.015, 12e6),
    (0.012, 6e6),
)

#: the paper's serial-LU anchors
PAPER_OVERHEAD_LRU = 0.26
PAPER_REDUCTION = 0.84


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        grid=GRID) -> dict:
    records = {}
    for seek, xfer in grid:
        disk = DiskParams(seek_s=seek, rotational_s=0.004,
                          transfer_bytes_s=xfer)
        cfg = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale,
                         disk=disk)
        res = run_modes(cfg, ["lru", "so/ao/ai/bg"])
        batch = res["batch"].makespan
        lru = res["lru"].makespan
        full = res["so/ao/ai/bg"].makespan
        records[(seek, xfer)] = {
            "overhead_lru": overhead_fraction(lru, batch),
            "overhead_adaptive": overhead_fraction(full, batch),
            "reduction": paging_reduction(lru, full, batch),
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            f"{seek * 1000:.0f} ms",
            f"{xfer / 1e6:.0f} MB/s",
            percent(r["overhead_lru"]),
            percent(r["overhead_adaptive"]),
            percent(r["reduction"]),
        )
        for (seek, xfer), r in records.items()
    ]
    table = format_table(
        ("seek", "transfer", "oh lru", "oh adaptive", "reduction"),
        rows,
        title="Disk calibration grid (LU.B serial)",
    )
    return (
        table
        + f"\npaper anchors: oh lru {PAPER_OVERHEAD_LRU:.0%}, "
          f"reduction {PAPER_REDUCTION:.0%}"
    )


if __name__ == "__main__":
    run()
