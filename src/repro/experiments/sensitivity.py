"""Sensitivity analysis — how robust are the headline results?

The simulation substitutes calibrated constants for the paper's
hardware (DESIGN.md §2); this harness quantifies how the headline
LU-serial result (paging reduction of ``so/ao/ai/bg`` vs ``lru``)
responds to each of the main modelling choices:

* **memory pressure** — usable memory per node,
* **disk speed** — transfer rate and seek time (era vs modern),
* **quantum length**,
* **read-ahead window** of the baseline kernel.

A reproduction whose conclusion flips within these neighbourhoods
would not be trustworthy; the benchmark asserts the reduction stays
positive and substantial across the whole grid.
"""

from __future__ import annotations

from dataclasses import replace

from repro.disk.device import ERA_DISK, DiskParams
from repro.experiments.runner import GangConfig, run_cell
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent
from repro.perf.pool import Cell, run_cells
from repro.perf.supervisor import require_ok

#: fast "modern" disk for the speed axis
FAST_DISK = DiskParams(seek_s=0.004, rotational_s=0.002,
                       transfer_bytes_s=60e6)

AXES = {
    "memory": [
        ("300 MB", {"memory_mb": 300.0}),
        ("350 MB (paper)", {"memory_mb": 350.0}),
        ("420 MB", {"memory_mb": 420.0}),
    ],
    "disk": [
        ("era 10 MB/s (default)", {"disk": ERA_DISK}),
        ("slow 6 MB/s", {"disk": replace(ERA_DISK, transfer_bytes_s=6e6)}),
        ("fast 60 MB/s", {"disk": FAST_DISK}),
    ],
    "quantum": [
        ("150 s", {"quantum_s": 150.0}),
        ("300 s (paper)", {"quantum_s": 300.0}),
        ("600 s", {"quantum_s": 600.0}),
    ],
}


def cell_grid(base: GangConfig, axes: dict) -> list[Cell]:
    """One cell per (axis, point, mode) — 3 modes per grid point."""
    cells: list[Cell] = []
    for axis, points in axes.items():
        for label, overrides in points:
            cfg = replace(base, **overrides)
            cells.append(Cell(
                (axis, label, "batch"), run_cell,
                {"cfg": replace(cfg, mode="batch")},
            ))
            for pol in ("lru", "so/ao/ai/bg"):
                cells.append(Cell(
                    (axis, label, pol), run_cell,
                    {"cfg": replace(cfg, mode="gang", policy=pol)},
                ))
    return cells


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        axes: dict | None = None, jobs: int = 1) -> dict:
    axes = axes if axes is not None else AXES
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    results = require_ok(run_cells(cell_grid(base, axes), jobs=jobs),
                         context="sensitivity sweep")
    records: dict[str, dict] = {}
    for axis, points in axes.items():
        records[axis] = {}
        for label, _overrides in points:
            batch = results[(axis, label, "batch")]["makespan"]
            lru = results[(axis, label, "lru")]["makespan"]
            full = results[(axis, label, "so/ao/ai/bg")]["makespan"]
            records[axis][label] = {
                "overhead_lru": overhead_fraction(lru, batch),
                "overhead_adaptive": overhead_fraction(full, batch),
                "reduction": paging_reduction(lru, full, batch),
            }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    blocks = []
    for axis, points in records.items():
        rows = [
            (
                label,
                percent(r["overhead_lru"]),
                percent(r["overhead_adaptive"]),
                percent(r["reduction"]),
            )
            for label, r in points.items()
        ]
        blocks.append(
            format_table(
                (axis, "oh lru", "oh adaptive", "reduction"),
                rows,
                title=f"Sensitivity — {axis} axis (LU.B serial)",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    run()
