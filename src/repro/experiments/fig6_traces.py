"""Figure 6 — paging activity traces of LU (§4).

Two gang-scheduled instances of LU class C on four machines, 350 MB of
usable memory per node, five-minute quanta.  One trace per policy
combination (``lru``, ``so``, ``so/ao``, ``so/ao/ai/bg``) showing
page-in and page-out activity over the first 50 minutes on one node.

The paper's qualitative claims, visible in the rendered series:

* original LRU — page-ins spread over a long period, interleaved with
  page-outs (low, wide bursts);
* ``so`` — less paging volume and duration (no false eviction);
* ``so/ao`` — page-outs intensified and separated from page-ins;
* ``so/ao/ai/bg`` — sharp, high peaks right after each switch: the
  paging is compacted exactly as projected in Fig. 1.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import GangConfig, run_experiment
from repro.metrics.report import ascii_series, format_table

POLICIES = ("lru", "so", "so/ao", "so/ao/ai/bg")
WINDOW_MIN = 50.0


def compaction_index(series: dict, switches, window_s: float,
                     ops: tuple[str, ...] = ("read",)) -> float:
    """Fraction of paging volume inside ``window_s`` after switches.

    1.0 = perfectly compacted at switch time (the Fig. 1 ideal).  By
    default only page-ins count: background writing legitimately moves
    page-outs *away* from the switch, which is compaction of the switch
    burst, not scatter.
    """
    total = float(sum(series[op].sum() for op in ops))
    if total == 0:
        return 1.0
    t = series["t"]
    mask = np.zeros(t.size, dtype=bool)
    for rec in switches:
        mask |= (t >= rec.started_at) & (t < rec.started_at + window_s)
    inside = float(sum(series[op][mask].sum() for op in ops))
    return inside / total


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        bin_s: float = 10.0) -> dict:
    """Run Figure 6; returns per-policy series and compaction indices."""
    records = {}
    for pol in POLICIES:
        cfg = GangConfig(
            "LU", "C", nprocs=4, policy=pol, seed=seed, scale=scale,
        )
        res = run_experiment(cfg)
        horizon = min(res.makespan, WINDOW_MIN * 60.0 * scale)
        series = res.collector.paging_series(
            bin_s * scale, t_end=horizon, node="node0"
        )
        window = 0.1 * cfg.quantum_s * scale  # the quantum's first tenth
        records[pol] = {
            "series": series,
            "pages_read": res.pages_read,
            "pages_written": res.pages_written,
            "makespan_s": res.makespan,
            "compaction": compaction_index(
                series,
                [s for s in res.collector.switches
                 if s.started_at < horizon],
                window,
            ),
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    out = [
        "Fig 6 — paging activity on node0, first "
        f"{WINDOW_MIN:.0f} simulated minutes (darker = more pages moved)",
        "",
    ]
    for pol, rec in records.items():
        s = rec["series"]
        out.append(f"--- policy {pol}")
        out.append(ascii_series(s["read"], width=76, label=" page-in"))
        out.append(ascii_series(s["write"], width=76, label=" page-out"))
    rows = [
        (pol, rec["pages_read"], rec["pages_written"],
         f"{rec['compaction']:.2f}")
        for pol, rec in records.items()
    ]
    out.append("")
    out.append(
        format_table(
            ("policy", "pages in", "pages out", "compaction index"),
            rows,
            title="Paging volume and switch-window compaction",
        )
    )
    return "\n".join(out)


if __name__ == "__main__":
    run()
