"""Extension — the quantum-length trade-off (§5, Wang et al.).

The related-work discussion: longer quanta amortise switching overhead
but hurt responsiveness, which "contrasts with the goal of gang
scheduling".  The paper's point is that adaptive paging lets the
scheduler *keep* a short quantum.  This sweep measures switching
overhead across quantum lengths for ``lru`` and ``so/ao/ai/bg`` and
reports the quantum each policy needs to stay under a 10 % overhead
budget — the paper's §6 claim ("this reduction will enable the gang
scheduler to use a smaller time quantum") made quantitative.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import GangConfig, run_cell
from repro.metrics.analysis import overhead_fraction
from repro.metrics.report import format_table, percent
from repro.perf.pool import Cell, run_cells
from repro.perf.supervisor import require_ok

QUANTA_S = (75.0, 150.0, 300.0, 600.0, 1200.0)
POLICIES = ("lru", "so/ao/ai/bg")
BUDGET = 0.10


def cell_grid(base: GangConfig, quanta) -> list[Cell]:
    """One batch reference cell plus one cell per (quantum, policy)."""
    cells = [Cell(("batch",), run_cell,
                  {"cfg": replace(base, mode="batch")})]
    for q in quanta:
        for pol in POLICIES:
            cells.append(Cell(
                (q, pol), run_cell,
                {"cfg": replace(base, policy=pol, quantum_s=q)},
            ))
    return cells


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        quanta=QUANTA_S, jobs: int = 1) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    results = require_ok(run_cells(cell_grid(base, quanta), jobs=jobs),
                         context="quantum sweep")
    batch = results[("batch",)]["makespan"]
    records: dict = {"_batch_s": batch}
    for q in quanta:
        row = {}
        for pol in POLICIES:
            cell = results[(q, pol)]
            row[pol] = {
                "makespan_s": cell["makespan"],
                "overhead": overhead_fraction(cell["makespan"], batch),
                "switches": cell["switch_count"],
            }
        records[q] = row
    if not quiet:
        print(render(records))
    return records


def smallest_quantum_within_budget(records: dict, policy: str,
                                   budget: float = BUDGET):
    """The shortest quantum whose overhead stays under ``budget``."""
    for q in sorted(k for k in records if not isinstance(k, str)):
        if records[q][policy]["overhead"] <= budget:
            return q
    return None


def render(records: dict) -> str:
    rows = []
    for q, row in records.items():
        if isinstance(q, str):
            continue
        rows.append(
            (
                f"{q:.0f}",
                percent(row["lru"]["overhead"]),
                row["lru"]["switches"],
                percent(row["so/ao/ai/bg"]["overhead"]),
                row["so/ao/ai/bg"]["switches"],
            )
        )
    table = format_table(
        ("quantum [s]", "oh lru", "sw lru", "oh adaptive", "sw adaptive"),
        rows,
        title="Extension (§5/§6) — switching overhead vs quantum length "
              "(LU.B serial)",
    )
    q_lru = smallest_quantum_within_budget(records, "lru")
    q_full = smallest_quantum_within_budget(records, "so/ao/ai/bg")
    note = (
        f"\nsmallest quantum within a {BUDGET:.0%} overhead budget: "
        f"lru: {q_lru if q_lru else '> max'} s, "
        f"adaptive: {q_full if q_full else '> max'} s"
    )
    return table + note


if __name__ == "__main__":
    run()
