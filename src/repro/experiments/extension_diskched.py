"""Extension — does a kernel elevator substitute for adaptive paging?

An obvious objection to the paper: "the block layer's elevator already
reorders paging I/O — how much of the adaptive win is just scheduling?"
This experiment answers it inside the simulation: the same
overcommitted two-job LU mix runs with a distance-dependent arm model
(``a + b*sqrt(d)`` seeks) under FIFO, SSTF and C-SCAN request
dispatching, with and without the adaptive mechanisms.

Measured shape: the disciplines tie, and the table shows why — paging
I/O is *synchronous* (a faulting process submits one read and waits),
so the device queue almost never holds more than a couple of requests
and there is nothing for an elevator to reorder.  Only policy-level
batching (the adaptive mechanisms) changes the I/O pattern.  This is
the quantitative counterpart of the paper's §2 argument that fault-
driven paging serialises computation.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.disk.device import DiskParams, ERA_DISK
from repro.experiments import runner as _r
from repro.experiments.runner import GangConfig
from repro.gang.job import Job
from repro.gang.scheduler import BatchScheduler, GangScheduler
from repro.mem.params import MemoryParams
from repro.metrics.analysis import overhead_fraction
from repro.metrics.report import format_table, percent
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams

DISCIPLINES = ("fifo", "sstf", "cscan")
POLICIES = ("lru", "so/ao/ai/bg")

#: the era disk plus a distance-dependent arm term so that dispatch
#: order matters at all
ARM_DISK = DiskParams(
    seek_s=ERA_DISK.seek_s * 0.5,       # half the flat cost ...
    rotational_s=ERA_DISK.rotational_s,
    transfer_bytes_s=ERA_DISK.transfer_bytes_s,
    seek_distance_coef_s=4e-5,          # ... becomes distance-dependent
)


def _run_one(base: GangConfig, discipline: str, policy: str,
             mode: str) -> float:
    env = Environment()
    rngs = RngStreams(base.seed)
    memory = MemoryParams.from_mb(base.memory_mb * base.scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    node = Node(
        env, "node0", memory, policy if mode == "gang" else "lru",
        disk_params=ARM_DISK, disk_discipline=discipline,
        refault_window_s=0.5 * base.quantum_s * base.scale,
    )
    jobs = []
    for j in range(base.njobs):
        w = _r._scaled_workload(base, max_phase)
        jobs.append(Job(f"{base.benchmark}#{j}", [node], [w],
                        rngs.spawn(f"job{j}")))
    if mode == "batch":
        BatchScheduler(env, jobs).start()
    else:
        GangScheduler(env, jobs,
                      quantum_s=base.quantum_s * base.scale).start()
    env.run()
    return max(j.completed_at for j in jobs), node.disk.max_queue_seen


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    records = {}
    for disc in DISCIPLINES:
        batch, _ = _run_one(base, disc, "lru", "batch")
        row = {"batch_s": batch}
        for pol in POLICIES:
            mk, depth = _run_one(base, disc, pol, "gang")
            row[pol] = {
                "makespan_s": mk,
                "overhead": overhead_fraction(mk, batch),
                "max_queue": depth,
            }
        records[disc] = row
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            disc,
            f"{r['batch_s']:.0f}",
            f"{r['lru']['makespan_s']:.0f}",
            percent(r["lru"]["overhead"]),
            r["lru"]["max_queue"],
            f"{r['so/ao/ai/bg']['makespan_s']:.0f}",
            percent(r["so/ao/ai/bg"]["overhead"]),
        )
        for disc, r in records.items()
    ]
    return format_table(
        ("dispatch", "batch [s]", "lru [s]", "oh lru", "max queue",
         "adaptive [s]", "oh adaptive"),
        rows,
        title="Extension — disk dispatch discipline vs adaptive paging "
              "(LU.B serial, distance-aware arm)",
    )


if __name__ == "__main__":
    run()
