"""§3.1 ablation — false eviction under LRU vs selective page-out.

The paper's §3.1 narrative: a rescheduled job's residual pages are the
oldest in memory, so plain LRU evicts exactly the pages about to be
reused and has to read them straight back.  The *refault* counter (a
page swapped in shortly after its eviction) makes the effect directly
measurable: selective page-out should cut refaults dramatically because
only the outgoing job's pages get evicted.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import GangConfig, run_experiment
from repro.metrics.report import format_table, percent

POLICIES = ("lru", "so", "so/ao/ai/bg")


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    records = {}
    for pol in POLICIES:
        res = run_experiment(replace(base, policy=pol))
        stats = res.vmm_stats[0]
        records[pol] = {
            "makespan_s": res.makespan,
            "refaults": stats["refaults"],
            "evictions": stats["evictions"],
            "pages_swapped_in": stats["pages_swapped_in"],
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    base_refaults = records["lru"]["refaults"]
    rows = []
    for pol, r in records.items():
        cut = 1.0 - r["refaults"] / base_refaults if base_refaults else 0.0
        rows.append(
            (
                pol,
                r["refaults"],
                r["evictions"],
                r["pages_swapped_in"],
                percent(cut) if pol != "lru" else "-",
            )
        )
    return format_table(
        ("policy", "refaults", "evictions", "pages swapped in",
         "refaults cut"),
        rows,
        title="§3.1 ablation — false eviction (LU.B serial, 2 instances)",
    )


if __name__ == "__main__":
    run()
