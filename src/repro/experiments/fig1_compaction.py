"""Figure 1 — memory-paging compaction, measured rather than sketched.

The paper's Figure 1 is a schematic: under demand paging the page-in
bursts of a rescheduled job are scattered across the quantum and
interleaved with page-outs; adaptive paging compacts all of it into one
burst at the start of the quantum.  This experiment measures that
schematic with a controlled two-job workload on one node and reports,
per policy:

* the *compaction index* — fraction of paging volume inside the first
  minute after each switch;
* the *interleaving count* — how often consecutive disk transfers
  alternate between reads and writes (the gray/black interleaving of
  the figure);
* mean paging-burst duration.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig6_traces import compaction_index
from repro.experiments.runner import GangConfig, run_experiment
from repro.metrics.report import format_table

POLICIES = ("lru", "so/ao/ai/bg")


def interleave_fraction(events) -> float:
    """Fraction of consecutive transfer pairs that switch direction."""
    ops = [e.op for e in sorted(events, key=lambda e: e.start)]
    if len(ops) < 2:
        return 0.0
    flips = sum(1 for a, b in zip(ops, ops[1:]) if a != b)
    return flips / (len(ops) - 1)


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    records = {}
    for pol in POLICIES:
        cfg = GangConfig("LU", "B", nprocs=1, policy=pol, seed=seed,
                         scale=scale)
        res = run_experiment(cfg)
        series = res.collector.paging_series(5.0 * scale)
        # the "start of the quantum" window: its first tenth
        window = 0.1 * cfg.quantum_s * scale
        records[pol] = {
            "makespan_s": res.makespan,
            "compaction": compaction_index(
                series, res.collector.switches, window
            ),
            "interleave": interleave_fraction(res.collector.paging),
            "transfers": len(res.collector.paging),
            "pages_moved": res.pages_read + res.pages_written,
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            pol,
            f"{r['compaction']:.2f}",
            f"{r['interleave']:.2f}",
            r["transfers"],
            r["pages_moved"],
            f"{r['makespan_s']:.0f}",
        )
        for pol, r in records.items()
    ]
    return format_table(
        ("policy", "compaction", "interleave", "transfers",
         "pages moved", "makespan [s]"),
        rows,
        title="Fig 1 (measured) — paging compaction under adaptive paging",
    )


if __name__ == "__main__":
    run()
