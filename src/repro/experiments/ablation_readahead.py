"""§3.3 ablation — naive read-ahead boost vs adaptive page-in.

The paper argues that simply boosting the kernel's swap-in read-ahead
window (default 16 pages) is the obvious alternative to adaptive
page-in, but "since the extra pages brought in might not be used at
all, boosting the read-ahead size might actually degrade the
performance".  This sweep runs LU serial under plain LRU with windows
of 16/64/256 pages and compares against the recorded-page replay
(``ai``) with the default window.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.node import Node
from repro.experiments import runner as _r
from repro.experiments.runner import GangConfig, run_experiment
from repro.gang.job import Job
from repro.gang.scheduler import GangScheduler
from repro.mem.params import MemoryParams
from repro.metrics.analysis import overhead_seconds
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams

WINDOWS = (16, 64, 256)


def _run_with_window(base: GangConfig, window: int, policy: str) -> dict:
    env = Environment()
    rngs = RngStreams(base.seed)
    memory = MemoryParams.from_mb(
        base.memory_mb * base.scale, readahead_pages=window
    )
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    node = Node(env, "node0", memory, policy, disk_params=base.disk)
    jobs = []
    for j in range(base.njobs):
        w = _r._scaled_workload(base, max_phase)
        jobs.append(Job(f"LU#{j}", [node], [w], rngs.spawn(f"job{j}")))
    GangScheduler(env, jobs, quantum_s=base.quantum_s * base.scale).start()
    env.run()
    return {
        "makespan_s": max(j.completed_at for j in jobs),
        "pages_read": node.disk.total_pages["read"],
        "useless_prefetch_hint": node.vmm.stats.pages_swapped_in,
    }


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    batch = run_experiment(replace(base, mode="batch")).makespan
    records = {"_batch_s": batch}
    for window in WINDOWS:
        records[f"lru+ra{window}"] = _run_with_window(base, window, "lru")
    records["ai (ra16)"] = _run_with_window(base, 16, "ai")
    if not quiet:
        print(render(records, batch))
    return records


def render(records: dict, batch: float) -> str:
    rows = []
    for label, r in records.items():
        if label.startswith("_"):
            continue
        rows.append(
            (
                label,
                f"{r['makespan_s']:.0f}",
                f"{overhead_seconds(r['makespan_s'], batch):.0f}",
                r["pages_read"],
            )
        )
    return format_table(
        ("config", "makespan [s]", "switch overhead [s]", "pages read"),
        rows,
        title="§3.3 ablation — read-ahead window vs adaptive page-in "
              "(LU.B serial)",
    )


if __name__ == "__main__":
    run()
