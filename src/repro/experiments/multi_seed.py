"""Multi-seed replication and summary statistics.

The paper reports single measurements; a reproduction should show how
stable the derived quantities are across workload randomisations (CG's
and IS's access shuffles are seed-dependent).  :func:`replicate` runs
one configuration across several seeds and summarises overhead and
reduction with mean / standard deviation / min / max.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.experiments.runner import GangConfig, run_cell
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table
from repro.perf.pool import Cell, run_cells
from repro.perf.supervisor import require_ok


@dataclass(frozen=True)
class Summary:
    """Mean/stddev/extremes of one metric across seeds."""

    mean: float
    std: float
    min: float
    max: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("no values to summarise")
        return cls(
            float(arr.mean()),
            float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            float(arr.min()),
            float(arr.max()),
            int(arr.size),
        )

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} [{self.min:.3f}, {self.max:.3f}]"


def cell_grid(
    base: GangConfig, policy: str, seeds: Sequence[int]
) -> list[Cell]:
    """The (seed, mode) cell grid behind :func:`replicate`.

    One cell per independent simulation: batch, lru and the policy run
    for every seed (the policy run is dropped when it *is* lru).
    """
    modes = ["batch", "lru"] + ([policy] if policy != "lru" else [])
    cells: list[Cell] = []
    for seed in seeds:
        seeded = replace(base, seed=seed)
        for label in modes:
            cfg = (
                replace(seeded, mode="batch") if label == "batch"
                else replace(seeded, mode="gang", policy=label)
            )
            cells.append(Cell((seed, label), run_cell, {"cfg": cfg}))
    return cells


def replicate(
    base: GangConfig,
    policy: str = "so/ao/ai/bg",
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    jobs: int = 1,
) -> dict:
    """Run ``base`` across ``seeds``; summarise overhead and reduction.

    ``jobs``: worker processes for the (seed, mode) sweep grid; the
    result is identical for any value (see :mod:`repro.perf.pool`).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results = require_ok(
        run_cells(cell_grid(base, policy, seeds), jobs=jobs),
        context="multi_seed replicate")
    overhead_lru: list[float] = []
    overhead_pol: list[float] = []
    reduction: list[float] = []
    pol_key = policy if policy != "lru" else "lru"
    for seed in seeds:
        batch = results[(seed, "batch")]["makespan"]
        lru = results[(seed, "lru")]["makespan"]
        mine = results[(seed, pol_key)]["makespan"]
        overhead_lru.append(overhead_fraction(lru, batch))
        overhead_pol.append(overhead_fraction(mine, batch))
        reduction.append(paging_reduction(lru, mine, batch))
    return {
        "policy": policy,
        "seeds": tuple(seeds),
        "overhead_lru": Summary.of(overhead_lru),
        "overhead_policy": Summary.of(overhead_pol),
        "reduction": Summary.of(reduction),
    }


def render(record: dict, label: str = "") -> str:
    """Table view of a :func:`replicate` record."""
    rows = [
        ("overhead, lru", str(record["overhead_lru"])),
        (f"overhead, {record['policy']}", str(record["overhead_policy"])),
        ("reduction", str(record["reduction"])),
    ]
    return format_table(
        ("metric", f"mean ± std [min, max]  (n={len(record['seeds'])})"),
        rows,
        title=f"Multi-seed replication {label}".rstrip(),
    )


__all__ = ["Summary", "cell_grid", "render", "replicate"]
