"""Extension — which workload properties predict the adaptive win?

§4.1 explains each benchmark's reduction informally ("MG has the
biggest footprint", "IS has a relatively small memory requirement").
This experiment makes the link quantitative: profile every NPB class-B
program (footprint, dirty ratio, phase-reuse distance — see
``repro.workloads.analysis``), measure its reduction under
``so/ao/ai/bg``, and print them side by side, with the rank correlation
between memory *overcommit* and measured reduction.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import GangConfig, run_modes
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent
from repro.mem.params import mb_to_pages, pages_to_mb
from repro.workloads.analysis import profile_workload
from repro.workloads.npb import make_npb

BENCHMARKS = ("LU", "SP", "CG", "IS", "MG")
MEMORY_MB = 350.0


def _rank_correlation(xs, ys) -> float:
    """Spearman rank correlation (no scipy dependency needed)."""
    rx = np.argsort(np.argsort(xs)).astype(float)
    ry = np.argsort(np.argsort(ys)).astype(float)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = float(np.sqrt((rx ** 2).sum() * (ry ** 2).sum()))
    return float((rx * ry).sum() / denom) if denom else 0.0


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    records = {}
    for bench in BENCHMARKS:
        w = make_npb(bench, "B")
        profile = profile_workload(
            make_npb(bench, "B", max_phase_pages=8192),
            np.random.default_rng(seed),
        )
        cfg = GangConfig(bench, "B", nprocs=1, memory_mb=MEMORY_MB,
                         seed=seed, scale=scale)
        res = run_modes(cfg, ["lru", "so/ao/ai/bg"])
        batch = res["batch"].makespan
        lru = res["lru"].makespan
        full = res["so/ao/ai/bg"].makespan
        footprint_mb = pages_to_mb(w.footprint_pages)
        records[bench] = {
            "footprint_mb": footprint_mb,
            "overcommit": 2 * footprint_mb / MEMORY_MB,
            "dirty_ratio": profile.dirty_ratio,
            "mean_reuse_distance": profile.mean_reuse_distance,
            "overhead_lru": overhead_fraction(lru, batch),
            "reduction": paging_reduction(lru, full, batch),
        }
    over = [records[b]["overcommit"] for b in BENCHMARKS]
    red = [records[b]["reduction"] for b in BENCHMARKS]
    oh = [records[b]["overhead_lru"] for b in BENCHMARKS]
    records["_correlations"] = {
        "overcommit_vs_overhead": _rank_correlation(over, oh),
        "overcommit_vs_reduction": _rank_correlation(over, red),
    }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            bench,
            f"{r['footprint_mb']:.0f}",
            f"{r['overcommit']:.2f}",
            f"{r['dirty_ratio']:.2f}",
            f"{r['mean_reuse_distance']:.0f}",
            percent(r["overhead_lru"]),
            percent(r["reduction"]),
        )
        for bench, r in records.items()
        if not bench.startswith("_")
    ]
    table = format_table(
        ("bench", "footprint [MB]", "overcommit", "dirty", "reuse dist",
         "oh lru", "reduction"),
        rows,
        title="Extension — workload properties vs measured adaptive win "
              "(class B serial)",
    )
    c = records["_correlations"]
    return (
        table
        + "\nSpearman rank correlations: overcommit↔overhead "
          f"{c['overcommit_vs_overhead']:+.2f}, overcommit↔reduction "
          f"{c['overcommit_vs_reduction']:+.2f}"
    )


if __name__ == "__main__":
    run()
