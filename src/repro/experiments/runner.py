"""Shared experiment runner.

Builds a cluster, instantiates two (or more) identical job instances of
an NPB workload, runs them under a gang or batch scheduler, and collects
the metrics the paper reports.  The ``scale`` knob shrinks memory,
footprint, CPU time and quantum together so the identical experiment
logic runs full-size from the scripts and sub-second from the test and
benchmark suites.

Robustness
----------
A config may carry :class:`~repro.faults.plan.FaultRates`; non-zero
rates build a seeded :class:`~repro.faults.plan.FaultPlan` that is
threaded through every node (disk, recorder) and the gang scheduler.
With all rates zero no plan is built and no RNG stream is drawn, so
fault-free runs are bit-for-bit identical to the pre-fault code.

Two watchdog limits (``max_sim_s``, ``max_events``) bound a run: when
either trips, the runner raises :class:`WatchdogTimeout` naming the
jobs that were still incomplete instead of spinning forever.  Passing
``partial_path`` to :func:`run_experiment` exports a crash-safe partial
record (config, progress, per-job state, fault summary) before any
failure propagates, so a dead run still leaves evidence on disk.
"""

from __future__ import annotations

import gc
import resource
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.cluster.node import Node
from repro.core.policies import PagingPolicy
from repro.disk.device import ERA_DISK, DiskParams
from repro.faults.errors import WatchdogTimeout
from repro.faults.plan import FAULT_FREE, FaultPlan, FaultRates
from repro.gang.job import Job
from repro.gang.scheduler import BatchScheduler, GangScheduler
from repro.mem.params import MemoryParams
from repro.metrics.collector import MetricsCollector
from repro.obs import Registry, get_default, summary as obs_summary
from repro.sim.engine import Environment, SimulationError
from repro.sim.rng import RngStreams
from repro.workloads.base import Workload
from repro.workloads.npb import make_npb


@dataclass(frozen=True)
class GangConfig:
    """One experiment run: a workload mix under one scheduling mode."""

    benchmark: str
    klass: str
    nprocs: int = 1
    policy: str = "lru"
    #: usable memory per node in MB — the paper's post-mlock() 350 MB
    memory_mb: float = 350.0
    #: gang time quantum (the paper's default is 5 minutes)
    quantum_s: float = 300.0
    njobs: int = 2
    seed: int = 0
    #: proportional shrink factor for fast runs
    scale: float = 1.0
    #: "gang" or "batch"
    mode: str = "gang"
    #: paging-device model (defaults to the testbed-era disk)
    disk: DiskParams = ERA_DISK
    #: fault-injection rates (all-zero = fault-free, no plan built)
    faults: FaultRates = FAULT_FREE
    #: watchdog: abort once virtual time exceeds this many seconds
    max_sim_s: Optional[float] = None
    #: watchdog: abort once this many simulation events were processed
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.njobs < 1:
            raise ValueError("njobs must be >= 1")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.mode not in ("gang", "batch"):
            raise ValueError(
                f"unknown mode {self.mode!r}; expected 'gang' or 'batch'"
            )
        # unknown mechanism ids raise here, not deep inside node setup
        PagingPolicy.parse(self.policy)
        if self.max_sim_s is not None and self.max_sim_s <= 0:
            raise ValueError("max_sim_s must be positive when set")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError("max_events must be positive when set")

    def label(self) -> str:
        """Short human-readable run identifier for logs/tables."""
        return (
            f"{self.benchmark}.{self.klass}x{self.njobs}@{self.nprocs} "
            f"{self.mode}:{self.policy}"
        )


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: GangConfig
    makespan: float
    completions: dict[str, float]
    collector: MetricsCollector
    vmm_stats: list[dict]
    pages_read: int
    pages_written: int
    switch_count: int
    #: jobs evicted by fault degradation: name -> cause
    evicted: dict[str, str] = field(default_factory=dict)
    #: injection and graceful-response counters (all zero when fault-free)
    fault_summary: dict = field(default_factory=dict)
    #: simulation events processed (deterministic per config); kept as
    #: the *dispatched* count for backward compatibility — equal to
    #: ``events_dispatched``
    events_processed: int = 0
    #: logical events (dispatched + absorbed by the batch-advance
    #: tier): comparable across PRs and identical across execution
    #: modes
    events_simulated: int = 0
    #: scalar dispatcher loop iterations: *drops* when batch-advance
    #: engages, so a lower count here is evidence of batching, not of
    #: event loss
    events_dispatched: int = 0
    #: host wall-clock seconds spent in the run (nondeterministic)
    wall_s: float = 0.0
    #: process peak RSS sampled after the run, MB (nondeterministic)
    peak_rss_mb: float = 0.0
    #: the telemetry registry used, when observability was enabled
    obs: Optional[object] = None

    @property
    def avg_completion(self) -> float:
        vals = list(self.completions.values())
        if not vals:
            return float("nan")  # every job was evicted
        return sum(vals) / len(vals)

    @property
    def events_per_sec(self) -> float:
        """Engine throughput for this run (nondeterministic)."""
        if self.wall_s <= 0.0:
            return float("nan")
        return self.events_processed / self.wall_s


def _scaled_workload(cfg: GangConfig, max_phase_pages: int) -> Workload:
    w = make_npb(cfg.benchmark, cfg.klass, cfg.nprocs,
                 max_phase_pages=max_phase_pages)
    if cfg.scale != 1.0:
        w.scale_in_place(cfg.scale)
    return w


def _drive(env: Environment, cfg: GangConfig, jobs: Sequence[Job]) -> None:
    """``env.run()`` under the config's watchdog limits.

    With no limits set this is a plain ``env.run()``; otherwise the
    simulation is stepped manually and aborted with a diagnostic naming
    the incomplete jobs once a limit trips.
    """
    if cfg.max_sim_s is None and cfg.max_events is None:
        env.run()
        return
    while env.live_events > 0:
        if cfg.max_sim_s is not None and env.now > cfg.max_sim_s:
            raise WatchdogTimeout(_watchdog_report(
                cfg, env, jobs, f"sim time {env.now:.1f}s > {cfg.max_sim_s}s"
            ))
        # the limit is on *logical* events (dispatched + absorbed by
        # the batch-advance tier), so a runaway run trips at the same
        # point regardless of execution mode
        if cfg.max_events is not None and env.events_simulated > cfg.max_events:
            raise WatchdogTimeout(_watchdog_report(
                cfg, env, jobs,
                f"{env.events_simulated} events > {cfg.max_events}",
            ))
        env.step()


def _watchdog_report(cfg, env, jobs, limit: str) -> str:
    stuck = [j.name for j in jobs if not j.finished] or ["<none>"]
    return (
        f"{cfg.label()}: watchdog tripped ({limit}); "
        f"incomplete job(s): {', '.join(stuck)}"
    )


def _makespan(jobs: Sequence[Job]) -> float:
    """Schedule makespan, or a clear error if something never finished."""
    hung = [j.name for j in jobs if not j.finished]
    if hung:
        raise SimulationError(
            "simulation quiesced with incomplete job(s): "
            f"{', '.join(hung)} — likely a scheduler or barrier deadlock"
        )
    return max(
        j.completed_at if j.completed_at is not None else j.failed_at
        for j in jobs
    )


def _partial_record(cfg, env, jobs, collector, exc) -> dict:
    return {
        "partial": True,
        "error": f"{type(exc).__name__}: {exc}",
        "label": cfg.label(),
        "config": cfg,
        "sim_time_s": env.now,
        # logical count (dispatched + absorbed): comparable across
        # execution modes, and what the max_events watchdog trips on
        "events_processed": env.events_simulated,
        "events_dispatched": env.events_processed,
        "jobs": {
            j.name: {
                "completed_at": j.completed_at,
                "failed": j.failed,
                "failure": j.failure,
            }
            for j in jobs
        },
        "pages_read": collector.pages_moved("read"),
        "pages_written": collector.pages_moved("write"),
        "fault_summary": collector.fault_summary(),
    }


def run_experiment(
    cfg: GangConfig,
    partial_path: Optional[Union[str, Path]] = None,
    obs=None,
) -> RunResult:
    """Run one configuration to completion and collect metrics.

    ``partial_path``: where to export a crash-safe partial record if the
    run dies (watchdog, injected failure, bug) — the exception still
    propagates afterwards.

    ``obs``: a telemetry :class:`~repro.obs.registry.Registry` (or the
    null registry).  ``None`` resolves the process default
    (:func:`repro.obs.get_default`) — normally the null registry, so
    uninstrumented runs stay zero-cost.  With a real registry the run
    opens a run scope named after ``cfg.label()``, every counter and
    span lands inside it, and the registry is returned on
    ``RunResult.obs``.  Telemetry never creates simulation events, so
    instrumented and uninstrumented runs are bit-for-bit identical in
    makespan and event counts.
    """
    wall_start = time.perf_counter()
    if obs is None:
        obs = get_default()
    run_scope = obs.begin_run(cfg.label()) if obs.enabled else None
    # The run allocates tens of thousands of short-lived events and
    # generator frames per simulated minute; nearly all of them die by
    # refcount, but CPython's cyclic collector still scans them, which
    # costs ~15% of wall time on paging-heavy cells.  Suspend it for the
    # duration of the run; the cycles dead coroutines do leave behind
    # are picked up by the next ambient collection after re-enabling.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        env = Environment()
        rngs = RngStreams(cfg.seed)
        collector = MetricsCollector()
        plan = (
            FaultPlan(cfg.faults, rngs.spawn("faults"))
            if cfg.faults.active
            else None
        )
        collector.attach_faults(plan)
        collector.attach_registry(obs)

        memory_mb = cfg.memory_mb * cfg.scale
        memory = MemoryParams.from_mb(memory_mb)
        # keep phases comfortably below the reclaim ceiling
        max_phase = min(
            8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
        )
        policy = cfg.policy if cfg.mode == "gang" else "lru"
        nodes = [
            Node(
                env, f"node{i}", memory, policy, disk_params=cfg.disk,
                # a refault = re-read within half a quantum of eviction —
                # the §3.1 false-eviction signature at any scale
                refault_window_s=0.5 * cfg.quantum_s * cfg.scale,
                faults=plan, obs=obs,
            )
            for i in range(cfg.nprocs)
        ]
        for node in nodes:
            collector.attach_node(node)

        jobs = []
        for j in range(cfg.njobs):
            workloads = [_scaled_workload(cfg, max_phase) for _ in nodes]
            jobs.append(
                Job(f"{cfg.benchmark}#{j}", nodes, workloads,
                    rngs.spawn(f"job{j}"))
            )

        if cfg.mode == "batch":
            sched: Union[BatchScheduler, GangScheduler] = BatchScheduler(
                env, jobs
            )
        else:
            sched = GangScheduler(
                env, jobs, quantum_s=cfg.quantum_s * cfg.scale,
                on_switch=collector.on_switch, faults=plan, obs=obs,
            )
        collector.attach_scheduler(sched)
        sched.start()

        try:
            _drive(env, cfg, jobs)
            makespan = _makespan(jobs)
        except Exception as exc:
            if partial_path is not None:
                from repro.experiments.report_io import save_record

                save_record(_partial_record(cfg, env, jobs, collector, exc),
                            partial_path)
            raise
    finally:
        if gc_was_enabled:
            gc.enable()
        if run_scope is not None:
            obs.end_run()

    return RunResult(
        config=cfg,
        makespan=makespan,
        completions={
            j.name: j.completed_at for j in jobs
            if j.completed_at is not None
        },
        collector=collector,
        vmm_stats=[n.vmm.stats.snapshot() for n in nodes],
        pages_read=sum(n.disk.total_pages["read"] for n in nodes),
        pages_written=sum(n.disk.total_pages["write"] for n in nodes),
        switch_count=len(sched.switches)
        if isinstance(sched, GangScheduler) else 0,
        evicted={j.name: j.failure for j in jobs if j.failed},
        fault_summary=collector.fault_summary(),
        events_processed=env.events_processed,
        events_simulated=env.events_simulated,
        events_dispatched=env.events_processed,
        wall_s=time.perf_counter() - wall_start,
        # ru_maxrss is KB on Linux; high-water mark for the process
        peak_rss_mb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        / 1024.0,
        obs=obs if obs.enabled else None,
    )


def run_cell(cfg: GangConfig, obs_enabled: bool = False) -> dict:
    """Run one config and return a picklable summary dict.

    This is the cell function used by the parallel sweep layer
    (:mod:`repro.perf.pool`): everything a sweep experiment consumes
    from a :class:`RunResult`, minus the live collector/scheduler
    objects (which hold generator coroutines and cannot cross a process
    boundary).  All fields are deterministic per config except the
    reserved ``"_perf"`` sub-dict, which carries the host-dependent
    wall-clock / throughput / RSS measurements and is excluded from the
    serial-vs-parallel byte-identity guarantee.

    ``obs_enabled=True`` runs the cell with a fresh telemetry registry
    and ships its :func:`~repro.obs.export.summary` under
    ``["_perf"]["obs"]`` plus the full mergeable
    :meth:`~repro.obs.registry.Registry.snapshot` under
    ``["_perf"]["obs_snapshot"]`` (what the sweep-level
    :class:`~repro.obs.sweep.SweepObserver` folds into the merged
    registry) — quarantined with the other per-host data so obs-on and
    obs-off sweeps stay byte-identical outside ``"_perf"``.
    """
    obs = Registry() if obs_enabled else None
    res = run_experiment(cfg, obs=obs)
    perf = {
        "wall_s": res.wall_s,
        "events_per_sec": res.events_per_sec,
        "peak_rss_mb": res.peak_rss_mb,
    }
    if res.obs is not None:
        perf["obs"] = obs_summary(res.obs)
        perf["obs_snapshot"] = res.obs.snapshot()
    return {
        "makespan": res.makespan,
        "completions": res.completions,
        "avg_completion": res.avg_completion,
        "pages_read": res.pages_read,
        "pages_written": res.pages_written,
        "switch_count": res.switch_count,
        "vmm_stats": res.vmm_stats,
        "evicted": res.evicted,
        "fault_summary": res.fault_summary,
        "events_processed": res.events_processed,
        "events_simulated": res.events_simulated,
        "events_dispatched": res.events_dispatched,
        "_perf": perf,
    }


def run_modes(
    base: GangConfig,
    policies: Sequence[str],
    partial_path: Optional[Union[str, Path]] = None,
) -> dict[str, RunResult]:
    """Run ``batch`` plus a gang run per policy; keys: "batch", policies.

    ``partial_path`` is forwarded to every :func:`run_experiment` call,
    so whichever mode dies first leaves its crash-safe partial record
    there before the exception propagates.
    """
    out: dict[str, RunResult] = {}
    out["batch"] = run_experiment(replace(base, mode="batch"),
                                  partial_path=partial_path)
    for pol in policies:
        out[pol] = run_experiment(replace(base, mode="gang", policy=pol),
                                  partial_path=partial_path)
    return out


__all__ = ["GangConfig", "RunResult", "run_cell", "run_experiment",
           "run_modes"]
