"""Shared experiment runner.

Builds a cluster, instantiates two (or more) identical job instances of
an NPB workload, runs them under a gang or batch scheduler, and collects
the metrics the paper reports.  The ``scale`` knob shrinks memory,
footprint, CPU time and quantum together so the identical experiment
logic runs full-size from the scripts and sub-second from the test and
benchmark suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.cluster.node import Node
from repro.disk.device import ERA_DISK, DiskParams
from repro.gang.job import Job
from repro.gang.scheduler import BatchScheduler, GangScheduler
from repro.mem.params import MemoryParams, mb_to_pages
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.workloads.base import Workload
from repro.workloads.npb import make_npb


@dataclass(frozen=True)
class GangConfig:
    """One experiment run: a workload mix under one scheduling mode."""

    benchmark: str
    klass: str
    nprocs: int = 1
    policy: str = "lru"
    #: usable memory per node in MB — the paper's post-mlock() 350 MB
    memory_mb: float = 350.0
    #: gang time quantum (the paper's default is 5 minutes)
    quantum_s: float = 300.0
    njobs: int = 2
    seed: int = 0
    #: proportional shrink factor for fast runs
    scale: float = 1.0
    #: "gang" or "batch"
    mode: str = "gang"
    #: paging-device model (defaults to the testbed-era disk)
    disk: DiskParams = ERA_DISK

    def label(self) -> str:
        """Short human-readable run identifier for logs/tables."""
        return (
            f"{self.benchmark}.{self.klass}x{self.njobs}@{self.nprocs} "
            f"{self.mode}:{self.policy}"
        )


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: GangConfig
    makespan: float
    completions: dict[str, float]
    collector: MetricsCollector
    vmm_stats: list[dict]
    pages_read: int
    pages_written: int
    switch_count: int

    @property
    def avg_completion(self) -> float:
        vals = list(self.completions.values())
        return sum(vals) / len(vals)


def _scaled_workload(cfg: GangConfig, max_phase_pages: int) -> Workload:
    w = make_npb(cfg.benchmark, cfg.klass, cfg.nprocs,
                 max_phase_pages=max_phase_pages)
    if cfg.scale != 1.0:
        w.scale_in_place(cfg.scale)
    return w


def run_experiment(cfg: GangConfig) -> RunResult:
    """Run one configuration to completion and collect metrics."""
    if cfg.njobs < 1:
        raise ValueError("njobs must be >= 1")
    env = Environment()
    rngs = RngStreams(cfg.seed)
    collector = MetricsCollector()

    memory_mb = cfg.memory_mb * cfg.scale
    memory = MemoryParams.from_mb(memory_mb)
    # keep phases comfortably below the reclaim ceiling
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    policy = cfg.policy if cfg.mode == "gang" else "lru"
    nodes = [
        Node(
            env, f"node{i}", memory, policy, disk_params=cfg.disk,
            # a refault = re-read within half a quantum of eviction —
            # the §3.1 false-eviction signature at any scale
            refault_window_s=0.5 * cfg.quantum_s * cfg.scale,
        )
        for i in range(cfg.nprocs)
    ]
    for node in nodes:
        collector.attach_node(node)

    jobs = []
    for j in range(cfg.njobs):
        workloads = [_scaled_workload(cfg, max_phase) for _ in nodes]
        jobs.append(
            Job(f"{cfg.benchmark}#{j}", nodes, workloads,
                rngs.spawn(f"job{j}"))
        )

    if cfg.mode == "batch":
        BatchScheduler(env, jobs).start()
        switch_count = 0
        env.run()
        switches = 0
    elif cfg.mode == "gang":
        sched = GangScheduler(
            env, jobs, quantum_s=cfg.quantum_s * cfg.scale,
            on_switch=collector.on_switch,
        )
        sched.start()
        env.run()
        switches = len(sched.switches)
    else:
        raise ValueError(f"unknown mode {cfg.mode!r}")

    makespan = max(j.completed_at for j in jobs)
    return RunResult(
        config=cfg,
        makespan=makespan,
        completions={j.name: j.completed_at for j in jobs},
        collector=collector,
        vmm_stats=[n.vmm.stats.snapshot() for n in nodes],
        pages_read=sum(n.disk.total_pages["read"] for n in nodes),
        pages_written=sum(n.disk.total_pages["write"] for n in nodes),
        switch_count=switches if cfg.mode == "gang" else 0,
    )


def run_modes(
    base: GangConfig, policies: Sequence[str]
) -> dict[str, RunResult]:
    """Run ``batch`` plus a gang run per policy; keys: "batch", policies."""
    out: dict[str, RunResult] = {}
    out["batch"] = run_experiment(replace(base, mode="batch"))
    for pol in policies:
        out[pol] = run_experiment(replace(base, mode="gang", policy=pol))
    return out


__all__ = ["GangConfig", "RunResult", "run_experiment", "run_modes"]
