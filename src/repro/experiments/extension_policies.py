"""Extension — baseline replacement-policy comparison (§2 / ref. [17]).

The paper describes two baseline behaviours: its §3.1 narrative is an
age-ordered global LRU ("the lingering pages ... are older than B's
pages"), while §2's description of Linux 2.2 is a largest-process clock
sweep; the cited Jiang & Zhang study [17] compares such kernels'
thrashing behaviour.  This experiment runs the same overcommitted
two-job mix under both baselines, with and without the adaptive
mechanisms, showing that the adaptive stack helps regardless of which
baseline the kernel uses — and by how much each baseline thrashes.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.disk.device import ERA_DISK
from repro.experiments import runner as _r
from repro.experiments.runner import GangConfig
from repro.gang.job import Job
from repro.gang.scheduler import BatchScheduler, GangScheduler
from repro.mem.params import MemoryParams
from repro.mem.replacement import (
    GlobalLruPolicy,
    LargestProcessClockPolicy,
    PageAgingPolicy,
)
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams

BASELINES = {
    "global-lru": GlobalLruPolicy,
    "largest-clock": LargestProcessClockPolicy,
    "page-aging": PageAgingPolicy,
}
POLICIES = ("lru", "so/ao/ai/bg")


def _run_one(base: GangConfig, baseline_cls, policy: str, mode: str) -> float:
    env = Environment()
    rngs = RngStreams(base.seed)
    memory = MemoryParams.from_mb(base.memory_mb * base.scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    node = Node(
        env, "node0", memory, policy if mode == "gang" else "lru",
        disk_params=ERA_DISK, replacement=baseline_cls(),
        refault_window_s=0.5 * base.quantum_s * base.scale,
    )
    jobs = []
    for j in range(base.njobs):
        w = _r._scaled_workload(base, max_phase)
        jobs.append(Job(f"{base.benchmark}#{j}", [node], [w],
                        rngs.spawn(f"job{j}")))
    if mode == "batch":
        BatchScheduler(env, jobs).start()
    else:
        GangScheduler(env, jobs,
                      quantum_s=base.quantum_s * base.scale).start()
    env.run()
    return max(j.completed_at for j in jobs)


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    records = {}
    for name, cls in BASELINES.items():
        batch = _run_one(base, cls, "lru", "batch")
        lru = _run_one(base, cls, "lru", "gang")
        full = _run_one(base, cls, "so/ao/ai/bg", "gang")
        records[name] = {
            "batch_s": batch,
            "lru_s": lru,
            "adaptive_s": full,
            "overhead_lru": overhead_fraction(lru, batch),
            "overhead_adaptive": overhead_fraction(full, batch),
            "reduction": paging_reduction(lru, full, batch),
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            name,
            f"{r['batch_s']:.0f}",
            f"{r['lru_s']:.0f}",
            f"{r['adaptive_s']:.0f}",
            percent(r["overhead_lru"]),
            percent(r["overhead_adaptive"]),
            percent(r["reduction"]),
        )
        for name, r in records.items()
    ]
    return format_table(
        ("baseline", "batch [s]", "original [s]", "adaptive [s]",
         "oh original", "oh adaptive", "reduction"),
        rows,
        title="Extension — adaptive paging vs both baseline replacement "
              "policies (LU.B serial)",
    )


if __name__ == "__main__":
    run()
