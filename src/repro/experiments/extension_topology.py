"""Extension — does the interconnect topology change the story?

The paper's testbed is one 100 Mb/s switch; its future work (§6) moves
to 8- and 16-node clusters, where real machines split across racks and
cross-rack barriers get slower.  This experiment runs LU.C on 8 nodes
under a flat switch vs a two-rack topology (4 nodes per rack, 3.5×
uplink latency), for both paging policies.

Measured shape: the topologies tie.  The table shows why — per-rank
synchronisation time is tens of seconds of *waiting for paging
stragglers*, while the pure wire cost of every barrier crossing the
uplink adds only fractions of a second.  In a paging-bound gang
schedule the interconnect is not the bottleneck; fixing paging (the
paper's contribution) is worth orders of magnitude more than fixing
the network.
"""

from __future__ import annotations

from repro.cluster.network import NetworkParams
from repro.cluster.node import Node
from repro.cluster.topology import TwoLevelTopology
from repro.disk.device import ERA_DISK
from repro.experiments import runner as _r
from repro.experiments.runner import GangConfig
from repro.gang.job import Job
from repro.gang.scheduler import BatchScheduler, GangScheduler
from repro.mem.params import MemoryParams
from repro.metrics.analysis import overhead_fraction
from repro.metrics.report import format_table, percent
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams

NNODES = 8
POLICIES = ("lru", "so/ao/ai/bg")

TOPOLOGIES = {
    "flat switch": NetworkParams(latency_s=100e-6),
    "2 racks (4+4)": TwoLevelTopology(
        NNODES, rack_size=4, intra_latency_s=100e-6,
        inter_latency_s=350e-6,
    ),
}


def _run_one(base: GangConfig, network, policy: str, mode: str):
    env = Environment()
    rngs = RngStreams(base.seed)
    memory = MemoryParams.from_mb(base.memory_mb * base.scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    nodes = [
        Node(env, f"node{i}", memory,
             policy if mode == "gang" else "lru",
             disk_params=ERA_DISK,
             refault_window_s=0.5 * base.quantum_s * base.scale)
        for i in range(NNODES)
    ]
    jobs = []
    for j in range(base.njobs):
        wls = [_r._scaled_workload(base, max_phase) for _ in nodes]
        jobs.append(Job(f"{base.benchmark}#{j}", nodes, wls,
                        rngs.spawn(f"job{j}"), network=network))
    if mode == "batch":
        BatchScheduler(env, jobs).start()
    else:
        GangScheduler(env, jobs,
                      quantum_s=base.quantum_s * base.scale).start()
    env.run()
    sync = sum(
        j.barrier.total_sync_s for j in jobs if j.barrier is not None
    ) / (NNODES * base.njobs)
    rounds = sum(
        j.barrier.rounds_completed for j in jobs if j.barrier is not None
    )
    wire = rounds * network.barrier_s(NNODES)
    return max(j.completed_at for j in jobs), sync, wire


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    # a memory lock that stresses 8 nodes: LU.C per-node ~115 MB, so
    # use 200 MB usable to keep the pair overcommitted
    base = GangConfig("LU", "C", nprocs=NNODES, memory_mb=200.0,
                      seed=seed, scale=scale)
    records = {}
    for label, network in TOPOLOGIES.items():
        batch, _, _ = _run_one(base, network, "lru", "batch")
        row = {"batch_s": batch}
        for pol in POLICIES:
            mk, sync, wire = _run_one(base, network, pol, "gang")
            row[pol] = {
                "makespan_s": mk,
                "overhead": overhead_fraction(mk, batch),
                "mean_rank_sync_s": sync,
                "wire_sync_s": wire,
            }
        records[label] = row
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            label,
            f"{r['batch_s']:.0f}",
            percent(r["lru"]["overhead"]),
            f"{r['lru']['mean_rank_sync_s']:.0f}",
            f"{r['lru']['wire_sync_s']:.2f}",
            percent(r["so/ao/ai/bg"]["overhead"]),
            f"{r['so/ao/ai/bg']['mean_rank_sync_s']:.0f}",
        )
        for label, r in records.items()
    ]
    return format_table(
        ("topology", "batch [s]", "oh lru", "straggler sync [s]",
         "wire sync [s]", "oh adaptive", "sync adaptive [s]"),
        rows,
        title=f"Extension — interconnect topology, LU.C x2 on {NNODES} "
              "nodes (200 MB lock)",
    )


if __name__ == "__main__":
    run()
