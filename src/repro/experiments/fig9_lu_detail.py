"""Figure 9 — per-mechanism breakdown for LU (§4.3).

LU runs in three configurations (serial class B; parallel class C on
two and on four machines) under six policy combinations: ``lru``
(original), ``ai``, ``so``, ``so/ao``, ``so/ao/bg``, ``so/ao/ai/bg``.

Paper observations to reproduce in shape:

* adaptive page-in (``ai``) and selective page-out (``so``) are each
  individually worth > 65 % reduction;
* adding aggressive page-out slightly hurts the *serial* case (too many
  page-outs together) and background writing recovers it;
* the full combination reaches 83 % / 61 % / 71 % reduction for
  serial / 2-machine / 4-machine runs.
"""

from __future__ import annotations

from repro.core.policies import PAPER_POLICIES
from repro.experiments.runner import GangConfig, run_modes
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent

#: (label, class, nprocs, quantum)
CONFIGS = (
    ("serial", "B", 1, 300.0),
    ("2 machines", "C", 2, 300.0),
    ("4 machines", "C", 4, 300.0),
)

ADAPTIVE_POLICIES = tuple(p for p in PAPER_POLICIES if p != "lru")

PAPER_FULL_REDUCTION = {"serial": 0.83, "2 machines": 0.61,
                        "4 machines": 0.71}


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    """Run Figure 9; returns records[config_label][policy]."""
    records: dict[str, dict] = {}
    for label, klass, nprocs, quantum in CONFIGS:
        cfg = GangConfig(
            "LU", klass, nprocs=nprocs, quantum_s=quantum,
            seed=seed, scale=scale,
        )
        res = run_modes(cfg, PAPER_POLICIES)
        batch = res["batch"].makespan
        lru = res["lru"].makespan
        per_policy = {"batch": {"makespan_s": batch}}
        for pol in PAPER_POLICIES:
            mk = res[pol].makespan
            per_policy[pol] = {
                "makespan_s": mk,
                "overhead": overhead_fraction(mk, batch),
                "reduction": paging_reduction(lru, mk, batch),
            }
        records[label] = per_policy
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    blocks = []
    # (a) completion times
    rows = []
    for label, per_policy in records.items():
        rows.append(
            [label]
            + [f"{per_policy[p]['makespan_s']:.0f}" for p in PAPER_POLICIES]
            + [f"{per_policy['batch']['makespan_s']:.0f}"]
        )
    blocks.append(
        format_table(
            ("config", *PAPER_POLICIES, "batch"),
            rows,
            title="Fig 9(a) — LU completion time [s] per policy combination",
        )
    )
    # (b) overhead
    rows = [
        [label] + [percent(per[p]["overhead"]) for p in PAPER_POLICIES]
        for label, per in records.items()
    ]
    blocks.append(
        format_table(
            ("config", *PAPER_POLICIES),
            rows,
            title="Fig 9(b) — paging overhead fraction",
        )
    )
    # (c) reduction over the original algorithm
    rows = [
        [label]
        + [percent(per[p]["reduction"]) for p in ADAPTIVE_POLICIES]
        + [percent(PAPER_FULL_REDUCTION[label])]
        for label, per in records.items()
    ]
    blocks.append(
        format_table(
            ("config", *ADAPTIVE_POLICIES, "paper so/ao/ai/bg"),
            rows,
            title="Fig 9(c) — reduction in paging overhead vs original",
        )
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    run()
