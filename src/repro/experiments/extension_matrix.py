"""Extension — a mixed workload on the full scheduling matrix.

The paper evaluates pairs of identical jobs; a production gang
scheduler juggles a *mix* (Feitelson & Rudolph [2], Fig. 5's scheduling
table).  This experiment packs four different jobs onto four nodes:

* ``LU4``  — LU class C on all four nodes,
* ``CG-L`` / ``CG-R`` — CG class C on two nodes each (sharing a row),
* ``IS4``  — IS class C on all four nodes,

three matrix rows in total, and compares plain LRU against the full
adaptive combination on makespan, mean completion and matrix
utilisation, with a per-job time breakdown.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.disk.device import ERA_DISK
from repro.gang.job import Job
from repro.gang.matrix import MatrixGangScheduler, ScheduleMatrix
from repro.mem.params import MemoryParams
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_table
from repro.metrics.timeline import render_breakdown
from repro.perf.pool import Cell, run_cells
from repro.perf.supervisor import require_ok
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.workloads.npb import make_npb

MEMORY_MB = 350.0
QUANTUM_S = 300.0
POLICIES = ("lru", "so/ao/ai/bg")


def _build_and_run(policy: str, scale: float, seed: int):
    env = Environment()
    rngs = RngStreams(seed)
    collector = MetricsCollector()
    memory = MemoryParams.from_mb(MEMORY_MB * scale)
    max_phase = min(
        8192, max(64, (memory.total_frames - memory.freepages_high) // 2)
    )
    nodes = [
        Node(env, f"node{i}", memory, policy, disk_params=ERA_DISK,
             refault_window_s=0.5 * QUANTUM_S * scale)
        for i in range(4)
    ]
    for n in nodes:
        collector.attach_node(n)

    def workloads(bench, nprocs, count):
        ws = []
        for _ in range(count):
            w = make_npb(bench, "C", nprocs, max_phase_pages=max_phase)
            if scale != 1.0:
                w.scale_in_place(scale)
            ws.append(w)
        return ws

    lu = Job("LU4", nodes, workloads("LU", 4, 4), rngs.spawn("lu"))
    cg_l = Job("CG-L", nodes[:2], workloads("CG", 2, 2), rngs.spawn("cgl"))
    cg_r = Job("CG-R", nodes[2:], workloads("CG", 2, 2), rngs.spawn("cgr"))
    is4 = Job("IS4", nodes, workloads("IS", 4, 4), rngs.spawn("is"))

    matrix = ScheduleMatrix(4)
    matrix.place(lu, [0, 1, 2, 3])
    matrix.place(cg_l, [0, 1])
    matrix.place(cg_r, [2, 3])
    matrix.place(is4, [0, 1, 2, 3])
    initial_util = matrix.utilization()

    sched = MatrixGangScheduler(env, nodes, matrix,
                                quantum_s=QUANTUM_S * scale)
    sched.start()
    env.run()
    jobs = [lu, cg_l, cg_r, is4]
    makespan = max(j.completed_at for j in jobs)
    # The record must survive a process boundary (parallel cells), so
    # live Job/collector objects stay here: jobs shrink to plain dicts
    # and the per-job breakdown view is rendered eagerly.
    return {
        "jobs": [{"name": j.name, "finished": j.finished,
                  "completed_at": j.completed_at} for j in jobs],
        "breakdown": render_breakdown(jobs, collector, makespan),
        "makespan_s": makespan,
        "mean_completion_s": sum(j.completed_at for j in jobs) / len(jobs),
        "rotations": sched.rotations,
        "matrix_utilization": initial_util,
        "pages_read": sum(n.disk.total_pages["read"] for n in nodes),
    }


def cell_grid(scale: float, seed: int) -> list[Cell]:
    """One cell per policy; each builds and runs the full 4-node mix."""
    return [
        Cell((pol,), _build_and_run,
             {"policy": pol, "scale": scale, "seed": seed})
        for pol in POLICIES
    ]


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        jobs: int = 1) -> dict:
    results = require_ok(run_cells(cell_grid(scale, seed), jobs=jobs),
                         context="extension matrix")
    records = {pol: results[(pol,)] for pol in POLICIES}
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = [
        (
            pol,
            f"{r['makespan_s']:.0f}",
            f"{r['mean_completion_s']:.0f}",
            r["rotations"],
            r["pages_read"],
            f"{r['matrix_utilization']:.0%}",
        )
        for pol, r in records.items()
    ]
    out = format_table(
        ("policy", "makespan [s]", "mean completion [s]", "rotations",
         "pages in", "matrix fill"),
        rows,
        title="Extension — mixed workload on the 4-node scheduling matrix "
              "(LU4 + CG-L|CG-R + IS4)",
    )
    full = records.get("so/ao/ai/bg")
    if full is not None:
        out += "\n\n" + full["breakdown"]
    return out


if __name__ == "__main__":
    run()
