"""Figure 7 — serial NPB2 benchmarks on one node (§4.1).

Two instances of each class-B program (LU, SP, CG, IS, MG) are gang
scheduled on a single node with five-minute quanta.  The three panels:

(a) job completion time for ``lru`` (original), ``so/ao/ai/bg`` (all
    adaptive mechanisms) and ``batch`` (back-to-back, no switching);
(b) switching overhead as a fraction of completion time;
(c) paging reduction of the adaptive policy over the original.

Paper results for (c): MG 93 %, LU 84 %, SP 78 %, CG 68 %, IS 19 %.
"""

from __future__ import annotations

from repro.experiments.runner import GangConfig, run_modes
from repro.metrics.analysis import overhead_fraction, paging_reduction
from repro.metrics.report import format_table, percent

BENCHMARKS = ("LU", "SP", "CG", "IS", "MG")
PAPER_REDUCTION = {"LU": 0.84, "SP": 0.78, "CG": 0.68, "IS": 0.19, "MG": 0.93}
POLICIES = ("lru", "so/ao/ai/bg")


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False) -> dict:
    """Run the Figure 7 experiment; returns one record per benchmark."""
    records = {}
    for bench in BENCHMARKS:
        cfg = GangConfig(bench, "B", nprocs=1, seed=seed, scale=scale)
        res = run_modes(cfg, POLICIES)
        batch = res["batch"].makespan
        lru = res["lru"].makespan
        full = res["so/ao/ai/bg"].makespan
        records[bench] = {
            "batch_s": batch,
            "lru_s": lru,
            "adaptive_s": full,
            "overhead_lru": overhead_fraction(lru, batch),
            "overhead_adaptive": overhead_fraction(full, batch),
            "reduction": paging_reduction(lru, full, batch),
            "paper_reduction": PAPER_REDUCTION[bench],
        }
    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows_a = [
        (b, f"{r['lru_s']:.0f}", f"{r['adaptive_s']:.0f}", f"{r['batch_s']:.0f}")
        for b, r in records.items()
    ]
    rows_bc = [
        (
            b,
            percent(r["overhead_lru"]),
            percent(r["overhead_adaptive"]),
            percent(r["reduction"]),
            percent(r["paper_reduction"]),
        )
        for b, r in records.items()
    ]
    return "\n\n".join(
        [
            format_table(
                ("bench", "lru [s]", "so/ao/ai/bg [s]", "batch [s]"),
                rows_a,
                title="Fig 7(a) — serial completion time (class B, 2 instances)",
            ),
            format_table(
                ("bench", "overhead lru", "overhead adaptive",
                 "reduction", "paper"),
                rows_bc,
                title="Fig 7(b,c) — switching overhead and paging reduction",
            ),
        ]
    )


if __name__ == "__main__":
    run()
