"""Extension — graceful degradation of adaptive paging under faults.

The paper evaluates adaptive paging on healthy hardware.  A natural
systems question follows: the mechanisms move *more* state per decision
(bulk page-out bursts, recorded page-in lists), so does a faulty
environment — transient disk errors, latency spikes, lost/corrupt
page-in records, straggling nodes — erase the win, or worse, make the
adaptive stack *fragile*?

This experiment sweeps a fault-intensity multiplier over a fixed rate
mix (disk I/O errors and latency spikes, page-in record loss and
corruption, node stragglers — no crashes, so every job completes and
makespans stay comparable) and runs the overcommitted two-job LU mix
under ``lru`` and the full adaptive stack at each intensity.

Measured shape: both policies slow down as faults intensify (retries
and latency spikes cost real disk time), but the adaptive stack
*degrades gracefully* — corrupt records fall back to plain demand
paging with the kernel's read-ahead, lost records simply page in on
demand — so it stays at least as fast as ``lru`` at every intensity
instead of collapsing below it.

A separate crash demo injects a high per-quantum node-crash rate and
shows the scheduler's response: the crashed node's jobs are evicted at
the next quantum boundary and the run still terminates (no gang
deadlock at a barrier), with the eviction causes recorded.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import GangConfig, run_cell
from repro.faults.plan import FaultRates
from repro.metrics.report import format_table
from repro.perf.pool import Cell, run_cells
from repro.perf.supervisor import require_ok

#: intensity multipliers applied to BASE_RATES (0 = fault-free)
INTENSITIES = (0.0, 1.0, 2.0, 4.0)

#: the per-decision rate mix at intensity 1.0
BASE_RATES = FaultRates(
    disk_error_rate=0.01,
    disk_latency_rate=0.02,
    disk_latency_factor=8.0,
    record_loss_rate=0.03,
    record_corruption_rate=0.03,
    straggler_rate=0.05,
    straggler_factor=2.0,
)

POLICIES = ("lru", "so/ao/ai/bg")


def _rates_at(x: float) -> FaultRates:
    if x == 0.0:
        return FaultRates()
    return replace(
        BASE_RATES,
        disk_error_rate=BASE_RATES.disk_error_rate * x,
        disk_latency_rate=BASE_RATES.disk_latency_rate * x,
        record_loss_rate=BASE_RATES.record_loss_rate * x,
        record_corruption_rate=BASE_RATES.record_corruption_rate * x,
        straggler_rate=min(1.0, BASE_RATES.straggler_rate * x),
    )


def cell_grid(base: GangConfig) -> list[Cell]:
    """The (intensity, policy) sweep plus the crash demo, as cells.

    Fault-injected cells are deterministic too: the injection RNG is
    seeded from the config, so the sweep parallelises like any other.
    """
    cells: list[Cell] = []
    for x in INTENSITIES:
        rates = _rates_at(x)
        for pol in POLICIES:
            cells.append(Cell(
                ("sweep", x, pol), run_cell,
                {"cfg": replace(base, mode="gang", policy=pol,
                                faults=rates)},
            ))
    # crash demo: two nodes, a per-quantum crash rate low enough that
    # the jobs make real progress before a node dies mid-run
    crash_cfg = replace(
        base,
        nprocs=2,
        policy="so/ao/ai/bg",
        faults=FaultRates(crash_rate=0.25),
        max_sim_s=1e9,  # belt-and-braces: a deadlock would trip this
    )
    cells.append(Cell(("crash",), run_cell, {"cfg": crash_cfg}))
    return cells


def run(scale: float = 1.0, seed: int = 1, quiet: bool = False,
        jobs: int = 1) -> dict:
    base = GangConfig("LU", "B", nprocs=1, seed=seed, scale=scale)
    results = require_ok(run_cells(cell_grid(base), jobs=jobs),
                         context="fault sweep")
    records: dict = {"sweep": {}, "crash_demo": {}}

    for x in INTENSITIES:
        row: dict = {}
        for pol in POLICIES:
            cell = results[("sweep", x, pol)]
            row[pol] = {
                "makespan_s": cell["makespan"],
                "fault_summary": cell["fault_summary"],
            }
        row["ratio"] = (
            row["so/ao/ai/bg"]["makespan_s"] / row["lru"]["makespan_s"]
        )
        records["sweep"][x] = row

    crash = results[("crash",)]
    records["crash_demo"] = {
        "makespan_s": crash["makespan"],
        "completed": sorted(crash["completions"]),
        "evicted": crash["evicted"],
        "fault_summary": crash["fault_summary"],
    }

    if not quiet:
        print(render(records))
    return records


def render(records: dict) -> str:
    rows = []
    for x, row in sorted(records["sweep"].items()):
        fs = row["so/ao/ai/bg"]["fault_summary"]
        inj = fs["injected"]
        rows.append((
            f"{x:g}x",
            f"{sum(inj.values())}",
            f"{fs['disk_retries']}",
            f"{fs['ai_fallbacks']}",
            f"{row['lru']['makespan_s']:.0f}",
            f"{row['so/ao/ai/bg']['makespan_s']:.0f}",
            f"{row['ratio']:.2f}",
        ))
    table = format_table(
        ("faults", "injected", "retries", "ai fallbacks",
         "lru [s]", "adaptive [s]", "adaptive/lru"),
        rows,
        title="Extension — fault-intensity sweep (LU.B x 2 serial; "
              "injected counts are for the adaptive run)",
    )
    demo = records.get("crash_demo") or {}
    if demo:
        evicted = ", ".join(sorted(demo["evicted"])) or "<none>"
        table += (
            f"\ncrash demo: makespan {demo['makespan_s']:.0f}s, "
            f"evicted: {evicted}, "
            f"crashes injected: "
            f"{demo['fault_summary']['injected'].get('node_crashes', 0)}"
        )
    return table


if __name__ == "__main__":
    run()
