"""Paging-device substrate.

Models the paper's paging disk at the level that matters for its
argument: *"latency of the disk arm movement is the largest component of
the time required to transfer data"* (§1).  A transfer of N pages costs
a seek + rotational latency for every discontiguous run of swap slots,
plus a per-page transfer time — so large contiguous block transfers are
dramatically cheaper per page than scattered single-page I/O, and
interleaved read/write bursts pay repeated seeks.

Public surface
--------------
:class:`DiskParams`    — geometry/latency parameters.
:class:`Disk`          — the device: queue, head position, service model.
:class:`DiskRequest`   — a submitted transfer (an awaitable event).
:class:`SwapAllocator` — swap-space slot allocator with contiguous runs.
:data:`PRIO_FOREGROUND`, :data:`PRIO_BACKGROUND` — request priorities.
"""

from repro.disk.device import (
    ERA_DISK,
    PRIO_BACKGROUND,
    PRIO_FOREGROUND,
    Disk,
    DiskParams,
    DiskRequest,
)
from repro.disk.scheduler import ScheduledDisk
from repro.disk.swap import SwapAllocator, SwapFullError

__all__ = [
    "Disk",
    "DiskParams",
    "DiskRequest",
    "ERA_DISK",
    "PRIO_BACKGROUND",
    "PRIO_FOREGROUND",
    "ScheduledDisk",
    "SwapAllocator",
    "SwapFullError",
]
