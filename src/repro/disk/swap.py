"""Swap-space slot allocator.

Swap space is an array of page-sized *slots*.  The allocator hands out
runs of slots and tries hard to keep each allocation contiguous, because
the disk's service model (see :mod:`repro.disk.device`) charges one seek
per discontiguous run.  Whether a page-out lands in contiguous slots is
exactly what distinguishes the paper's block-style aggressive page-out
from LRU's one-page-at-a-time evictions.

The allocator keeps free space as a set of maximal runs, stored in two
parallel structures: a ``start -> length`` dict and a sorted list of
starts for bisection.  Frees coalesce with both neighbours.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable

import numpy as np


class SwapFullError(Exception):
    """Raised when an allocation cannot be satisfied."""


class SwapAllocator:
    """Allocate and free runs of swap slots.

    Parameters
    ----------
    num_slots:
        Total size of the swap area, in pages.

    strategy:
        How a hosting run is chosen when several could satisfy a
        request: ``"first-fit"`` (lowest start; the Linux swap-map
        behaviour and the default), ``"best-fit"`` (smallest run that
        fits, minimising leftover holes) or ``"next-fit"`` (first fit
        after the previous allocation, spreading wear).

    Notes
    -----
    * If no single run is large enough the allocation is split over
      several runs (largest-first), mirroring how a real swap area
      fragments.
    * All returned slot arrays are ``int64`` numpy arrays.
    """

    STRATEGIES = ("first-fit", "best-fit", "next-fit")

    def __init__(self, num_slots: int, strategy: str = "first-fit") -> None:
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected {self.STRATEGIES}"
            )
        self.num_slots = int(num_slots)
        self.strategy = strategy
        self._free_runs: dict[int, int] = {0: self.num_slots}
        self._starts: list[int] = [0]
        self._free_count = self.num_slots
        self._next_hint = 0

    # -- introspection ---------------------------------------------------
    @property
    def free_slots(self) -> int:
        """Number of free slots."""
        return self._free_count

    @property
    def used_slots(self) -> int:
        """Number of allocated slots."""
        return self.num_slots - self._free_count

    def free_runs(self) -> list[tuple[int, int]]:
        """Current maximal free runs as ``(start, length)`` pairs."""
        return sorted(self._free_runs.items())

    def largest_free_run(self) -> int:
        """Length of the largest free run (0 if swap is full)."""
        return max(self._free_runs.values(), default=0)

    def fragmentation(self) -> float:
        """1 - largest_run/free_count: 0 when free space is one run."""
        if self._free_count == 0:
            return 0.0
        return 1.0 - self.largest_free_run() / self._free_count

    # -- allocation --------------------------------------------------------
    def allocate(self, n: int) -> np.ndarray:
        """Allocate ``n`` slots, as contiguously as possible.

        Returns the allocated slot ids in ascending order per run,
        concatenated run by run.  Raises :class:`SwapFullError` if fewer
        than ``n`` slots are free.
        """
        if n <= 0:
            raise ValueError(f"allocation size must be positive, got {n}")
        if n > self._free_count:
            raise SwapFullError(
                f"requested {n} slots but only {self._free_count} free"
            )

        start = self._choose_run(n)
        if start is not None:
            self._take(start, n)
            self._next_hint = start + n
            return np.arange(start, start + n, dtype=np.int64)

        # No single run is big enough: consume runs largest-first.
        pieces: list[np.ndarray] = []
        remaining = n
        while remaining > 0:
            start = max(self._free_runs, key=self._free_runs.__getitem__)
            length = self._free_runs[start]
            take = min(length, remaining)
            self._take(start, take)
            pieces.append(np.arange(start, start + take, dtype=np.int64))
            remaining -= take
        return np.concatenate(pieces)

    def allocate_single(self) -> int:
        """Allocate one slot (LRU-style single-page eviction path)."""
        return int(self.allocate(1)[0])

    def free(self, slots: Iterable[int] | np.ndarray) -> None:
        """Return ``slots`` to the free pool (coalescing neighbours)."""
        arr = np.asarray(list(slots) if not isinstance(slots, np.ndarray) else slots,
                         dtype=np.int64)
        if arr.size == 0:
            return
        if arr.min() < 0 or arr.max() >= self.num_slots:
            raise ValueError("slot id out of range")
        arr = np.sort(arr)
        if arr.size > 1 and np.any(np.diff(arr) == 0):
            raise ValueError("duplicate slot in free()")
        # Split into maximal consecutive runs and free each.
        breaks = np.flatnonzero(np.diff(arr) != 1) + 1
        for run in np.split(arr, breaks):
            self._release(int(run[0]), int(run.size))

    # -- internals ---------------------------------------------------------
    def _choose_run(self, n: int) -> int | None:
        """Pick the start of a free run able to hold ``n`` slots."""
        if self.strategy == "first-fit":
            for start in self._starts:
                if self._free_runs[start] >= n:
                    return start
            return None
        if self.strategy == "best-fit":
            best = None
            best_len = None
            for start in self._starts:
                length = self._free_runs[start]
                if length >= n and (best_len is None or length < best_len):
                    best, best_len = start, length
            return best
        # next-fit: first fitting run at/after the hint, wrapping once
        idx = bisect_left(self._starts, self._next_hint)
        for start in self._starts[idx:] + self._starts[:idx]:
            if self._free_runs[start] >= n:
                return start
        return None

    def _take(self, start: int, n: int) -> None:
        """Remove ``n`` slots from the head of the free run at ``start``."""
        length = self._free_runs.pop(start)
        idx = bisect_left(self._starts, start)
        del self._starts[idx]
        if length > n:
            new_start = start + n
            self._free_runs[new_start] = length - n
            insort(self._starts, new_start)
        self._free_count -= n

    def _release(self, start: int, n: int) -> None:
        """Insert a run, coalescing with adjacent free runs."""
        freed = n
        end = start + n
        # Find potential neighbours via the sorted starts list.
        idx = bisect_left(self._starts, start)
        prev_start = self._starts[idx - 1] if idx > 0 else None
        next_start = self._starts[idx] if idx < len(self._starts) else None

        if prev_start is not None:
            prev_end = prev_start + self._free_runs[prev_start]
            if prev_end > start:
                raise ValueError(f"double free of slots near {start}")
            if prev_end == start:  # merge left
                start = prev_start
                n += self._free_runs.pop(prev_start)
                del self._starts[idx - 1]
                idx -= 1
        if next_start is not None:
            if next_start < end:
                raise ValueError(f"double free of slots near {next_start}")
            if next_start == end:  # merge right
                n += self._free_runs.pop(next_start)
                del self._starts[idx]

        self._free_runs[start] = n
        insort(self._starts, start)
        self._free_count += freed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SwapAllocator(slots={self.num_slots}, free={self._free_count}, "
            f"runs={len(self._free_runs)})"
        )


__all__ = ["SwapAllocator", "SwapFullError"]
