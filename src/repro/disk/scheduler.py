"""Disk request-queue scheduling disciplines.

The base :class:`~repro.disk.device.Disk` serves requests in priority
FIFO order.  Real paging devices of the paper's era sat behind an
elevator in the kernel's block layer, which matters when page-in and
page-out streams interleave: position-aware dispatch recovers some of
the head locality that FIFO destroys.

Three disciplines are provided:

``fifo``   strict arrival order within a priority level (the default
           device behaviour; used by all paper experiments),
``sstf``   shortest-seek-time-first: among queued requests of the best
           priority, pick the one whose first slot is nearest the head,
``cscan``  circular elevator: serve requests at or above the head
           position in ascending slot order, then jump back.

A discipline only reorders *within* a priority level — a background
write never overtakes a foreground fault.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.disk.device import Disk, DiskParams, DiskRequest
from repro.obs.registry import NULL_OBS
from repro.sim.engine import Environment


class ScheduledDisk(Disk):
    """A :class:`Disk` with a pluggable dispatch discipline.

    Parameters
    ----------
    discipline:
        ``"fifo"`` (arrival order), ``"sstf"`` or ``"cscan"``.
    """

    DISCIPLINES = ("fifo", "sstf", "cscan")

    def __init__(
        self,
        env: Environment,
        params: DiskParams = DiskParams(),
        discipline: str = "fifo",
        on_complete=None,
        name: str = "disk0",
        faults=None,
        max_retries: int = 4,
        retry_budget=None,
        obs=None,
    ) -> None:
        if discipline not in self.DISCIPLINES:
            raise ValueError(
                f"unknown discipline {discipline!r}; "
                f"expected one of {self.DISCIPLINES}"
            )
        super().__init__(env, params, on_complete, name,
                         faults=faults, max_retries=max_retries,
                         retry_budget=retry_budget,
                         obs=obs if obs is not None else NULL_OBS)
        self.discipline = discipline
        # pending requests as a flat list for position-aware selection
        self._pending: list[tuple[int, int, DiskRequest]] = []
        if discipline == "fifo":
            # fifo delegates straight to the base device; binding the
            # base implementation onto the instance removes one Python
            # frame from every submit on the paging hot path
            self.submit = Disk.submit.__get__(self, type(self))

    # -- overrides ---------------------------------------------------------
    def submit(self, slots, op, priority=0, pid=None, extra_delay=0.0):
        if self.discipline == "fifo":
            return super().submit(slots, op, priority, pid, extra_delay)
        req = DiskRequest(self, np.asarray(slots, dtype=np.int64), op,
                          priority, pid)
        req._extra_delay = extra_delay
        seq = self._seq
        self._seq = seq + 1
        self._pending.append((priority, seq, req))
        self.max_queue_seen = max(
            self.max_queue_seen, self.queue_length + (1 if self._busy else 0)
        )
        if not self._busy:
            self._busy = True
            self.env.process(self._serve_scheduled())
        return req

    @property
    def queue_length(self) -> int:
        if self.discipline == "fifo":
            return super().queue_length
        return sum(1 for _, _, r in self._pending if not r.cancelled)

    # -- scheduled dispatch ---------------------------------------------------
    def _pick(self) -> Optional[DiskRequest]:
        """Select the next request per the discipline."""
        live = [(p, s, r) for p, s, r in self._pending if not r.cancelled]
        self._pending = live
        if not live:
            return None
        best_prio = min(p for p, _, _ in live)
        candidates = [(s, r) for p, s, r in live if p == best_prio]
        if self.discipline == "sstf":
            key = lambda sr: (abs(int(sr[1].slots[0]) - self._head), sr[0])
        else:  # cscan
            def key(sr):
                start = int(sr[1].slots[0])
                # ahead of the head first (ascending), then wrap
                ahead = start >= self._head
                return (0 if ahead else 1,
                        start if ahead else start, sr[0])
        chosen = min(candidates, key=key)[1]
        self._pending = [
            (p, s, r) for p, s, r in self._pending if r is not chosen
        ]
        return chosen

    def _serve_scheduled(self):
        while True:
            req = self._pick()
            if req is None:
                break
            yield from self._service_one(req)
        self._busy = False


__all__ = ["ScheduledDisk"]
