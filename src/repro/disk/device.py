"""The paging disk: request queue, head model, service times.

Service model
-------------
A request names a set of swap slots and a direction (read/write).  The
slots are grouped into maximal consecutive runs; each run costs

* a **seek + rotational latency** unless the head is already positioned
  at the run's first slot (i.e. the run continues the previous transfer),
* plus ``pages * page_transfer_time``,
* plus a fixed per-request controller overhead.

This is deliberately the simplest model that exhibits the two effects
the paper's mechanisms exploit: (1) contiguous block transfers amortise
the arm movement, and (2) interleaved page-in/page-out bursts destroy
head locality and thrash the arm (paper §2, §4 Fig. 6).

Scheduling
----------
Requests queue by ``(priority, arrival)``.  Foreground page faults use
:data:`PRIO_FOREGROUND`; the paper's §3.4 background dirty-page writer
uses :data:`PRIO_BACKGROUND` so it never delays a foreground fault that
is already queued.  Service is non-preemptive.

Faults
------
With a :class:`~repro.faults.plan.FaultPlan` attached, each service
attempt may suffer a latency spike or a transient error.  Errors are
retried with exponential backoff up to ``max_retries`` per request,
bounded by an optional cumulative per-device ``retry_budget``; when
either is exhausted the request *fails* with a typed
:class:`~repro.faults.errors.DiskFailure` instead of silently hanging,
and whatever process awaited it sees the exception.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Optional

import numpy as np

from repro.faults.errors import DiskFailure
from repro.faults.plan import FaultPlan
from repro.obs.registry import NULL_OBS
from repro.sim.engine import Environment, Event

#: Queue priority for demand faults and switch-time paging bursts.
PRIO_FOREGROUND = 0
#: Queue priority for the background dirty-page writer (served only when
#: no foreground request is waiting).
PRIO_BACKGROUND = 10


@dataclass(frozen=True)
class DiskParams:
    """Latency/geometry parameters of the paging device.

    Defaults approximate a circa-2003 commodity IDE disk, matching the
    era of the paper's testbed (the absolute values only set the time
    scale; every reported result is a ratio).
    """

    #: average seek time, seconds
    seek_s: float = 0.008
    #: average rotational latency, seconds (half a revolution @7200rpm)
    rotational_s: float = 0.004
    #: sustained sequential transfer rate, bytes/second
    transfer_bytes_s: float = 20e6
    #: page (and swap-slot) size in bytes
    page_bytes: int = 4096
    #: fixed per-request controller/driver overhead, seconds
    overhead_s: float = 0.0005
    #: optional distance-dependent seek component: each positioning
    #: additionally costs ``coef * sqrt(|target - head|)`` seconds
    #: (the classic a + b*sqrt(d) arm model).  0 (the default) keeps the
    #: flat-seek model used by all paper experiments; the disk-scheduling
    #: extension sets it to study elevator disciplines.
    seek_distance_coef_s: float = 0.0

    def __post_init__(self) -> None:
        if min(self.seek_s, self.rotational_s, self.overhead_s,
               self.seek_distance_coef_s) < 0:
            raise ValueError("latencies must be non-negative")
        if self.transfer_bytes_s <= 0 or self.page_bytes <= 0:
            raise ValueError("rates and sizes must be positive")

    @property
    def page_transfer_s(self) -> float:
        """Time to stream one page once the head is positioned."""
        return self.page_bytes / self.transfer_bytes_s

    @property
    def positioning_s(self) -> float:
        """Seek plus rotational latency for one discontiguous run."""
        return self.seek_s + self.rotational_s


#: Disk of the paper's testbed era (c. 2001 commodity IDE under the
#: Linux 2.2 swap path): slower sustained transfer and a longer
#: effective seek than the :class:`DiskParams` defaults.  The
#: experiment harnesses use this so that paging costs occupy a
#: paper-like share of the five-minute quantum.
ERA_DISK = DiskParams(
    seek_s=0.012,
    rotational_s=0.004,
    transfer_bytes_s=10e6,
)


class DiskRequest(Event):
    """A queued transfer; fires (with the service time) when complete."""

    def __init__(
        self,
        disk: "Disk",
        slots: np.ndarray,
        op: str,
        priority: int,
        pid: Optional[int] = None,
    ) -> None:
        super().__init__(disk.env)
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if slots.size == 0:
            raise ValueError("empty slot list")
        self.disk = disk
        self.slots = np.sort(np.asarray(slots, dtype=np.int64))
        self.op = op
        self.priority = priority
        self.pid = pid
        self.submitted_at = disk.env.now
        self.cancelled = False
        #: still sitting in the wait queue (kept by the disk's O(1)
        #: live-queue counter)
        self._queued = False
        #: filled in when serviced
        self.service_time: Optional[float] = None
        self.seeks: Optional[int] = None

    @property
    def npages(self) -> int:
        return int(self.slots.size)

    def cancel(self) -> bool:
        """Withdraw the request if it has not begun service.

        Returns True if cancelled (the event then never fires), False if
        service already started or completed.
        """
        if self.triggered or self.cancelled:
            return False
        self.cancelled = True
        if self._queued:
            self._queued = False
            self.disk._live -= 1
        return True


class Disk:
    """A single paging device shared by everything on one node.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Latency model parameters.
    on_complete:
        Optional callback ``f(request, start_time, end_time)`` invoked
        when each request finishes — the metrics collector hooks here.
    faults:
        Optional fault plan injecting transient errors / latency spikes
        into each service attempt (inert when ``None``).
    max_retries:
        Transient-error retries per request before the request fails
        with :class:`~repro.faults.errors.DiskFailure`.
    retry_budget:
        Optional cumulative retry allowance for the whole device; once
        spent, further errors fail immediately (``None`` = unlimited).
    """

    def __init__(
        self,
        env: Environment,
        params: DiskParams = DiskParams(),
        on_complete: Optional[Callable[[DiskRequest, float, float], None]] = None,
        name: str = "disk0",
        faults: Optional[FaultPlan] = None,
        max_retries: int = 4,
        retry_budget: Optional[int] = None,
        obs=NULL_OBS,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_budget is not None and retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        self.env = env
        self.params = params
        self.name = name
        self.on_complete = on_complete
        self.faults = faults
        self.max_retries = max_retries
        self.retry_budget_left = retry_budget
        self._queue: list[tuple[int, int, DiskRequest]] = []
        self._seq = count()
        self._busy = False
        # live (non-cancelled) queued requests, maintained incrementally
        # so submit() does not rescan the heap
        self._live = 0
        #: slot just past the last one transferred (head position)
        self._head = 0
        #: direction of the last transfer, for interleave accounting
        self._last_op: Optional[str] = None
        # cumulative statistics
        self.total_busy_s = 0.0
        self.total_requests = 0
        self.total_pages = {"read": 0, "write": 0}
        self.total_seeks = 0
        #: deepest wait queue observed (including the request in service)
        self.max_queue_seen = 0
        # fault/response statistics
        self.error_count = 0
        self.retry_count = 0
        self.failed_requests = 0
        self.latency_spikes = 0
        # telemetry (no-ops against the default NULL_OBS registry)
        self._obs_on = obs.enabled
        self._c_requests = obs.counter("disk_requests", node=name)
        self._c_pages_read = obs.counter("disk_pages", node=name, op="read")
        self._c_pages_write = obs.counter("disk_pages", node=name, op="write")
        self._c_seeks = obs.counter("disk_seeks", node=name)
        self._c_errors = obs.counter("disk_errors", node=name)
        self._c_retries = obs.counter("disk_retries", node=name)
        self._c_failed = obs.counter("disk_failed_requests", node=name)
        self._c_spikes = obs.counter("disk_latency_spikes", node=name)
        self._h_service = obs.histogram("disk_service_s", node=name)

    # -- public API ----------------------------------------------------------
    def submit(
        self,
        slots: np.ndarray,
        op: str,
        priority: int = PRIO_FOREGROUND,
        pid: Optional[int] = None,
    ) -> DiskRequest:
        """Queue a transfer of ``slots``; returns an awaitable request."""
        req = DiskRequest(self, np.asarray(slots, dtype=np.int64), op, priority, pid)
        req._queued = True
        self._live += 1
        heapq.heappush(self._queue, (priority, next(self._seq), req))
        depth = self._live + (1 if self._busy else 0)
        if depth > self.max_queue_seen:
            self.max_queue_seen = depth
        if not self._busy:
            self._busy = True
            self.env.process(self._serve())
        return req

    @property
    def queue_length(self) -> int:
        """Live (non-cancelled) queued requests, excluding one in service."""
        return self._live

    @property
    def busy(self) -> bool:
        return self._busy

    def service_time(self, request: DiskRequest) -> tuple[float, int]:
        """Compute (duration, seeks) for ``request`` given head state.

        Pure function of the current head position / direction; used by
        the dispatcher and directly unit-testable.  Runs once per disk
        request, so the run decomposition stays on plain Python ints —
        per-element numpy indexing here showed up in profiles.
        """
        slots = request.slots
        params = self.params
        coef = params.seek_distance_coef_s
        first = int(slots[0])
        last = int(slots[-1])
        if last - first == slots.size - 1:
            # single contiguous run — the dominant case for swap-cluster
            # writes and block page-ins (slots are sorted and unique, so
            # span == size-1 implies consecutive)
            starts = [first]
            ends = [last + 1]
        else:
            slist = slots.tolist()
            starts = [first]
            ends = []
            prev = first
            for s in slist[1:]:
                if s != prev + 1:
                    ends.append(prev + 1)
                    starts.append(s)
                prev = s
            ends.append(prev + 1)

        seeks = 0
        positioning = 0.0
        positioning_s = params.positioning_s
        pos = self._head
        op = request.op
        last_op = self._last_op
        for i, start in enumerate(starts):
            # A run is free of positioning cost if it exactly continues
            # the previous transfer (sequential streaming).  A direction
            # change (read->write or write->read) always seeks on the
            # first run: page-in and page-out streams target different
            # areas/queues.
            continues = start == pos and (i > 0 or last_op == op)
            if not continues:
                seeks += 1
                positioning += positioning_s
                if coef > 0.0:
                    # math.sqrt is bitwise-identical to np.sqrt on floats
                    positioning += coef * math.sqrt(abs(start - pos))
            pos = ends[i]

        duration = (
            params.overhead_s
            + positioning
            + slots.size * params.page_transfer_s
        )
        return duration, seeks

    # -- dispatcher --------------------------------------------------------
    def _service_one(self, req: DiskRequest):
        """Process fragment: position, transfer and complete ``req``.

        Each attempt may be hit by an injected latency spike or
        transient error; errors retry with exponential backoff until
        ``max_retries`` (or the device-wide retry budget) is exhausted,
        at which point the request fails with :class:`DiskFailure`.
        """
        start = self.env.now
        attempt = 0
        while True:
            duration, seeks = self.service_time(req)
            if self.faults is not None:
                spike = self.faults.disk_latency_factor(self.name)
                if spike > 1.0:
                    self.latency_spikes += 1
                    self._c_spikes.inc()
                    duration *= spike
            yield self.env.timeout(duration)
            self.total_busy_s += duration
            if self.faults is not None and self.faults.disk_error(self.name):
                self.error_count += 1
                self._c_errors.inc()
                budget_out = self.retry_budget_left == 0
                if attempt >= self.max_retries or budget_out:
                    self.failed_requests += 1
                    self._c_failed.inc()
                    why = ("device retry budget exhausted" if budget_out
                           else f"failed after {attempt} retries")
                    req.fail(DiskFailure(
                        f"{self.name}: {req.op} of {req.npages} pages {why}"
                    ))
                    return
                if self.retry_budget_left is not None:
                    self.retry_budget_left -= 1
                attempt += 1
                self.retry_count += 1
                self._c_retries.inc()
                yield self.env.timeout(
                    self.params.positioning_s * (2 ** attempt)
                )
                continue
            break
        # update head state
        self._head = int(req.slots[-1]) + 1
        self._last_op = req.op
        # statistics
        npages = req.npages
        self.total_requests += 1
        self.total_pages[req.op] += npages
        self.total_seeks += seeks
        if self._obs_on:
            self._c_requests.inc()
            (self._c_pages_read if req.op == "read"
             else self._c_pages_write).inc(npages)
            self._c_seeks.inc(seeks)
            self._h_service.observe(duration)
        req.service_time = duration
        req.seeks = seeks
        req.succeed(duration)
        if self.on_complete is not None:
            self.on_complete(req, start, self.env.now)

    def _serve(self):
        while self._queue:
            _, _, req = heapq.heappop(self._queue)
            if req.cancelled:
                continue  # its _live slot was returned by cancel()
            req._queued = False
            self._live -= 1
            yield from self._service_one(req)
        self._busy = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Disk({self.name}, queued={self.queue_length}, busy={self._busy}, "
            f"served={self.total_requests})"
        )


__all__ = [
    "Disk",
    "DiskParams",
    "DiskRequest",
    "ERA_DISK",
    "PRIO_BACKGROUND",
    "PRIO_FOREGROUND",
]
