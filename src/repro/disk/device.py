"""The paging disk: request queue, head model, service times.

Service model
-------------
A request names a set of swap slots and a direction (read/write).  The
slots are grouped into maximal consecutive runs; each run costs

* a **seek + rotational latency** unless the head is already positioned
  at the run's first slot (i.e. the run continues the previous transfer),
* plus ``pages * page_transfer_time``,
* plus a fixed per-request controller overhead.

This is deliberately the simplest model that exhibits the two effects
the paper's mechanisms exploit: (1) contiguous block transfers amortise
the arm movement, and (2) interleaved page-in/page-out bursts destroy
head locality and thrash the arm (paper §2, §4 Fig. 6).

Scheduling
----------
Requests queue by ``(priority, arrival)``.  Foreground page faults use
:data:`PRIO_FOREGROUND`; the paper's §3.4 background dirty-page writer
uses :data:`PRIO_BACKGROUND` so it never delays a foreground fault that
is already queued.  Service is non-preemptive.

Faults
------
With a :class:`~repro.faults.plan.FaultPlan` attached, each service
attempt may suffer a latency spike or a transient error.  Errors are
retried with exponential backoff up to ``max_retries`` per request,
bounded by an optional cumulative per-device ``retry_budget``; when
either is exhausted the request *fails* with a typed
:class:`~repro.faults.errors.DiskFailure` instead of silently hanging,
and whatever process awaited it sees the exception.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.faults.errors import DiskFailure
from repro.faults.plan import FaultPlan
from repro.obs.registry import NULL_OBS
from repro.sim import compiled as _compiled
from repro.sim import fastpath as _fastpath
from repro.sim.engine import NORMAL, Environment, Event

#: Queue priority for demand faults and switch-time paging bursts.
PRIO_FOREGROUND = 0
#: Queue priority for the background dirty-page writer (served only when
#: no foreground request is waiting).
PRIO_BACKGROUND = 10


@dataclass(frozen=True)
class DiskParams:
    """Latency/geometry parameters of the paging device.

    Defaults approximate a circa-2003 commodity IDE disk, matching the
    era of the paper's testbed (the absolute values only set the time
    scale; every reported result is a ratio).
    """

    #: average seek time, seconds
    seek_s: float = 0.008
    #: average rotational latency, seconds (half a revolution @7200rpm)
    rotational_s: float = 0.004
    #: sustained sequential transfer rate, bytes/second
    transfer_bytes_s: float = 20e6
    #: page (and swap-slot) size in bytes
    page_bytes: int = 4096
    #: fixed per-request controller/driver overhead, seconds
    overhead_s: float = 0.0005
    #: optional distance-dependent seek component: each positioning
    #: additionally costs ``coef * sqrt(|target - head|)`` seconds
    #: (the classic a + b*sqrt(d) arm model).  0 (the default) keeps the
    #: flat-seek model used by all paper experiments; the disk-scheduling
    #: extension sets it to study elevator disciplines.
    seek_distance_coef_s: float = 0.0

    def __post_init__(self) -> None:
        if min(self.seek_s, self.rotational_s, self.overhead_s,
               self.seek_distance_coef_s) < 0:
            raise ValueError("latencies must be non-negative")
        if self.transfer_bytes_s <= 0 or self.page_bytes <= 0:
            raise ValueError("rates and sizes must be positive")

    @property
    def page_transfer_s(self) -> float:
        """Time to stream one page once the head is positioned."""
        return self.page_bytes / self.transfer_bytes_s

    @property
    def positioning_s(self) -> float:
        """Seek plus rotational latency for one discontiguous run."""
        return self.seek_s + self.rotational_s


#: Disk of the paper's testbed era (c. 2001 commodity IDE under the
#: Linux 2.2 swap path): slower sustained transfer and a longer
#: effective seek than the :class:`DiskParams` defaults.  The
#: experiment harnesses use this so that paging costs occupy a
#: paper-like share of the five-minute quantum.
ERA_DISK = DiskParams(
    seek_s=0.012,
    rotational_s=0.004,
    transfer_bytes_s=10e6,
)


class DiskRequest(Event):
    """A queued transfer; fires (with the service time) when complete.

    Carries ``__slots__`` like every other event class: tens of
    thousands of requests per run make the per-instance dict a
    measurable allocation cost on the paging hot path.
    """

    __slots__ = (
        "disk", "slots", "op", "priority", "pid", "submitted_at",
        "cancelled", "_queued", "service_time", "seeks", "completed_at",
        "_extra_delay",
    )

    def __init__(
        self,
        disk: "Disk",
        slots: np.ndarray,
        op: str,
        priority: int,
        pid: Optional[int] = None,
    ) -> None:
        super().__init__(disk.env)
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if slots.size == 0:
            raise ValueError("empty slot list")
        self.disk = disk
        self.slots = np.sort(np.asarray(slots, dtype=np.int64))
        self.op = op
        self.priority = priority
        self.pid = pid
        self.submitted_at = disk.env.now
        self.cancelled = False
        #: still sitting in the wait queue (kept by the disk's O(1)
        #: live-queue counter)
        self._queued = False
        #: filled in when serviced
        self.service_time: Optional[float] = None
        self.seeks: Optional[int] = None
        #: virtual time service finished (set on success; the fast path
        #: may deliver the completion to the waiter ``_extra_delay``
        #: later, so refault-window checks use this exact instant)
        self.completed_at: Optional[float] = None
        #: extra delay between service completion and the waiter seeing
        #: the trigger (the fused major-fault CPU charge); honoured only
        #: by the fast dispatcher
        self._extra_delay = 0.0

    @property
    def npages(self) -> int:
        return int(self.slots.size)

    def cancel(self) -> bool:
        """Withdraw the request if it has not begun service.

        Returns True if cancelled (the event then never fires), False if
        service already started or completed.
        """
        if self.triggered or self.cancelled:
            return False
        self.cancelled = True
        if self._queued:
            self._queued = False
            self.disk._live -= 1
        return True


class _EagerRequest:
    """Completed-transfer record for the batch-advance tier.

    The eager service path (:meth:`Disk.service_eager`,
    :meth:`Disk.commit_eager_run`) never enqueues or dispatches, so it
    does not need an :class:`~repro.sim.engine.Event`; this carries just
    the fields completion hooks and the VMM read back.  ``slots`` must
    already be sorted ascending (plan groups and eviction batches are).
    """

    __slots__ = (
        "slots", "op", "priority", "pid", "submitted_at",
        "service_time", "seeks", "completed_at",
    )

    def __init__(
        self,
        slots: np.ndarray,
        op: str,
        priority: int,
        pid: Optional[int],
        submitted_at: float,
    ) -> None:
        self.slots = slots
        self.op = op
        self.priority = priority
        self.pid = pid
        self.submitted_at = submitted_at
        self.service_time: Optional[float] = None
        self.seeks: Optional[int] = None
        self.completed_at: Optional[float] = None

    @property
    def npages(self) -> int:
        return int(self.slots.size)


class Disk:
    """A single paging device shared by everything on one node.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Latency model parameters.
    on_complete:
        Optional callback ``f(request, start_time, end_time)`` invoked
        when each request finishes — the metrics collector hooks here.
    faults:
        Optional fault plan injecting transient errors / latency spikes
        into each service attempt (inert when ``None``).
    max_retries:
        Transient-error retries per request before the request fails
        with :class:`~repro.faults.errors.DiskFailure`.
    retry_budget:
        Optional cumulative retry allowance for the whole device; once
        spent, further errors fail immediately (``None`` = unlimited).
    """

    def __init__(
        self,
        env: Environment,
        params: DiskParams = DiskParams(),
        on_complete: Optional[Callable[[DiskRequest, float, float], None]] = None,
        name: str = "disk0",
        faults: Optional[FaultPlan] = None,
        max_retries: int = 4,
        retry_budget: Optional[int] = None,
        obs=NULL_OBS,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_budget is not None and retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        self.env = env
        self.params = params
        self.name = name
        self.on_complete = on_complete
        #: optional run-aware observer ``f(op, sizes, starts, ends,
        #: pid)`` taking a whole eager run in one call; when set it
        #: replaces ``on_complete`` for bulk commits (the collector
        #: installs both)
        self.on_complete_run: Optional[Callable] = None
        self.faults = faults
        self.max_retries = max_retries
        self.retry_budget_left = retry_budget
        self._queue: list[tuple[int, int, DiskRequest]] = []
        self._seq = 0
        self._busy = False
        # live (non-cancelled) queued requests, maintained incrementally
        # so submit() does not rescan the heap
        self._live = 0
        #: slot just past the last one transferred (head position)
        self._head = 0
        #: direction of the last transfer, for interleave accounting
        self._last_op: Optional[str] = None
        # cumulative statistics
        self.total_busy_s = 0.0
        self.total_requests = 0
        self.total_pages = {"read": 0, "write": 0}
        self.total_seeks = 0
        #: deepest wait queue observed (including the request in service)
        self.max_queue_seen = 0
        # fault/response statistics
        self.error_count = 0
        self.retry_count = 0
        self.failed_requests = 0
        self.latency_spikes = 0
        # telemetry (no-ops against the default NULL_OBS registry)
        self._obs_on = obs.enabled
        self._c_requests = obs.counter("disk_requests", node=name)
        self._c_pages_read = obs.counter("disk_pages", node=name, op="read")
        self._c_pages_write = obs.counter("disk_pages", node=name, op="write")
        self._c_seeks = obs.counter("disk_seeks", node=name)
        self._c_errors = obs.counter("disk_errors", node=name)
        self._c_retries = obs.counter("disk_retries", node=name)
        self._c_failed = obs.counter("disk_failed_requests", node=name)
        self._c_spikes = obs.counter("disk_latency_spikes", node=name)
        self._h_service = obs.histogram("disk_service_s", node=name)

    # -- public API ----------------------------------------------------------
    def submit(
        self,
        slots: np.ndarray,
        op: str,
        priority: int = PRIO_FOREGROUND,
        pid: Optional[int] = None,
        extra_delay: float = 0.0,
    ) -> DiskRequest:
        """Queue a transfer of ``slots``; returns an awaitable request.

        ``extra_delay`` defers the waiter-visible completion trigger by
        that much *after* service finishes (the device itself frees at
        service completion).  The fault path uses it to fold the
        per-group major-fault CPU charge into the trigger instead of a
        separate timeout event; only the fast dispatcher honours it, so
        callers must pass 0 when the fast path is disabled.
        """
        req = DiskRequest(self, np.asarray(slots, dtype=np.int64), op, priority, pid)
        req._extra_delay = extra_delay
        if _fastpath.ENABLED and not self._busy and not self._queue:
            # idle disk, empty heap (an empty heap implies _live == 0):
            # the push/pop round trip the dispatcher would perform is a
            # no-op, so start service directly.  Depth accounting and
            # head/statistics updates are identical to the queued path.
            if self.max_queue_seen < 1:
                self.max_queue_seen = 1
            self._busy = True
            self._start_attempt(req, self.env.now, 0)
            return req
        req._queued = True
        self._live += 1
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (priority, seq, req))
        depth = self._live + (1 if self._busy else 0)
        if depth > self.max_queue_seen:
            self.max_queue_seen = depth
        if not self._busy:
            self._busy = True
            if _fastpath.ENABLED:
                self._dispatch_next()
            else:
                self.env.process(self._serve())
        return req

    @property
    def queue_length(self) -> int:
        """Live (non-cancelled) queued requests, excluding one in service."""
        return self._live

    @property
    def busy(self) -> bool:
        return self._busy

    def service_time(self, request: DiskRequest) -> tuple[float, int]:
        """Compute (duration, seeks) for ``request`` given head state."""
        return self.service_time_for(request.slots, request.op)

    def service_time_for(self, slots: np.ndarray, op: str) -> tuple[float, int]:
        """(duration, seeks) for a transfer of ``slots`` starting now.

        Pure function of the current head position / direction; used by
        the dispatcher, the batch-advance tier and directly
        unit-testable.  Runs once per disk request, so the run
        decomposition stays on plain Python ints — per-element numpy
        indexing here showed up in profiles.  When the compiled-kernel
        tier is on, the multi-run decomposition is delegated to the
        (numba-jitted) :func:`repro.sim.compiled.run_positioning`
        kernel, which accumulates in the identical order.
        """
        params = self.params
        coef = params.seek_distance_coef_s
        first = int(slots[0])
        last = int(slots[-1])
        if last - first == slots.size - 1:
            # single contiguous run — the dominant case for swap-cluster
            # writes and block page-ins (slots are sorted and unique, so
            # span == size-1 implies consecutive).  Computed without the
            # run-decomposition lists: one compare decides whether the
            # head streams straight into this transfer.
            pos = self._head
            if first == pos and self._last_op == op:
                seeks = 0
                positioning = 0.0
            else:
                seeks = 1
                positioning = params.positioning_s
                if coef > 0.0:
                    positioning += coef * math.sqrt(abs(first - pos))
            return (
                params.overhead_s
                + positioning
                + slots.size * params.page_transfer_s
            ), seeks

        if _compiled.COMPILED_ENABLED:
            seeks, positioning = _compiled.run_positioning(
                slots, self._head, self._last_op == op,
                params.positioning_s, coef,
            )
        else:
            slist = slots.tolist()
            starts = [first]
            ends = []
            prev = first
            for s in slist[1:]:
                if s != prev + 1:
                    ends.append(prev + 1)
                    starts.append(s)
                prev = s
            ends.append(prev + 1)

            seeks = 0
            positioning = 0.0
            positioning_s = params.positioning_s
            pos = self._head
            last_op = self._last_op
            for i, start in enumerate(starts):
                # A run is free of positioning cost if it exactly
                # continues the previous transfer (sequential
                # streaming).  A direction change (read->write or
                # write->read) always seeks on the first run: page-in
                # and page-out streams target different areas/queues.
                continues = start == pos and (i > 0 or last_op == op)
                if not continues:
                    seeks += 1
                    positioning += positioning_s
                    if coef > 0.0:
                        # math.sqrt is bitwise-identical to np.sqrt
                        positioning += coef * math.sqrt(abs(start - pos))
                pos = ends[i]

        duration = (
            params.overhead_s
            + positioning
            + slots.size * params.page_transfer_s
        )
        return duration, seeks

    # -- dispatcher --------------------------------------------------------
    def _service_one(self, req: DiskRequest):
        """Process fragment: position, transfer and complete ``req``.

        Each attempt may be hit by an injected latency spike or
        transient error; errors retry with exponential backoff until
        ``max_retries`` (or the device-wide retry budget) is exhausted,
        at which point the request fails with :class:`DiskFailure`.
        """
        start = self.env.now
        attempt = 0
        while True:
            duration, seeks = self.service_time(req)
            if self.faults is not None:
                spike = self.faults.disk_latency_factor(self.name)
                if spike > 1.0:
                    self.latency_spikes += 1
                    self._c_spikes.inc()
                    duration *= spike
            yield self.env.timeout(duration)
            self.total_busy_s += duration
            if self.faults is not None and self.faults.disk_error(self.name):
                self.error_count += 1
                self._c_errors.inc()
                budget_out = self.retry_budget_left == 0
                if attempt >= self.max_retries or budget_out:
                    self.failed_requests += 1
                    self._c_failed.inc()
                    why = ("device retry budget exhausted" if budget_out
                           else f"failed after {attempt} retries")
                    req.fail(DiskFailure(
                        f"{self.name}: {req.op} of {req.npages} pages {why}"
                    ))
                    return
                if self.retry_budget_left is not None:
                    self.retry_budget_left -= 1
                attempt += 1
                self.retry_count += 1
                self._c_retries.inc()
                yield self.env.timeout(
                    self.params.positioning_s * (2 ** attempt)
                )
                continue
            break
        # update head state
        self._head = int(req.slots[-1]) + 1
        self._last_op = req.op
        # statistics
        npages = req.npages
        self.total_requests += 1
        self.total_pages[req.op] += npages
        self.total_seeks += seeks
        if self._obs_on:
            self._c_requests.inc()
            (self._c_pages_read if req.op == "read"
             else self._c_pages_write).inc(npages)
            self._c_seeks.inc(seeks)
            self._h_service.observe(duration)
        req.service_time = duration
        req.seeks = seeks
        req.completed_at = self.env.now
        extra = req._extra_delay
        if extra > 0.0:
            # deferred trigger (see submit): the device frees now, the
            # waiter wakes `extra` later
            req._ok = True
            req._value = duration
            self.env._schedule(req, NORMAL, extra)
        else:
            req.succeed(duration)
        if self.on_complete is not None:
            self.on_complete(req, start, self.env.now)

    def _serve(self):
        while self._queue:
            _, _, req = heapq.heappop(self._queue)
            if req.cancelled:
                continue  # its _live slot was returned by cancel()
            req._queued = False
            self._live -= 1
            yield from self._service_one(req)
        self._busy = False

    # -- fast dispatcher ---------------------------------------------------
    # A callback-chained rewrite of _serve/_service_one, used when the
    # steady-state fast path is on.  Per request it schedules exactly one
    # service Timeout (whose callback performs the completion) instead of
    # spinning up a coroutine process per idle-disk submit — removing the
    # Initialize and process-termination events while computing the same
    # service times, head state, statistics and fault (RNG) draws in the
    # same order.  Simulated timing is bit-for-bit identical; only
    # events_processed drops.

    def _dispatch_next(self) -> None:
        queue = self._queue
        while queue:
            _, _, req = heapq.heappop(queue)
            if req.cancelled:
                continue  # its _live slot was returned by cancel()
            req._queued = False
            self._live -= 1
            self._start_attempt(req, self.env.now, 0)
            return
        self._busy = False

    def _start_attempt(self, req: DiskRequest, start: float,
                       attempt: int) -> None:
        duration, seeks = self.service_time(req)
        if self.faults is not None:
            spike = self.faults.disk_latency_factor(self.name)
            if spike > 1.0:
                self.latency_spikes += 1
                self._c_spikes.inc()
                duration *= spike
        # bare pre-triggered event scheduled `duration` out: what
        # Timeout() builds, minus the subclass ceremony — this runs once
        # per disk request, the single most allocated event of a
        # paging-heavy run
        ev = Event(self.env)
        ev._value = None
        self.env._schedule(ev, NORMAL, duration)
        ev.callbacks.append(
            lambda _e, req=req, start=start, attempt=attempt,
            duration=duration, seeks=seeks:
            self._finish_attempt(req, start, attempt, duration, seeks)
        )

    def _finish_attempt(self, req: DiskRequest, start: float, attempt: int,
                        duration: float, seeks: int) -> None:
        self.total_busy_s += duration
        if self.faults is not None and self.faults.disk_error(self.name):
            self.error_count += 1
            self._c_errors.inc()
            budget_out = self.retry_budget_left == 0
            if attempt >= self.max_retries or budget_out:
                self.failed_requests += 1
                self._c_failed.inc()
                why = ("device retry budget exhausted" if budget_out
                       else f"failed after {attempt} retries")
                req.fail(DiskFailure(
                    f"{self.name}: {req.op} of {req.npages} pages {why}"
                ))
                self._dispatch_next()
                return
            if self.retry_budget_left is not None:
                self.retry_budget_left -= 1
            attempt += 1
            self.retry_count += 1
            self._c_retries.inc()
            backoff = self.env.timeout(
                self.params.positioning_s * (2 ** attempt)
            )
            backoff.callbacks.append(
                lambda _e, req=req, start=start, attempt=attempt:
                self._start_attempt(req, start, attempt)
            )
            return
        # update head state
        self._head = int(req.slots[-1]) + 1
        self._last_op = req.op
        # statistics
        npages = req.npages
        self.total_requests += 1
        self.total_pages[req.op] += npages
        self.total_seeks += seeks
        if self._obs_on:
            self._c_requests.inc()
            (self._c_pages_read if req.op == "read"
             else self._c_pages_write).inc(npages)
            self._c_seeks.inc(seeks)
            self._h_service.observe(duration)
        req.service_time = duration
        req.seeks = seeks
        req.completed_at = self.env.now
        extra = req._extra_delay
        if extra > 0.0:
            # fused major-fault CPU charge: trigger fires `extra` later,
            # but the device frees (and the next request starts) now
            req._ok = True
            req._value = duration
            self.env._schedule(req, NORMAL, extra)
        else:
            req.succeed(duration)
        if self.on_complete is not None:
            self.on_complete(req, start, self.env.now)
        self._dispatch_next()

    # -- batch-advance (eager) service -------------------------------------
    # Used by the batch-advance tier (repro.sim.fastpath.BATCH_ENABLED):
    # while the VMM holds a quiescence proof for the node (idle disk, no
    # competing demand, deadline slack, no fault plan), requests are
    # serviced synchronously under a caller-maintained local clock.
    # Every head-model computation, statistic, telemetry update and
    # completion-hook timestamp matches what the dispatcher would have
    # produced at the same virtual times; the service/trigger events that
    # would have existed are tallied on ``env.events_absorbed``.

    def eager_ready(self) -> bool:
        """Whether the batch-advance tier may bypass the dispatcher.

        Requires an idle device with an empty queue (so eager service
        cannot reorder against queued work), no fault plan (injection
        points are interaction boundaries), FIFO discipline (the
        elevator disciplines queue through their own pending list), and
        the flat-seek model (the reclaim-bound arithmetic in the VMM
        assumes one ``positioning_s`` upper-bounds any seek).
        """
        return (
            not self._busy
            and not self._queue
            and self.faults is None
            and getattr(self, "discipline", "fifo") == "fifo"
            and self.params.seek_distance_coef_s == 0.0
        )

    def service_eager(
        self,
        slots: np.ndarray,
        op: str,
        t: float,
        priority: int = PRIO_FOREGROUND,
        pid: Optional[int] = None,
    ) -> _EagerRequest:
        """Service one transfer synchronously, starting at local time ``t``.

        Mirrors ``_start_attempt`` + ``_finish_attempt`` for a
        fault-free device: same service-time arithmetic against the
        current head state, same statistics, and the completion hook
        fires with the exact (start, end) window the dispatcher would
        have used.  Absorbs the service timeout and completion trigger
        (two events).
        """
        slots = np.sort(np.asarray(slots, dtype=np.int64))
        req = _EagerRequest(slots, op, priority, pid, t)
        duration, seeks = self.service_time_for(slots, op)
        if self.max_queue_seen < 1:
            self.max_queue_seen = 1
        self.total_busy_s += duration
        self._head = int(slots[-1]) + 1
        self._last_op = op
        npages = req.npages
        self.total_requests += 1
        self.total_pages[op] += npages
        self.total_seeks += seeks
        if self._obs_on:
            self._c_requests.inc()
            (self._c_pages_read if op == "read"
             else self._c_pages_write).inc(npages)
            self._c_seeks.inc(seeks)
            self._h_service.observe(duration)
        req.service_time = duration
        req.seeks = seeks
        completed = t + duration
        req.completed_at = completed
        self.env.events_absorbed += 2
        if self.on_complete is not None:
            self.on_complete(req, t, completed)
        return req

    def eager_run_times(
        self, firsts: np.ndarray, sizes: np.ndarray, op: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Head-model (durations, seeks) for back-to-back contiguous runs.

        Vectorized equivalent of calling :meth:`service_time_for` once
        per group with the head advancing in between: group ``i``
        streams free of positioning cost iff it starts exactly where
        group ``i-1`` ended (group 0 compares against the current head
        position *and* last direction).  Only valid under
        :meth:`eager_ready` (flat-seek model) and for single-run groups.
        """
        params = self.params
        pos = np.empty(firsts.size, dtype=np.int64)
        pos[0] = self._head
        if firsts.size > 1:
            np.add(firsts[:-1], sizes[:-1], out=pos[1:])
        continues = firsts == pos
        if self._last_op != op:
            continues[0] = False
        seeks = np.where(continues, 0, 1)
        positioning = np.where(continues, 0.0, params.positioning_s)
        durations = (
            (params.overhead_s + positioning)
            + sizes * params.page_transfer_s
        )
        return durations, seeks

    def eager_times_list(
        self, slots_list: list, op: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Head-model (durations, seeks) for back-to-back transfers of
        arbitrary shape.

        General-shape companion of :meth:`eager_run_times`: each entry
        of ``slots_list`` is one request's *sorted* slot array,
        serviced in order with the head advancing in between.
        Discontiguous slot sets pay the same per-run positioning walk
        as :meth:`service_time_for`.  Flat-seek model only — valid
        under :meth:`eager_ready`.
        """
        params = self.params
        n = len(slots_list)
        durations = np.empty(n)
        seeks = np.empty(n, dtype=np.int64)
        head = self._head
        last_same = self._last_op == op
        for i, slots in enumerate(slots_list):
            sk, positioning = _compiled.run_positioning(
                slots, head, last_same, params.positioning_s, 0.0
            )
            durations[i] = (
                params.overhead_s
                + positioning
                + slots.size * params.page_transfer_s
            )
            seeks[i] = sk
            head = int(slots[-1]) + 1
            last_same = True
        return durations, seeks

    def commit_eager_run(
        self,
        slots_list: list,
        sizes: np.ndarray,
        durations: np.ndarray,
        seeks: np.ndarray,
        starts: np.ndarray,
        completions: np.ndarray,
        op: str,
        priority: int = PRIO_FOREGROUND,
        pid: Optional[int] = None,
    ) -> None:
        """Apply the bookkeeping of a whole eager run in one pass.

        ``starts``/``completions`` are the per-group service windows the
        caller derived from :meth:`eager_run_times` (waiter-visible
        fused CPU charges excluded — the device frees at service
        completion, exactly as the dispatcher's deferred trigger does).
        """
        n = len(slots_list)
        if self.max_queue_seen < 1:
            self.max_queue_seen = 1
        # strict left-fold accumulation: bit-identical to n scalar adds
        self.total_busy_s = float(np.add.accumulate(
            np.concatenate(([self.total_busy_s], durations)))[-1])
        last = slots_list[-1]
        self._head = int(last[-1]) + 1
        self._last_op = op
        npages = int(sizes.sum())
        nseeks = int(seeks.sum())
        self.total_requests += n
        self.total_pages[op] += npages
        self.total_seeks += nseeks
        if self._obs_on:
            self._c_requests.inc(n)
            (self._c_pages_read if op == "read"
             else self._c_pages_write).inc(npages)
            self._c_seeks.inc(nseeks)
            self._h_service.observe_many(durations)
        self.env.events_absorbed += 2 * n
        run_hook = self.on_complete_run
        if run_hook is not None:
            # run-aware observer: one call for the whole run (the
            # per-request facts it needs, without request objects)
            run_hook(op, sizes.tolist(), starts.tolist(),
                     completions.tolist(), pid)
            return
        hook = self.on_complete
        if hook is not None:
            st = durations.tolist()
            sk = seeks.tolist()
            t0 = starts.tolist()
            t1 = completions.tolist()
            for i in range(n):
                req = _EagerRequest(slots_list[i], op, priority, pid, t0[i])
                req.service_time = st[i]
                req.seeks = sk[i]
                req.completed_at = t1[i]
                hook(req, t0[i], t1[i])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Disk({self.name}, queued={self.queue_length}, busy={self._busy}, "
            f"served={self.total_requests})"
        )


__all__ = [
    "Disk",
    "DiskParams",
    "DiskRequest",
    "ERA_DISK",
    "PRIO_BACKGROUND",
    "PRIO_FOREGROUND",
]
