"""Adaptive paging — the paper's contribution (§3).

Four mechanisms exploiting gang-schedule knowledge (which process is
incoming, which is outgoing, and the incoming working-set size):

* :mod:`repro.core.selective`  — selective page-out (§3.1, Fig. 2)
* :mod:`repro.core.aggressive` — aggressive page-out (§3.2, Fig. 3)
* :mod:`repro.core.recorder`   — adaptive page-in's page-record lists
  (§3.3, Fig. 4)
* :mod:`repro.core.background` — background writing of dirty pages (§3.4)

:class:`repro.core.api.AdaptivePaging` is the user↔kernel interface of
§3.5: ``adaptive_page_out()``, ``adaptive_page_in()``,
``start_bgwrite()`` and ``stop_bgwrite()``, bound to one node's VMM.
:class:`PagingPolicy` names the mechanism combinations the paper
evaluates (``lru``, ``ai``, ``so``, ``so/ao``, ``so/ao/bg``,
``so/ao/ai/bg``).
"""

from repro.core.aggressive import AggressivePageOut
from repro.core.api import AdaptivePaging
from repro.core.background import BackgroundWriter
from repro.core.policies import PAPER_POLICIES, PagingPolicy
from repro.core.recorder import PageRecorder, PageRun
from repro.core.selective import SelectivePageOut

__all__ = [
    "AdaptivePaging",
    "AggressivePageOut",
    "BackgroundWriter",
    "PAPER_POLICIES",
    "PageRecorder",
    "PageRun",
    "PagingPolicy",
    "SelectivePageOut",
]
