"""Aggressive page-out (§3.2, Fig. 3).

At the job switch, immediately page the outgoing process out in large
address-ordered blocks until there are enough free frames for the
incoming process's (estimated) working set.  The subsequent page-in
faults then proceed without interleaved page-out activity, and the
address-ordered block writes land in contiguous swap slots — which is
what later makes the adaptive page-in's block reads sequential.
"""

from __future__ import annotations

import numpy as np

from repro.disk.device import PRIO_FOREGROUND
from repro.mem.replacement import VictimBatch
from repro.mem.vmm import VirtualMemoryManager
from repro.obs.registry import NULL_OBS


class AggressivePageOut:
    """Implements Fig. 3's ``aggressive_try_to_free_pages``."""

    def __init__(self, vmm: VirtualMemoryManager, batch_pages: int = 256,
                 obs=NULL_OBS) -> None:
        if batch_pages <= 0:
            raise ValueError("batch_pages must be positive")
        self.vmm = vmm
        self.batch_pages = batch_pages
        self._c_batches = obs.counter("ao_batches", node=vmm.name)
        self._c_pages = obs.counter("ao_pages_evicted", node=vmm.name)

    def run(self, out_pid: int, target_free: int):
        """Process fragment: evict ``out_pid`` until ``target_free``
        frames are free (or the outgoing process is fully swapped out).

        ``target_free`` is normally the incoming working-set estimate
        plus the high watermark, so the following fault burst never
        trips reclaim.
        """
        vmm = self.vmm
        table = vmm.tables.get(out_pid)
        while vmm.frames.free < target_free:
            if table is None or table.resident_count == 0:
                return  # Fig. 3 stops at the outgoing process's pages
            victims = table.resident_pages()[: self.batch_pages]
            freed = yield from vmm.evict_batch(
                VictimBatch(out_pid, victims), PRIO_FOREGROUND
            )
            self._c_batches.inc()
            self._c_pages.inc(freed)

    def target_for(self, incoming_ws_pages: int) -> int:
        """Free-frame target for a given incoming working-set size."""
        cap = self.vmm.params.total_frames
        return min(cap, incoming_ws_pages + self.vmm.params.freepages_high)


__all__ = ["AggressivePageOut"]
