"""Selective page-out (§3.1, Fig. 2).

Victim selection that considers only the *outgoing* process's pages —
oldest first — and falls back to the default replacement policy once
the outgoing process has nothing resident left.  This prevents the
*false eviction* of the incoming process's residual working set: under
plain LRU those residual pages are the oldest in memory and would be
evicted precisely when they are about to be used again.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.mem.page_table import PageTable
from repro.mem.replacement import ReplacementPolicy, VictimBatch
from repro.obs.registry import NULL_OBS


class SelectivePageOut:
    """A ``victim_selector`` implementing Fig. 2's ``try_to_free_pages``.

    Parameters
    ----------
    fallback:
        Replacement policy used once the outgoing process is fully
        swapped out (the paper falls back to the default LRU path).

    The currently outgoing process is set via :meth:`set_outgoing` at
    each job switch; ``None`` disables selectivity (pure fallback).

    Telemetry: ``so_selective_evictions`` counts victim pages taken
    from the outgoing process, ``so_fallback_evictions`` pages the
    default policy had to supply, and ``so_false_evictions_avoided``
    selective victims chosen while some *other* process still had
    resident pages — each one a page plain LRU might have falsely
    evicted (§3.1).
    """

    def __init__(self, fallback: ReplacementPolicy, obs=NULL_OBS,
                 node: str = "") -> None:
        self.fallback = fallback
        self.out_pid: Optional[int] = None
        self._obs_on = obs.enabled
        self._c_selective = obs.counter("so_selective_evictions", node=node)
        self._c_fallback = obs.counter("so_fallback_evictions", node=node)
        self._c_avoided = obs.counter("so_false_evictions_avoided",
                                      node=node)

    def set_outgoing(self, out_pid: Optional[int]) -> None:
        """Install the outgoing process for the coming quantum."""
        self.out_pid = out_pid

    def __call__(
        self,
        tables: Mapping[int, PageTable],
        count: int,
        cluster: int,
        protect: Optional[Mapping[int, np.ndarray]] = None,
    ) -> list[VictimBatch]:
        if count <= 0:
            return []
        batches: list[VictimBatch] = []
        remaining = count
        chosen: np.ndarray | None = None
        table = tables.get(self.out_pid) if self.out_pid is not None else None
        if table is not None and table.resident_count > 0:
            # epoch-cached candidate snapshot instead of copying and
            # rescanning the full present mask on every reclaim round
            res, ages = table.index.candidates()
            if protect and table.pid in protect:
                pmask = np.zeros(table.num_pages, dtype=bool)
                pmask[np.asarray(protect[table.pid], dtype=np.int64)] = True
                keep = ~pmask[res]
                res, ages = res[keep], ages[keep]
            if res.size:
                # oldest first, as in Fig. 2 ("select oldest page of p")
                order = np.argsort(ages, kind="stable")
                victims = res[order][:remaining]
                for i in range(0, victims.size, cluster):
                    chunk = np.sort(victims[i : i + cluster])
                    batches.append(VictimBatch(table.pid, chunk))
                remaining -= victims.size
                chosen = victims
                if self._obs_on and victims.size:
                    self._c_selective.inc(int(victims.size))
                    if any(pid != table.pid and t.resident_count > 0
                           for pid, t in tables.items()):
                        self._c_avoided.inc(int(victims.size))
        if remaining > 0:
            # The fallback must not re-select pages already chosen above.
            fb_protect = dict(protect) if protect else {}
            if chosen is not None and chosen.size:
                prev = fb_protect.get(self.out_pid)
                fb_protect[self.out_pid] = (
                    np.concatenate([np.asarray(prev, dtype=np.int64), chosen])
                    if prev is not None
                    else chosen
                )
            fb = self.fallback.select_victims(
                tables, remaining, cluster, fb_protect
            )
            if self._obs_on and fb:
                self._c_fallback.inc(sum(int(b.pages.size) for b in fb))
            batches.extend(fb)
        return batches


__all__ = ["SelectivePageOut"]
