"""The adaptive-paging API of §3.5.

One :class:`AdaptivePaging` instance binds a policy combination to one
node's VMM and exposes the four entry points the paper's user-level
gang scheduler invokes through ``/dev/kmem``:

* ``adaptive_page_out(in_pid, out_pid, ws_size)``
* ``adaptive_page_in(in_pid, out_pid, ws_size)``
* ``start_bgwrite(in_pid)``
* ``stop_bgwrite()``

plus scheduling notifications (``notify_scheduled`` /
``notify_descheduled``) that stand in for the kernel observing context
switches, feeding the working-set estimator and gating the page
recorder to non-running processes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aggressive import AggressivePageOut
from repro.core.background import BackgroundWriter
from repro.core.policies import PagingPolicy
from repro.core.recorder import PageRecorder
from repro.core.selective import SelectivePageOut
from repro.faults.errors import RecordCorrupted
from repro.faults.plan import FaultPlan
from repro.mem.readahead import plan_block_reads
from repro.mem.vmm import VirtualMemoryManager
from repro.mem.working_set import WorkingSetEstimator
from repro.obs.registry import NULL_OBS


class AdaptivePaging:
    """Kernel-side adaptive paging bound to one node's VMM.

    Parameters
    ----------
    vmm:
        The node's virtual memory manager.  Hook points
        (``victim_selector``, ``on_flush``) are installed according to
        the policy flags.
    policy:
        Which mechanisms are active (a :class:`PagingPolicy` or the
        paper's string notation).
    faults:
        Optional fault plan; when set, recorded flush batches may be
        lost or corrupted, and :meth:`adaptive_page_in` degrades to
        plain demand paging on a corrupt record (``ai_fallbacks``
        counts those).
    """

    def __init__(
        self,
        vmm: VirtualMemoryManager,
        policy: PagingPolicy | str = "lru",
        ws_estimator: Optional[WorkingSetEstimator] = None,
        faults: Optional[FaultPlan] = None,
        obs=NULL_OBS,
    ) -> None:
        if isinstance(policy, str):
            policy = PagingPolicy.parse(policy)
        self.vmm = vmm
        self.policy = policy
        self.ws = ws_estimator or WorkingSetEstimator()
        self._running: set[int] = set()
        #: times adaptive page-in fell back to demand paging because its
        #: record was corrupt (the §3.3 graceful-degradation path)
        self.ai_fallbacks = 0
        self._c_ai_runs = obs.counter("ai_runs", node=vmm.name)
        self._c_ai_pages = obs.counter("ai_pages_replayed", node=vmm.name)
        self._c_ai_fallbacks = obs.counter("ai_fallbacks", node=vmm.name)
        self._c_ai_empty = obs.counter("ai_empty_records", node=vmm.name)
        self._h_ai_run = obs.histogram("ai_run_pages", node=vmm.name)

        self.selective: Optional[SelectivePageOut] = None
        self.aggressive: Optional[AggressivePageOut] = None
        self.recorder: Optional[PageRecorder] = None
        self.bgwriter: Optional[BackgroundWriter] = None

        # deadlines published by the gang scheduler for the steady-state
        # fast path: a coalesced resident run must end strictly before
        # the background writer arms and strictly before the quantum cap
        # (see repro.gang.job).  inf == never published (e.g. a policy
        # without bg); each quantum overwrites both before its job runs.
        self.bg_arm_at = float("inf")
        self.run_cap_at = float("inf")

        if policy.so:
            self.selective = SelectivePageOut(
                fallback=vmm.policy, obs=obs, node=vmm.name
            )
            vmm.victim_selector = self.selective
        if policy.ao:
            self.aggressive = AggressivePageOut(vmm, policy.ao_batch, obs=obs)
        if policy.ai:
            self.recorder = PageRecorder(
                faults=faults, owner=vmm.name, obs=obs
            )
            vmm.on_flush = self._on_flush
        if policy.bg:
            self.bgwriter = BackgroundWriter(
                vmm, policy.bg_batch, policy.bg_poll_s, obs=obs
            )

    # ------------------------------------------------------------------
    # scheduling notifications
    # ------------------------------------------------------------------
    def notify_scheduled(self, pid: int) -> None:
        """The gang scheduler resumed ``pid`` on this node."""
        self._running.add(pid)
        self.ws.begin_quantum(pid, self.vmm.env.now)

    def notify_descheduled(self, pid: int) -> None:
        """The gang scheduler stopped ``pid`` on this node."""
        self._running.discard(pid)
        table = self.vmm.tables.get(pid)
        if table is not None:
            self.ws.end_quantum(pid, table, self.vmm.env.now)

    def working_set_estimate(self, pid: int) -> int:
        """Working-set size estimate in pages (§3.2's kernel estimate)."""
        return self.ws.estimate(pid, self.vmm.tables.get(pid))

    # ------------------------------------------------------------------
    # the §3.5 API
    # ------------------------------------------------------------------
    def adaptive_page_out(self, in_pid: int, out_pid: int,
                          ws_pages: Optional[int] = None):
        """Process fragment: run the page-out side of a job switch.

        With ``so`` active, installs the outgoing process as the
        preferred victim for the whole coming quantum; with ``ao``
        active, immediately evicts the outgoing process in blocks until
        the incoming working set fits.
        """
        if in_pid == out_pid:
            return
        if self.selective is not None:
            self.selective.set_outgoing(out_pid)
        if self.aggressive is not None:
            if ws_pages is None:
                ws_pages = self.working_set_estimate(in_pid)
            target = self.aggressive.target_for(ws_pages)
            yield from self.aggressive.run(out_pid, target)

    def adaptive_page_in(self, in_pid: int, out_pid: int,
                         ws_pages: Optional[int] = None):
        """Process fragment: run the page-in side of a job switch.

        With ``ai`` active, replays the recorded flush list of the
        incoming process as induced faults, batched into large
        slot-ordered block reads.  A record that fails its checksum is
        dropped and the process simply demand-pages its working set
        back with the kernel's default 16-page read-ahead.
        """
        if self.recorder is None:
            return
        try:
            recorded = self.recorder.take(in_pid)
        except RecordCorrupted:
            self.ai_fallbacks += 1
            self._c_ai_fallbacks.inc()
            return
        if recorded.size == 0:
            self._c_ai_empty.inc()
            return
        table = self.vmm.tables.get(in_pid)
        if table is None:
            return
        # belt-and-braces against records damaged in ways the checksum
        # cannot see: never replay page numbers outside the process
        recorded = recorded[(recorded >= 0) & (recorded < table.num_pages)]
        if recorded.size == 0:
            return
        if ws_pages is None:
            ws_pages = self.working_set_estimate(in_pid)
        # Cap the prefetch at what memory can hold alongside the pages
        # the process already has resident (and at the working set if
        # we have an estimate): §3.3 aims to "make the entire working
        # set of the process available", not to thrash.
        resident = table.resident_pages()
        cap = (self.vmm.params.total_frames
               - self.vmm.params.freepages_high - resident.size)
        if ws_pages and ws_pages > 0:
            cap = min(cap, ws_pages)
        if cap <= 0:
            return
        if recorded.size > cap:
            recorded = recorded[:cap]
        groups = plan_block_reads(table, recorded, self.policy.ai_batch)
        self._c_ai_runs.inc()
        self._c_ai_pages.inc(int(recorded.size))
        self._h_ai_run.observe(float(recorded.size))
        # The induced faults must not cannibalise the incoming process's
        # own residual working set: the kernel reclaims from the
        # outgoing (still-largest) process while servicing them, so pin
        # the incoming process's pages for the duration of the replay.
        entry = (in_pid, np.concatenate([resident, recorded]))
        self.vmm._add_demand(entry)
        try:
            yield from self.vmm.swap_in_block(in_pid, groups)
        finally:
            self.vmm._remove_demand(entry)

    def start_bgwrite(self, in_pid: int) -> None:
        """Activate background dirty-page writing for ``in_pid``."""
        if self.bgwriter is not None and not self.bgwriter.active:
            self.bgwriter.start(in_pid)

    def stop_bgwrite(self) -> None:
        """Deactivate background writing (idempotent).

        ``bg_arm_at`` is deliberately left alone: the switch path calls
        this in the same timestep the scheduler publishes the coming
        quantum's arm deadline, and the pending ``_bg_timer`` fires at
        that published time regardless.  A leftover finite value from a
        previous quantum is merely conservative (it can only shorten a
        coalesced run), whereas resetting to ``inf`` here would let a
        run span the timer's wakeup and defer page-state stamps past
        the background writer's first scan.
        """
        if self.bgwriter is not None:
            self.bgwriter.stop()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _on_flush(self, pid: int, pages: np.ndarray) -> None:
        # Intra-job paging of the running process is left to the
        # original policy (§2); only flushes of stopped processes are
        # recorded for later adaptive page-in.
        if pid not in self._running:
            self.recorder.record(pid, pages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AdaptivePaging(policy={self.policy.name}, vmm={self.vmm.name})"


__all__ = ["AdaptivePaging"]
