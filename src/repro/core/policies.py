"""Policy combinations and their string notation.

The paper names combinations with slash-separated mechanism ids:
``so/ao/ai/bg`` etc. (§4).  :class:`PagingPolicy` parses and renders
that notation and carries the per-mechanism tuning knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


_MECHANISMS = ("so", "ao", "ai", "bg")


@dataclass(frozen=True)
class PagingPolicy:
    """Which adaptive mechanisms are active, plus their tunables.

    ``lru`` (all flags off) is the unmodified baseline.
    """

    #: selective page-out (§3.1)
    so: bool = False
    #: aggressive page-out at switch time (§3.2)
    ao: bool = False
    #: adaptive page-in of recorded flush lists (§3.3)
    ai: bool = False
    #: background writing of dirty pages (§3.4)
    bg: bool = False

    #: pages per aggressive page-out write burst
    ao_batch: int = 256
    #: pages per adaptive page-in read burst
    ai_batch: int = 256
    #: pages per background-writer burst
    bg_batch: int = 64
    #: fraction of the quantum during which the background writer runs
    #: (the paper finds the last 10 % works best, §3.4)
    bg_fraction: float = 0.1
    #: background writer poll interval when no dirty pages are found
    bg_poll_s: float = 1.0

    def __post_init__(self) -> None:
        if min(self.ao_batch, self.ai_batch, self.bg_batch) <= 0:
            raise ValueError("batch sizes must be positive")
        if not 0.0 <= self.bg_fraction <= 1.0:
            raise ValueError("bg_fraction must be within [0, 1]")
        if self.bg_poll_s <= 0:
            raise ValueError("bg_poll_s must be positive")

    # -- notation ----------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, **tunables) -> "PagingPolicy":
        """Parse the paper's notation: ``"lru"``, ``"so/ao/ai/bg"``, ...

        Mechanism order in the string is irrelevant; unknown ids raise.
        """
        spec = spec.strip().lower()
        if spec in ("lru", "original", "none", ""):
            return cls(**tunables)
        flags = {}
        for token in spec.split("/"):
            token = token.strip()
            if token not in _MECHANISMS:
                raise ValueError(
                    f"unknown mechanism {token!r}; expected one of "
                    f"{_MECHANISMS} or 'lru'"
                )
            if token in flags:
                raise ValueError(f"mechanism {token!r} repeated in {spec!r}")
            flags[token] = True
        return cls(**flags, **tunables)

    @property
    def name(self) -> str:
        """Canonical string form (``lru`` when nothing is enabled)."""
        on = [m for m in _MECHANISMS if getattr(self, m)]
        return "/".join(on) if on else "lru"

    @property
    def is_baseline(self) -> bool:
        return not (self.so or self.ao or self.ai or self.bg)

    def with_tunables(self, **kw) -> "PagingPolicy":
        """Copy with changed tuning knobs."""
        return replace(self, **kw)

    def __str__(self) -> str:
        return self.name


#: The six combinations evaluated in the paper's Figure 9 (the five
#: adaptive ones of §4 plus the unmodified baseline).
PAPER_POLICIES = (
    "lru",
    "ai",
    "so",
    "so/ao",
    "so/ao/bg",
    "so/ao/ai/bg",
)


__all__ = ["PAPER_POLICIES", "PagingPolicy"]
