"""Page-record lists for adaptive page-in (§3.3, Fig. 4).

As pages are flushed out at a job switch, the kernel records, per
process, the flushed addresses compressed as ``(base, offset)`` runs —
"our page recording module records just the offset as the number of
contiguous pages from a given page address, thereby saving [a]
substantial amount of kernel memory" (§3.3).  When the process is
rescheduled, the recorded list is replayed as induced faults.
The recorder keeps a per-process checksum over its stored runs, the
stand-in for the kernel validating the record before replaying it.  An
attached :class:`~repro.faults.plan.FaultPlan` may drop a flush batch
(record loss) or store a perturbed run without updating the checksum
(corruption); :meth:`PageRecorder.take` then raises
:class:`~repro.faults.errors.RecordCorrupted`, and adaptive page-in
falls back to plain demand paging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.errors import RecordCorrupted
from repro.faults.plan import FaultPlan
from repro.obs.registry import NULL_OBS


@dataclass(frozen=True)
class PageRun:
    """A maximal run of contiguous flushed pages: ``base .. base+count-1``."""

    base: int
    count: int

    def pages(self) -> np.ndarray:
        """Expand the run into its page numbers."""
        return np.arange(self.base, self.base + self.count, dtype=np.int64)


def compress_runs(pages: np.ndarray) -> list[PageRun]:
    """Compress sorted-or-not page numbers into maximal contiguous runs.

    Input order within the array is not meaningful for a single flush
    batch (the batch is written as one I/O); runs are emitted in
    ascending base order.
    """
    arr = np.unique(np.asarray(pages, dtype=np.int64))
    if arr.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(arr) != 1) + 1
    return [
        PageRun(int(run[0]), int(run.size))
        for run in np.split(arr, breaks)
    ]


class PageRecorder:
    """Per-process flush records, in flush order.

    The recorder is an ``on_flush`` observer for the VMM: every eviction
    batch of a *non-running* process is appended as compressed runs.
    ``take()`` hands the recorded pages (flush order preserved at batch
    granularity) to the adaptive page-in path and clears the record.
    """

    def __init__(self, faults: Optional[FaultPlan] = None,
                 owner: str = "recorder", obs=NULL_OBS) -> None:
        self._runs: dict[int, list[PageRun]] = {}
        # checksum over the *true* run list; stored runs that drift from
        # it (injected corruption) are detected at take()
        self._checksums: dict[int, int] = {}
        self.faults = faults
        self.owner = owner
        self.records_lost = 0
        self.records_corrupted = 0
        self._c_lost = obs.counter("ai_records_lost", node=owner)
        self._c_corrupted = obs.counter("ai_records_corrupted", node=owner)

    @staticmethod
    def _fold(acc: int, runs: list[PageRun]) -> int:
        """Order-dependent polynomial checksum over ``runs``."""
        for r in runs:
            acc = (acc * 1000003 + r.base * 31 + r.count) & 0xFFFFFFFF
        return acc

    def record(self, pid: int, pages: np.ndarray) -> None:
        """Append one flush batch for ``pid``."""
        if pages.size == 0:
            return
        runs = compress_runs(pages)
        if self.faults is not None and self.faults.record_lost(self.owner):
            # the batch never reaches the record (lost kernel update)
            self.records_lost += 1
            self._c_lost.inc()
            return
        self._checksums[pid] = self._fold(self._checksums.get(pid, 0), runs)
        if self.faults is not None and self.faults.record_corrupt(self.owner):
            # store a perturbed first run; the checksum (computed over
            # the true runs above) no longer matches
            self.records_corrupted += 1
            self._c_corrupted.inc()
            runs = [PageRun(runs[0].base ^ 1, runs[0].count)] + runs[1:]
        self._runs.setdefault(pid, []).extend(runs)

    def take(self, pid: int) -> np.ndarray:
        """Return and clear the recorded pages for ``pid`` (flush order).

        Raises
        ------
        RecordCorrupted
            If the stored runs fail their checksum.  The record is
            consumed either way, so the caller can simply fall back to
            demand paging.
        """
        runs = self._runs.pop(pid, [])
        expected = self._checksums.pop(pid, 0)
        if self._fold(0, runs) != expected:
            raise RecordCorrupted(
                f"{self.owner}: page-in record for pid {pid} failed its "
                f"checksum ({len(runs)} runs)"
            )
        if not runs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([r.pages() for r in runs])

    def peek(self, pid: int) -> list[PageRun]:
        """The current runs for ``pid`` without clearing them."""
        return list(self._runs.get(pid, []))

    def clear(self, pid: int) -> None:
        """Drop records for ``pid`` (e.g. on process exit)."""
        self._runs.pop(pid, None)
        self._checksums.pop(pid, None)

    def recorded_pages(self, pid: int) -> int:
        """Total pages currently recorded for ``pid``."""
        return sum(r.count for r in self._runs.get(pid, []))

    def record_entries(self, pid: int) -> int:
        """Number of (base, offset) records — the §3.3 kernel-memory
        footprint of the mechanism."""
        return len(self._runs.get(pid, []))


__all__ = ["PageRecorder", "PageRun", "compress_runs"]
