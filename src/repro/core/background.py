"""Background writing of dirty pages (§3.4).

While a job is running — during the last fraction of its quantum — a
low-priority writer flushes its dirty pages to swap *without evicting
them*.  At the switch those pages are clean with valid swap copies and
can be discarded without I/O, shortening the page-out burst.  Pages the
job re-dirties after being cleaned are written again; that repeated
writing is the §3.4 cost the 10 %-of-quantum tuning minimises.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.disk.device import PRIO_BACKGROUND
from repro.faults.errors import DiskFailure
from repro.mem.replacement import VictimBatch
from repro.mem.vmm import VirtualMemoryManager
from repro.obs.registry import NULL_OBS
from repro.sim.engine import Interrupt, Process


class BackgroundWriter:
    """The per-node background dirty-page writer daemon.

    Telemetry: ``bg_bursts`` / ``bg_pages_written`` mirror the burst
    attributes; ``bg_deadline_misses`` counts switches that stopped the
    writer while the job still had dirty resident pages — the writer
    missed its §3.4 deadline of cleaning everything before the quantum
    ended, so the switch path pays for the remainder.
    """

    def __init__(
        self,
        vmm: VirtualMemoryManager,
        batch_pages: int = 64,
        poll_s: float = 1.0,
        obs=NULL_OBS,
    ) -> None:
        if batch_pages <= 0:
            raise ValueError("batch_pages must be positive")
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        self.vmm = vmm
        self.batch_pages = batch_pages
        self.poll_s = poll_s
        self._proc: Optional[Process] = None
        self._pid: Optional[int] = None
        #: pages written by the writer, cumulatively (for the §3.4
        #: repeated-writing analysis)
        self.pages_written = 0
        self.bursts = 0
        #: bursts abandoned because the write failed permanently
        self.write_failures = 0
        self._obs_on = obs.enabled
        self._c_bursts = obs.counter("bg_bursts", node=vmm.name)
        self._c_pages = obs.counter("bg_pages_written", node=vmm.name)
        self._c_misses = obs.counter("bg_deadline_misses", node=vmm.name)
        self._c_failures = obs.counter("bg_write_failures", node=vmm.name)

    @property
    def active(self) -> bool:
        """True while a writer process is running."""
        return self._proc is not None and self._proc.is_alive

    @property
    def pid(self) -> Optional[int]:
        return self._pid

    def start(self, pid: int) -> None:
        """``start_bgwrite(inpid)`` of §3.5: begin flushing ``pid``'s
        dirty pages at low priority."""
        if self.active:
            raise RuntimeError("background writer already active")
        if pid not in self.vmm.tables:
            raise KeyError(f"unknown pid {pid}")
        self._pid = pid
        self._proc = self.vmm.env.process(self._run(pid))

    def stop(self) -> None:
        """``stop_bgwrite()`` of §3.5: halt the writer (idempotent).

        Called when the actual job switch begins; a burst already queued
        on the disk completes (the device is non-preemptive), but no new
        burst is started.
        """
        if self.active:
            if self._obs_on:
                table = self.vmm.tables.get(self._pid)
                if table is not None and table.index.dirty_resident_pages().size:
                    self._c_misses.inc()
            self._proc.interrupt("stop_bgwrite")
        self._proc = None
        self._pid = None

    def _run(self, pid: int):
        vmm = self.vmm
        try:
            while True:
                table = vmm.tables.get(pid)
                if table is None:
                    return  # process exited
                # epoch-cached view: between polls with no intervening
                # page-state mutation this is a dictionary lookup, not a
                # full-array rescan
                dirty = table.index.dirty_resident_pages()
                if dirty.size == 0:
                    yield vmm.env.timeout(self.poll_s)
                    continue
                # Write oldest-referenced dirty pages first: they are the
                # least likely to be re-dirtied before the switch.
                order = np.argsort(table.last_ref[dirty], kind="stable")
                burst = np.sort(dirty[order][: self.batch_pages])
                yield from vmm.evict_batch(
                    VictimBatch(pid, burst),
                    priority=PRIO_BACKGROUND,
                    keep_resident=True,
                )
                self.pages_written += burst.size
                self.bursts += 1
                self._c_bursts.inc()
                self._c_pages.inc(int(burst.size))
        except Interrupt:
            return
        except DiskFailure:
            # Background writing is an optimisation: a permanently
            # failed low-priority write just stops the writer for this
            # quantum; the switch path will write those pages instead.
            self.write_failures += 1
            self._c_failures.inc()
            return


__all__ = ["BackgroundWriter"]
