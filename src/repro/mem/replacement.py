"""Victim-selection policies for page reclaim.

Two baselines are provided:

:class:`GlobalLruPolicy`
    Evicts the globally least-recently-used resident pages, regardless
    of owner.  This is the paper's narrative baseline ("the lingering
    pages ... will be swapped out first, because they are older than
    B's pages", §3.1) and the policy under which *false eviction* of a
    rescheduled job's residual working set occurs.

:class:`LargestProcessClockPolicy`
    The Linux 2.2 flavour the paper describes in §2: pick the process
    with the largest resident set and sweep its pages with a clock hand,
    clearing reference bits and evicting unreferenced pages.

The adaptive *selective page-out* mechanism (:mod:`repro.core`) wraps
whichever baseline is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.mem.page_table import PageTable


@dataclass
class VictimBatch:
    """A group of pages from one process chosen for eviction."""

    pid: int
    pages: np.ndarray  # ascending page numbers

    @property
    def count(self) -> int:
        return int(self.pages.size)


class ReplacementPolicy:
    """Interface: produce victim batches totalling ``count`` pages."""

    #: human-readable policy name (used in reports)
    name = "abstract"

    def select_victims(
        self,
        tables: Mapping[int, PageTable],
        count: int,
        cluster: int,
        protect: Optional[Mapping[int, np.ndarray]] = None,
    ) -> list[VictimBatch]:
        """Choose up to ``count`` resident pages to evict.

        Parameters
        ----------
        tables:
            All page tables on the node, keyed by pid.
        count:
            Total pages wanted.
        cluster:
            Maximum batch size (one batch becomes one disk write).
        protect:
            Optional pid -> page-array map of pages that must not be
            selected (e.g. pages being faulted in right now).
        """
        raise NotImplementedError

    @staticmethod
    def _protected_mask(
        table: PageTable, protect: Optional[Mapping[int, np.ndarray]]
    ) -> np.ndarray:
        mask = np.zeros(table.num_pages, dtype=bool)
        if protect and table.pid in protect:
            mask[np.asarray(protect[table.pid], dtype=np.int64)] = True
        return mask

    @staticmethod
    def _drop_protected(
        table: PageTable,
        protect: Optional[Mapping[int, np.ndarray]],
        pages: np.ndarray,
        aligned: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Filter protected pages out of ``pages`` (and an aligned
        companion array), without scanning the full address space."""
        if not protect or table.pid not in protect or pages.size == 0:
            return pages, aligned
        mask = np.zeros(table.num_pages, dtype=bool)
        mask[np.asarray(protect[table.pid], dtype=np.int64)] = True
        keep = ~mask[pages]
        return pages[keep], (aligned[keep] if aligned is not None else None)

    @staticmethod
    def _batched(pid: int, pages: np.ndarray, cluster: int) -> list[VictimBatch]:
        """Split ``pages`` into cluster-sized batches (ascending order)."""
        out = []
        # row-wise sort of the full chunks in one call (identical to
        # sorting each chunk separately), tail chunk sorted on its own
        full = pages.size - pages.size % cluster
        if full:
            for row in np.sort(pages[:full].reshape(-1, cluster), axis=1):
                out.append(VictimBatch(pid, row))
        if full < pages.size:
            out.append(VictimBatch(pid, np.sort(pages[full:])))
        return out


class GlobalLruPolicy(ReplacementPolicy):
    """Evict the globally oldest pages by last-reference time."""

    name = "global-lru"

    def select_victims(self, tables, count, cluster, protect=None):
        if count <= 0:
            return []
        pids: list[np.ndarray] = []
        pages: list[np.ndarray] = []
        ages: list[np.ndarray] = []
        for pid, table in tables.items():
            # the epoch-cached candidate snapshot replaces the full
            # present-mask scan + last_ref gather of the pre-index code
            res, age = table.index.candidates()
            res, age = self._drop_protected(table, protect, res, age)
            if res.size == 0:
                continue
            pids.append(np.full(res.size, pid, dtype=np.int64))
            pages.append(res)
            ages.append(age)
        if not pages:
            return []
        if len(pages) == 1:
            all_pids, all_pages, all_ages = pids[0], pages[0], ages[0]
        else:
            all_pids = np.concatenate(pids)
            all_pages = np.concatenate(pages)
            all_ages = np.concatenate(ages)
        take = min(count, all_pages.size)
        idx = np.argpartition(all_ages, take - 1)[:take] if take < all_pages.size \
            else np.arange(all_pages.size)
        # Order victims by age (oldest first) for deterministic batching.
        idx = idx[np.argsort(all_ages[idx], kind="stable")]
        batches: list[VictimBatch] = []
        sel_pids = all_pids[idx]
        sel_pages = all_pages[idx]
        # Group consecutive same-pid victims into cluster batches so one
        # batch never mixes processes (a disk write is per process).
        # Pid-run boundaries are found vectorised; each run is then cut
        # into cluster-sized chunks from its start, which reproduces the
        # original scalar scan exactly.
        n = idx.size
        if len(pages) == 1:
            bounds = [0, n]
        else:
            change = np.flatnonzero(sel_pids[1:] != sel_pids[:-1]) + 1
            bounds = [0, *change.tolist(), n]
        for a, b in zip(bounds[:-1], bounds[1:]):
            pid = int(sel_pids[a])
            # all full cluster chunks of this run are sorted in one
            # vectorised call (a row-wise sort of the reshaped block is
            # exactly the per-chunk np.sort); only the tail chunk needs
            # its own sort
            n_run = b - a
            full = n_run - n_run % cluster
            if full:
                block = np.sort(
                    sel_pages[a:a + full].reshape(-1, cluster), axis=1
                )
                for row in block:
                    batches.append(VictimBatch(pid, row))
            if full < n_run:
                batches.append(VictimBatch(pid, np.sort(sel_pages[a + full:b])))
        return batches


class LargestProcessClockPolicy(ReplacementPolicy):
    """Linux 2.2-style: sweep the largest process with a clock hand.

    Reference bits are cleared as the hand passes; unreferenced resident
    pages are evicted.  The hand position persists across calls (stored
    on the page table), so repeated pressure cycles through the address
    space just like the kernel's ``swap_out`` loop.
    """

    name = "largest-clock"

    def select_victims(self, tables, count, cluster, protect=None):
        if count <= 0:
            return []
        batches: list[VictimBatch] = []
        remaining = count
        # Consider processes in decreasing RSS order (O(1) resident
        # counts); normally the first yields everything needed.
        order = sorted(
            tables.values(), key=lambda t: t.resident_count, reverse=True
        )
        for table in order:
            if remaining <= 0:
                break
            if table.resident_count == 0:
                continue  # nothing to sweep; skip the eligibility scan
            victims = self._sweep(table, remaining, protect)
            if victims.size:
                batches.extend(self._batched(table.pid, victims, cluster))
                remaining -= victims.size
        return batches

    def _sweep(
        self,
        table: PageTable,
        wanted: int,
        protect: Optional[Mapping[int, np.ndarray]],
    ) -> np.ndarray:
        pmask = self._protected_mask(table, protect)
        eligible = table.present & ~pmask
        if not eligible.any():
            return np.empty(0, dtype=np.int64)
        hand = table.clock_hand
        n = table.num_pages
        # Vectorised sweep: visit pages in hand order; pass 1 takes
        # eligible unreferenced pages (clearing reference bits up to
        # where the hand stops); pass 2 (bits now clear) takes the rest.
        order = np.concatenate([np.arange(hand, n), np.arange(0, hand)])
        elig_o = eligible[order]
        unref_o = elig_o & ~table.referenced[order]

        pass1_pos = np.flatnonzero(unref_o)
        take1 = pass1_pos[:wanted]
        victims = order[take1]

        if take1.size:
            stop = int(take1[-1])  # index in sweep order of last victim
        else:
            stop = -1

        if victims.size < wanted:
            # Full first revolution happened: every reference bit swept.
            table.referenced[order[elig_o]] = False
            remaining_pos = np.flatnonzero(elig_o & ~unref_o)
            take2 = remaining_pos[: wanted - victims.size]
            victims = np.concatenate([victims, order[take2]])
            stop = int(take2[-1]) if take2.size else n - 1
        else:
            # Clear reference bits of the swept eligible prefix only.
            prefix = order[: stop + 1]
            swept = prefix[eligible[prefix]]
            table.referenced[swept] = False

        table.clock_hand = int(order[(stop + 1) % n])
        return np.sort(victims.astype(np.int64))


class PageAgingPolicy(ReplacementPolicy):
    """Linux 2.2-style page aging (cf. the paper's ref. [17]).

    Every page carries an *age* counter: referenced pages gain age (up
    to a cap) as the sweep passes them, unreferenced pages halve it; a
    page becomes evictable when its age reaches zero.  Processes are
    visited in decreasing-RSS order like the 2.2 ``swap_out`` loop.

    This is the aging scheme Jiang & Zhang credit for 2.2's "relatively
    more effective protection against thrashing" — pages need several
    unreferenced sweeps before they are evicted, so a burst of pressure
    does not instantly strip a briefly-idle working set.
    """

    name = "page-aging"

    #: age gained when the sweep finds the referenced bit set
    AGE_GAIN = 3
    #: age ceiling
    AGE_MAX = 20
    #: age assigned to never-swept resident pages at first encounter
    AGE_START = 3
    #: bound on halving passes per selection call
    MAX_PASSES = 8

    def __init__(self) -> None:
        self._ages: dict[int, np.ndarray] = {}

    def _age_array(self, table: PageTable) -> np.ndarray:
        arr = self._ages.get(table.pid)
        if arr is None or arr.size != table.num_pages:
            arr = np.full(table.num_pages, self.AGE_START, dtype=np.int16)
            self._ages[table.pid] = arr
        return arr

    def _reap_exited(self, tables) -> None:
        """Drop age arrays of pids that no longer have a page table.

        Without this, a long job stream grows ``_ages`` by one array per
        process that ever ran — an unbounded leak over open-system runs.
        """
        if len(self._ages) <= len(tables):
            return
        for pid in [p for p in self._ages if p not in tables]:
            del self._ages[pid]

    def select_victims(self, tables, count, cluster, protect=None):
        if count <= 0:
            return []
        self._reap_exited(tables)
        batches: list[VictimBatch] = []
        remaining = count
        order = sorted(
            tables.values(), key=lambda t: t.resident_count, reverse=True
        )
        for table in order:
            if remaining <= 0:
                break
            if table.resident_count == 0:
                continue
            victims = self._sweep(table, remaining, protect)
            if victims.size:
                batches.extend(self._batched(table.pid, victims, cluster))
                remaining -= victims.size
        return batches

    def _sweep(self, table, wanted, protect):
        ages = self._age_array(table)
        pmask = self._protected_mask(table, protect)
        eligible = table.present & ~pmask
        if not eligible.any():
            return np.empty(0, dtype=np.int64)
        collected: list[np.ndarray] = []
        total = 0
        for _ in range(self.MAX_PASSES):
            # referenced pages gain age and lose the bit; idle pages decay
            ref = eligible & table.referenced
            idle = eligible & ~table.referenced
            ages[ref] = np.minimum(ages[ref] + self.AGE_GAIN, self.AGE_MAX)
            table.referenced[ref] = False
            ages[idle] >>= 1
            zero = np.flatnonzero(idle & (ages == 0))
            if zero.size:
                take = zero[: wanted - total]
                collected.append(take)
                eligible[take] = False
                total += take.size
            if total >= wanted:
                break
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(collected))


__all__ = [
    "GlobalLruPolicy",
    "LargestProcessClockPolicy",
    "PageAgingPolicy",
    "ReplacementPolicy",
    "VictimBatch",
]
