"""Virtual-memory substrate.

A model of the Linux 2.2-era VM structures the paper's mechanisms hook
into (paper §2):

* demand paging with zero-fill first touch,
* a physical **frame pool** with ``freepages.min`` / ``freepages.high``
  watermarks driving reclaim,
* per-process **page tables** with present/referenced/dirty bits and a
  last-reference timestamp (vectorised numpy state),
* **victim-selection policies**: a global LRU approximation (the paper's
  narrative baseline) and the Linux 2.2 largest-process clock sweep,
* swap-in **read-ahead** of consecutive swap slots (default 16 pages),
* a **working-set estimator** based on the previous quantum's references,
* the :class:`VirtualMemoryManager` that services faults against the
  disk substrate and exposes the hook points the adaptive mechanisms
  (:mod:`repro.core`) override.
"""

from repro.mem.frames import FramePool, OutOfFramesError
from repro.mem.index import PageIndex, index_enabled, set_index_enabled
from repro.mem.page_table import PageTable
from repro.mem.params import MemoryParams
from repro.mem.replacement import (
    GlobalLruPolicy,
    LargestProcessClockPolicy,
    PageAgingPolicy,
    ReplacementPolicy,
    VictimBatch,
)
from repro.mem.vmm import FaultStats, VirtualMemoryManager
from repro.mem.working_set import WorkingSetEstimator

__all__ = [
    "FaultStats",
    "FramePool",
    "GlobalLruPolicy",
    "LargestProcessClockPolicy",
    "MemoryParams",
    "OutOfFramesError",
    "PageAgingPolicy",
    "PageIndex",
    "PageTable",
    "ReplacementPolicy",
    "VictimBatch",
    "VirtualMemoryManager",
    "WorkingSetEstimator",
    "index_enabled",
    "set_index_enabled",
]
