"""Incremental page-state index: epoch-cached views of a page table.

Reclaim, background writing and the adaptive mechanisms repeatedly ask
the same questions of a :class:`~repro.mem.page_table.PageTable` —
"which pages are resident?", "which resident pages are dirty?", "what
are the LRU eviction candidates?" — and until PR 4 every ask was a
full-array scan (``np.flatnonzero`` over ``num_pages`` booleans plus a
gather).  The :class:`PageIndex` memoises those views and invalidates
them with a *mutation epoch*: every state-changing page-table method
bumps ``PageTable.epoch``, and a view is recomputed only when the
epoch moved since it was cached.

Invalidation rules
------------------
The epoch covers the arrays the views read: ``present``, ``dirty``,
``swap_slot`` and ``last_ref``.  It deliberately does **not** cover
``referenced``/``clock_hand`` — the clock and aging policies clear
reference bits on every sweep, and no cached view depends on them, so
bumping there would only destroy cache hits.

Bit-for-bit identity
--------------------
Every view returns exactly what the equivalent fresh scan would return
(``np.flatnonzero`` output is ascending, gathers are aligned), so an
indexed run is indistinguishable from a scan-based run in simulation
results.  :func:`set_index_enabled` (``False``) switches every view to
scan-on-every-call — the pre-index behaviour — which is how the
identity tests and ``benchmarks/perf_harness.py`` compare the two
modes on the same code.

Cached arrays are owned by the index: callers must treat them as
read-only (every in-tree consumer copies before mutating, via fancy
indexing, ``np.sort`` or ``np.concatenate``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mem.page_table import PageTable

#: process-wide switch: ``False`` disables all caching (scan mode)
INDEX_ENABLED = True


def set_index_enabled(enabled: bool) -> None:
    """Turn epoch caching on/off process-wide (for benchmarks/tests)."""
    global INDEX_ENABLED
    INDEX_ENABLED = bool(enabled)


def index_enabled() -> bool:
    """Whether epoch caching is active."""
    return INDEX_ENABLED


class PageIndex:
    """Lazily cached views of one page table, invalidated by epoch."""

    __slots__ = (
        "table",
        "_epoch",
        "_resident",
        "_dirty_resident",
        "_clean_resident",
        "_candidates",
        "_touched",
    )

    def __init__(self, table: "PageTable") -> None:
        self.table = table
        self._epoch = -1
        self._resident: Optional[np.ndarray] = None
        self._dirty_resident: Optional[np.ndarray] = None
        self._clean_resident: Optional[np.ndarray] = None
        self._candidates: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._touched: Optional[np.ndarray] = None

    # -- cache control -----------------------------------------------------
    def _sync(self) -> bool:
        """Drop stale caches; returns True when caching is permitted."""
        if not INDEX_ENABLED:
            return False
        epoch = self.table.epoch
        if epoch != self._epoch:
            self._epoch = epoch
            self._resident = None
            self._dirty_resident = None
            self._clean_resident = None
            self._candidates = None
            self._touched = None
        return True

    def invalidate(self) -> None:
        """Force recomputation of every view (used by tests)."""
        self._epoch = -1

    # -- views -------------------------------------------------------------
    def resident_pages(self) -> np.ndarray:
        """Page numbers currently resident, ascending."""
        t = self.table
        if not self._sync():
            return np.flatnonzero(t.present)
        res = self._resident
        if res is None:
            res = self._resident = np.flatnonzero(t.present)
        return res

    def dirty_resident_pages(self) -> np.ndarray:
        """Resident pages whose swap copy is missing or stale."""
        t = self.table
        if not self._sync():
            return np.flatnonzero(t.present & (t.dirty | (t.swap_slot < 0)))
        out = self._dirty_resident
        if out is None:
            out = self._dirty_resident = np.flatnonzero(
                t.present & (t.dirty | (t.swap_slot < 0))
            )
        return out

    def clean_resident_pages(self) -> np.ndarray:
        """Resident pages discardable without I/O (valid swap copy)."""
        t = self.table
        if not self._sync():
            return np.flatnonzero(t.present & ~t.dirty & (t.swap_slot >= 0))
        out = self._clean_resident
        if out is None:
            out = self._clean_resident = np.flatnonzero(
                t.present & ~t.dirty & (t.swap_slot >= 0)
            )
        return out

    def candidates(self) -> tuple[np.ndarray, np.ndarray]:
        """Eviction-candidate snapshot: ``(resident pages, last_ref)``.

        The second array is aligned with the first (``last_ref`` gathered
        at the resident pages) — exactly what LRU-style victim selection
        consumes.  Both arrays are cached together so they always agree.
        """
        if not self._sync():
            res = np.flatnonzero(self.table.present)
            return res, self.table.last_ref[res]
        cand = self._candidates
        if cand is None:
            res = self.resident_pages()
            cand = self._candidates = (res, self.table.last_ref[res])
        return cand

    def touched_pages(self) -> np.ndarray:
        """Pages the process has ever referenced."""
        t = self.table
        if not self._sync():
            return np.flatnonzero(t.last_ref > -np.inf)
        out = self._touched
        if out is None:
            out = self._touched = np.flatnonzero(t.last_ref > -np.inf)
        return out

    def touched_count(self) -> int:
        """Number of pages ever referenced (cached with the view)."""
        return int(self.touched_pages().size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageIndex(pid={self.table.pid}, epoch={self._epoch}, "
            f"cached={self._resident is not None})"
        )


__all__ = ["PageIndex", "index_enabled", "set_index_enabled"]
