"""Tunable parameters of the virtual-memory model."""

from __future__ import annotations

from dataclasses import dataclass


#: bytes per page throughout the library (Linux default, paper §3.3)
PAGE_BYTES = 4096


def mb_to_pages(mb: float) -> int:
    """Convert megabytes to a whole number of 4 KiB pages."""
    return int(round(mb * 1024 * 1024 / PAGE_BYTES))


def pages_to_mb(pages: int) -> float:
    """Convert a page count to megabytes."""
    return pages * PAGE_BYTES / (1024 * 1024)


@dataclass(frozen=True)
class MemoryParams:
    """Configuration of one node's memory subsystem.

    The watermark mechanism follows the paper's description of Linux 2.2
    (§2): reclaim starts when free frames drop below ``freepages.min``
    and continues until ``freepages.high``.
    """

    #: physical memory available for paging, in 4 KiB pages.  The paper
    #: reduces a 1 GB machine to 350 MB of usable memory with mlock();
    #: experiments here set this directly.
    total_frames: int
    #: reclaim trigger watermark (pages); default 2 % of memory
    freepages_min: int = -1
    #: reclaim target watermark (pages); default 4 % of memory
    freepages_high: int = -1
    #: pages written per reclaim batch (Linux swap cluster)
    swap_cluster: int = 32
    #: swap-in read-ahead window in pages (Linux 2.2 default, paper §3.3)
    readahead_pages: int = 16
    #: swap area size in pages; default 4x physical memory
    swap_slots: int = -1
    #: CPU cost of a minor (zero-fill) fault, seconds/page
    minor_fault_s: float = 2e-6
    #: CPU overhead of a major fault beyond the disk time, seconds/page
    major_fault_cpu_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.total_frames <= 0:
            raise ValueError("total_frames must be positive")
        object.__setattr__(
            self,
            "freepages_min",
            self.freepages_min if self.freepages_min >= 0
            else max(1, self.total_frames // 50),
        )
        object.__setattr__(
            self,
            "freepages_high",
            self.freepages_high if self.freepages_high >= 0
            else max(2, self.total_frames // 25),
        )
        object.__setattr__(
            self,
            "swap_slots",
            self.swap_slots if self.swap_slots > 0 else self.total_frames * 4,
        )
        if not (0 <= self.freepages_min <= self.freepages_high <= self.total_frames):
            raise ValueError(
                "need 0 <= freepages_min <= freepages_high <= total_frames"
            )
        if self.swap_cluster <= 0 or self.readahead_pages <= 0:
            raise ValueError("swap_cluster and readahead_pages must be positive")

    @classmethod
    def from_mb(cls, memory_mb: float, **kw) -> "MemoryParams":
        """Build params for a node with ``memory_mb`` of pageable RAM."""
        return cls(total_frames=mb_to_pages(memory_mb), **kw)


__all__ = ["MemoryParams", "PAGE_BYTES", "mb_to_pages", "pages_to_mb"]
