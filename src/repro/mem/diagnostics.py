"""ASCII diagnostics of memory and swap state.

Renders per-process residency maps (which parts of an address space are
in memory, on swap, dirty, or untouched) and a node-level summary —
useful when studying why a policy evicted what it did.

Glyphs: ``█`` resident dirty, ``▓`` resident clean, ``s`` swapped out,
``·`` never touched.
"""

from __future__ import annotations

import numpy as np

from repro.mem.page_table import PageTable
from repro.mem.vmm import VirtualMemoryManager
from repro.metrics.report import format_table

#: state codes in display precedence order
_GLYPHS = {0: "·", 1: "s", 2: "▓", 3: "█"}


def residency_codes(table: PageTable) -> np.ndarray:
    """Per-page state code: 0 untouched, 1 swapped, 2 clean, 3 dirty."""
    codes = np.zeros(table.num_pages, dtype=np.int8)
    swapped = ~table.present & (table.swap_slot >= 0)
    codes[swapped] = 1
    codes[table.present] = 2
    codes[table.present & table.dirty] = 3
    return codes


def render_residency(table: PageTable, width: int = 64) -> str:
    """One line: the address space squeezed into ``width`` cells.

    Each cell shows the *most interesting* state within its page bucket
    (dirty > clean > swapped > untouched).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    codes = residency_codes(table)
    edges = np.linspace(0, codes.size, width + 1).astype(int)
    cells = []
    for a, b in zip(edges, edges[1:]):
        cells.append(_GLYPHS[int(codes[a:b].max(initial=0))])
    return f"pid {table.pid:<4}|" + "".join(cells) + "|"


def render_node(vmm: VirtualMemoryManager, width: int = 64) -> str:
    """Residency maps for every process plus frame/swap accounting."""
    lines = [
        f"node {vmm.name}: frames {vmm.frames.used}/{vmm.frames.total} used, "
        f"swap {vmm.swap.used_slots}/{vmm.swap.num_slots} slots, "
        f"fragmentation {vmm.swap.fragmentation():.2f}",
        "legend: █ dirty  ▓ clean  s swapped  · untouched",
    ]
    rows = []
    for pid in sorted(vmm.tables):
        table = vmm.tables[pid]
        lines.append(render_residency(table, width))
        codes = residency_codes(table)
        rows.append(
            (
                pid,
                table.num_pages,
                int((codes >= 2).sum()),
                int((codes == 3).sum()),
                int((codes == 1).sum()),
                int((codes == 0).sum()),
            )
        )
    lines.append("")
    lines.append(
        format_table(
            ("pid", "pages", "resident", "dirty", "swapped", "untouched"),
            rows,
        )
    )
    return "\n".join(lines)


__all__ = ["render_node", "render_residency", "residency_codes"]
