"""The per-node virtual memory manager.

Ties the frame pool, page tables, replacement policy, swap allocator
and disk together, and exposes the three hook points the adaptive
mechanisms of :mod:`repro.core` use:

``victim_selector``
    Replaces baseline victim selection during a job switch (selective
    page-out, §3.1).
``on_flush``
    Observes every page-out, in flush order (the adaptive page-in
    recorder, §3.3).
``evict_batch`` / ``reclaim``
    Called directly by aggressive page-out (§3.2) and the background
    writer (§3.4) to force page-outs outside the fault path.

All methods that perform disk I/O are generator *process fragments* to
be driven with ``yield from`` inside a simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.disk.device import Disk, PRIO_FOREGROUND
from repro.disk.swap import SwapAllocator
from repro.mem.frames import FramePool, OutOfFramesError
from repro.mem.page_table import PageTable
from repro.mem.params import MemoryParams
from repro.mem.readahead import (
    MonotonePlan,
    dedupe_preserve_order,
    plan_swapins_fused,
)
from repro.mem.replacement import (
    GlobalLruPolicy,
    ReplacementPolicy,
    VictimBatch,
)
from repro.obs.registry import NULL_OBS
from repro.sim import fastpath as _fastpath
from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass
class FaultStats:
    """Cumulative paging statistics for one node."""

    minor_faults: int = 0          # zero-fill pages
    major_faults: int = 0          # fault events serviced from swap
    pages_swapped_in: int = 0      # pages read (incl. read-ahead)
    pages_swapped_out: int = 0     # pages written
    pages_discarded: int = 0       # clean evictions (no I/O)
    evictions: int = 0             # pages removed from memory (total)
    refaults: int = 0              # pages swapped in soon after eviction
    reclaim_episodes: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.__dict__)


class VirtualMemoryManager:
    """Demand-paged virtual memory for one node.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Memory configuration (frames, watermarks, read-ahead, ...).
    disk:
        The node's paging device.
    policy:
        Baseline replacement policy (default: global LRU approximation).
    refault_window_s:
        A page swapped back in within this many seconds of its eviction
        counts as a *refault* — the observable symptom of the paper's
        §3.1 false eviction.
    """

    def __init__(
        self,
        env: Environment,
        params: MemoryParams,
        disk: Disk,
        policy: Optional[ReplacementPolicy] = None,
        refault_window_s: float = 300.0,
        name: str = "vmm0",
        obs=NULL_OBS,
    ) -> None:
        self.env = env
        self.params = params
        self.disk = disk
        self.name = name
        self.policy = policy or GlobalLruPolicy()
        self.refault_window_s = refault_window_s
        self.frames = FramePool(
            params.total_frames, params.freepages_min, params.freepages_high
        )
        self.swap = SwapAllocator(params.swap_slots)
        self.tables: dict[int, PageTable] = {}
        self.stats = FaultStats()
        # eviction timestamps per pid for refault detection
        self._evicted_at: dict[int, np.ndarray] = {}
        # demand sets of in-flight fault services; pages here must never
        # be selected as victims (several touches can be in flight when
        # a stopped process is still finishing kernel-side fault work)
        self._active_demands: list[tuple[int, np.ndarray]] = []
        # entries purged by unregister_process while their fault service
        # was still in flight (identity set: _remove_demand must not
        # raise when the generator finally unwinds)
        self._purged_demands: set[int] = set()
        # pids that have ever had a page evicted — before the first
        # eviction the refault gather can be skipped entirely
        self._ever_evicted: set[int] = set()
        # per-pid refcount of in-flight demand membership, mirroring
        # _active_demands: counts[page] > 0 == page is in some demand
        # set.  evict_batch consults this instead of rebuilding the
        # merged map and running set-membership per batch (hot path).
        self._demand_counts: dict[int, np.ndarray] = {}
        # serialises evictions (the kernel's reclaim path holds a lock);
        # victims are re-validated after the wait
        self._evict_lock = Resource(env, capacity=1)
        # whether the most recent reclaim round found any candidates
        # (distinguishes "nothing evictable" from "victims went stale")
        self._reclaim_saw_candidates = False
        #: deadline publisher for the batch-advance tier — the node's
        #: AdaptivePaging, wired by the schedulers' start() (and only
        #: there: a bare VMM driven by unit tests keeps the scalar
        #: path, whose interleavings those tests rely on).  The tier
        #: may only commit events strictly before
        #: min(bg_arm_at, run_cap_at): at either deadline another
        #: actor (background writer, gang switch) wakes and may
        #: observe page state.
        self.deadlines = None

        # telemetry (no-ops against the default NULL_OBS registry);
        # _obs_on gates the few sites that would otherwise do real work
        # (env.now reads, span emission) when telemetry is off
        self._obs = obs
        self._obs_on = obs.enabled
        self._c_minor = obs.counter("vmm_minor_faults", node=name)
        self._c_major = obs.counter("vmm_major_faults", node=name)
        self._c_pages_in = obs.counter("vmm_pages_swapped_in", node=name)
        self._c_pages_out = obs.counter("vmm_pages_swapped_out", node=name)
        self._c_discarded = obs.counter("vmm_pages_discarded", node=name)
        self._c_evictions = obs.counter("vmm_evictions", node=name)
        self._c_refaults = obs.counter("vmm_refaults", node=name)

        # -- adaptive-mechanism hook points --------------------------------
        #: when set, replaces baseline victim selection; same signature
        #: as ReplacementPolicy.select_victims
        self.victim_selector: Optional[
            Callable[[Mapping[int, PageTable], int, int,
                      Optional[Mapping[int, np.ndarray]]], list[VictimBatch]]
        ] = None
        #: observer called as on_flush(pid, pages) for every page-out,
        #: in flush order
        self.on_flush: Optional[Callable[[int, np.ndarray], None]] = None

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def register_process(self, pid: int, num_pages: int) -> PageTable:
        """Create the page table for a new process."""
        if pid in self.tables:
            raise ValueError(f"pid {pid} already registered")
        table = PageTable(pid, num_pages)
        self.tables[pid] = table
        self._evicted_at[pid] = np.full(num_pages, -np.inf)
        self._demand_counts[pid] = np.zeros(num_pages, dtype=np.int32)
        return table

    def unregister_process(self, pid: int) -> None:
        """Tear down an exited process, releasing frames and swap.

        Any in-flight demand entries of the pid are purged so
        :meth:`_active_protect` never hands a dead pid's page array to a
        victim selector (page numbers of a dead table could even exceed
        a successor process's address space).
        """
        table = self.tables.pop(pid)
        self._evicted_at.pop(pid)
        self._demand_counts.pop(pid)
        self._ever_evicted.discard(pid)
        stale = [e for e in self._active_demands if e[0] == pid]
        if stale:
            self._active_demands = [
                e for e in self._active_demands if e[0] != pid
            ]
            self._purged_demands.update(id(e) for e in stale)
        self.frames.release(table.resident_count)
        slots = table.swap_slot[table.swap_slot >= 0]
        if slots.size:
            self.swap.free(slots)

    def resident_pages_total(self) -> int:
        """Total resident pages across every registered process."""
        return sum(t.resident_count for t in self.tables.values())

    # ------------------------------------------------------------------
    # the steady-state fast path (see repro.sim.fastpath)
    # ------------------------------------------------------------------
    def resident_all(self, pid: int, pages: np.ndarray) -> bool:
        """One vectorised probe: is the whole chunk already resident?"""
        return bool(self.tables[pid].present[pages].all())

    def touch_fast(self, pid: int, pages: np.ndarray,
                   dirty: bool | np.ndarray = False) -> bool:
        """Service a fully-resident chunk without the generator fault path.

        Returns ``True`` when every page of ``pages`` (already deduped by
        :func:`~repro.workloads.base.expand_phase`) is resident: the
        chunk is then referenced via :meth:`PageTable.record_access` and
        no demand entry, swap-in plan, or simulation event is created.
        This is invisible to the rest of the simulation because the
        legacy :meth:`touch` performs *zero yields* for a fully-resident
        chunk — same page-state writes, same timestamps, no time passes
        either way.  Returns ``False`` (having touched nothing) when any
        page is absent; the caller must then fall back to :meth:`touch`.
        """
        table = self.tables[pid]
        if pages.size > self.params.total_frames - self.params.freepages_high:
            raise ValueError(
                f"phase demands {pages.size} pages; node has only "
                f"{self.params.total_frames} frames (chunk the phase)"
            )
        if not table.present[pages].all():
            return False
        table.record_access(pages, self.env.now, dirty)
        return True

    def fastpath_quiescent(self) -> bool:
        """True when no fault service or eviction is in flight.

        The resident-run batching in :mod:`repro.gang.job` defers
        page-reference stamping to the end of a coalesced CPU burst;
        that is only sound while nothing else can read or mutate page
        state mid-run.  In-flight demand sets and a held (or contended)
        eviction lock are exactly the situations where a concurrent
        process fragment is awake between our events.
        """
        lock = self._evict_lock
        return (not self._active_demands
                and lock.in_use == 0
                and lock.queue_length == 0)

    # ------------------------------------------------------------------
    # the demand-paging fault path
    # ------------------------------------------------------------------
    def touch(self, pid: int, pages: np.ndarray,
              dirty: bool | np.ndarray = False):
        """Process fragment: make ``pages`` resident and reference them.

        ``pages`` is in touch order; ``dirty`` is a scalar or per-page
        mask.  Yields on disk I/O for page-ins and any reclaim writes.
        The demand set is protected from eviction while being serviced,
        so a single call must not demand more pages than physical memory
        minus the high watermark (workload phases are chunked to ensure
        this).
        """
        table = self.tables[pid]
        pages = dedupe_preserve_order(pages)
        if pages.size > self.params.total_frames - self.params.freepages_high:
            raise ValueError(
                f"phase demands {pages.size} pages; node has only "
                f"{self.params.total_frames} frames (chunk the phase)"
            )
        entry = (pid, pages)
        self._add_demand(entry)
        # telemetry: a touch that swaps pages in from disk is a
        # demand-fill burst (the post-switch working-set refill when
        # adaptive page-in is off or its record was incomplete)
        t0 = self.env.now if self._obs_on else 0.0
        filled = 0
        try:
            # Loop: a page resident when first checked can be evicted by
            # an in-flight write that had already selected it; re-check
            # until the whole demand set is resident.
            while True:
                absent = pages[~table.present[pages]]
                if absent.size == 0:
                    break
                plan = plan_swapins_fused(
                    table, absent, self.params.readahead_pages
                )
                done = 0
                if self._eager_entry_ok():
                    if type(plan) is MonotonePlan:
                        # array plan: the eager driver consumes it
                        # without materialising groups and returns the
                        # uncommitted tail for the scalar loop below
                        groups, t_end, efilled, exc = \
                            self._advance_eager_plan(table, pid, plan)
                    else:
                        groups = plan
                        done, t_end, efilled, exc = self._advance_eager(
                            table, pid, groups
                        )
                    if self._obs_on:
                        filled += efilled
                    if t_end > self.env.now:
                        # the resync wakeup stands in for the last
                        # absorbed completion trigger (the scalar path
                        # would have woken us at exactly this instant)
                        self.env.events_absorbed -= 1
                        yield self.env.timeout_at(t_end)
                    if exc is not None:
                        raise exc
                else:
                    groups = plan.materialize() \
                        if type(plan) is MonotonePlan else plan
                for group in groups[done:]:
                    # a group page may have been brought in meanwhile;
                    # when none was (the overwhelmingly common case) the
                    # planned arrays are used as-is, skipping the mask
                    # inversion and two fancy-index copies
                    gpages = group.pages
                    pres = table.present[gpages]
                    if pres.any():
                        mask = ~pres
                        gpages = gpages[mask]
                        if gpages.size == 0:
                            continue
                        gslots = group.slots[mask] \
                            if group.slots is not None else None
                    else:
                        gslots = group.slots
                    # inline guard: _ensure_frames returns without
                    # yielding when the watermark already holds, so
                    # replicating its first check here skips a generator
                    # per group with no behavioural difference
                    if (self.frames.free < gpages.size
                            or self.frames.below_min(gpages.size)):
                        yield from self._ensure_frames(gpages.size)
                    self.frames.allocate(gpages.size)
                    if gslots is None:
                        self.stats.minor_faults += gpages.size
                        self._c_minor.inc(gpages.size)
                        delay = gpages.size * self.params.minor_fault_s
                        if delay > 0:
                            yield self.env.timeout(delay)
                    else:
                        cpu = gpages.size * self.params.major_fault_cpu_s
                        # fast path: fold the post-read CPU charge into
                        # the request's completion trigger (the device
                        # still frees at service completion Tc; our
                        # wakeup just moves from Tc -> Tc + cpu, saving
                        # one Timeout event per read group)
                        fused = _fastpath.ENABLED and cpu > 0
                        req = self.disk.submit(
                            gslots, "read", PRIO_FOREGROUND, pid=pid,
                            extra_delay=cpu if fused else 0.0,
                        )
                        try:
                            yield req
                        except Exception:
                            # failed page-in (e.g. disk retry budget
                            # exhausted): return the frames before the
                            # fault propagates to the process
                            self.frames.release(gpages.size)
                            raise
                        self.stats.major_faults += 1
                        self.stats.pages_swapped_in += gpages.size
                        self._c_major.inc()
                        self._c_pages_in.inc(gpages.size)
                        if self._obs_on:
                            filled += gpages.size
                        # refault detection is keyed on the *service
                        # completion* time, which in fused mode is cpu
                        # earlier than env.now
                        self._count_refaults(pid, gpages,
                                             now=req.completed_at)
                        if cpu > 0 and not fused:
                            yield self.env.timeout(cpu)
                    table.make_resident(gpages)
                    # the fault itself is a reference (protects freshly
                    # faulted pages from instant LRU re-eviction)
                    table.set_last_ref(gpages, self.env.now)
        finally:
            self._remove_demand(entry)
        if filled:
            self._obs.span("demand_fill", self.name, t0, self.env.now,
                           pid=pid, pages=filled)
        table.record_access(pages, self.env.now, dirty)

    # ------------------------------------------------------------------
    # the batch-advance tier (see repro.sim.fastpath)
    # ------------------------------------------------------------------
    def _eager_entry_ok(self) -> bool:
        """Whether a demand fill may be advanced eagerly.

        The batch-advance tier replays a fill's event sequence
        synchronously under a local clock, so it is sound only while a
        *closed-system* proof holds: nothing else may observe or mutate
        this node's state until the fill's last committed event time.
        The conjuncts below are exactly that proof:

        * ``deadlines`` wired — a scheduler owns this node and
          publishes when the next external actor (gang switch,
          background-writer arm) can wake; bare VMMs stay scalar;
        * our own demand is the *only* one in flight (a stopped rank
          mid-fault, or a concurrent block swap-in, interleaves);
        * the eviction lock is free and uncontended;
        * the disk is idle with FIFO discipline and no fault plan
          (injection points are interaction boundaries);
        * the background writer is not actively cleaning.
        """
        if not (_fastpath.BATCH_ENABLED and _fastpath.ENABLED):
            return False
        dl = self.deadlines
        if dl is None:
            return False
        lock = self._evict_lock
        if (len(self._active_demands) != 1
                or lock.in_use != 0
                or lock.queue_length != 0
                or not self.disk.eager_ready()):
            return False
        bg = dl.bgwriter
        return bg is None or not bg.active

    def _advance_eager(self, table, pid: int, groups):
        """Apply a prefix of ``groups`` synchronously with a local clock.

        Replays, op for op, what the scalar loop in :meth:`touch` would
        have committed — same service times, statistics, telemetry and
        hook timestamps — without dispatching any events; the events it
        stands in for are tallied on ``env.events_absorbed``.  Stops at
        the first group whose service cannot provably finish strictly
        before the published deadline (the caller's scalar loop resumes
        there after one resync timeout).

        Returns ``(done, t_end, filled, exc)``: groups committed, the
        local clock, pages read (for the demand-fill span) and a
        pending :class:`OutOfFramesError` to re-raise *after* the
        resync (the scalar path raises it at exactly that instant).
        """
        env = self.env
        params = self.params
        frames = self.frames
        disk = self.disk
        dl = self.deadlines
        deadline = dl.bg_arm_at if dl.bg_arm_at < dl.run_cap_at \
            else dl.run_cap_at
        t = env.now
        done = 0
        filled = 0
        if not t < deadline:
            return 0, t, 0, None
        n = len(groups)
        while done < n:
            group = groups[done]
            gpages = group.pages
            gslots = group.slots
            # the scalar loop's per-group presence recheck is skipped:
            # plan groups are pairwise disjoint and nothing else can
            # make pages resident inside a closed eager pass
            if gslots is not None:
                advanced = self._eager_read_run(
                    table, pid, groups, done, t, deadline
                )
                if advanced is not None:
                    ngroups, t, npages = advanced
                    done += ngroups
                    filled += npages
                    continue
            if frames.free < gpages.size or frames.below_min(gpages.size):
                try:
                    ok, t = self._eager_ensure(gpages.size, t, deadline)
                except OutOfFramesError as exc:
                    return done, t, filled, exc
                if not ok:
                    break
            if gslots is None:
                delay = gpages.size * params.minor_fault_s
                t2 = t + delay
                if delay > 0 and not t2 < deadline:
                    break
                frames.allocate(gpages.size)
                self.stats.minor_faults += gpages.size
                self._c_minor.inc(gpages.size)
                if delay > 0:
                    t = t2
                    env.events_absorbed += 1
            else:
                cpu = gpages.size * params.major_fault_cpu_s
                duration, _ = disk.service_time_for(gslots, "read")
                t_after = (t + duration) + cpu
                if not t_after < deadline:
                    break
                frames.allocate(gpages.size)
                req = disk.service_eager(gslots, "read", t,
                                         PRIO_FOREGROUND, pid=pid)
                self.stats.major_faults += 1
                self.stats.pages_swapped_in += gpages.size
                self._c_major.inc()
                self._c_pages_in.inc(gpages.size)
                filled += gpages.size
                self._count_refaults(pid, gpages, now=req.completed_at)
                t = req.completed_at + cpu
            table.make_resident(gpages)
            table.set_last_ref(gpages, t)
            done += 1
        return done, t, filled, None

    def _eager_read_run(self, table, pid: int, groups, start: int,
                        t: float, deadline: float):
        """Vectorized commit of a run of contiguous read groups.

        Detects the maximal run of single-run (contiguous-slot) swap-in
        groups from ``groups[start:]`` whose frames are available
        without reclaim and whose waiter-visible completions all land
        strictly before ``deadline``, then applies the whole run with
        array operations: one accumulate for the exact event times, one
        frame allocation, bulk page-state flips, a vectorized refault
        gather and a bulk disk commit.  Returns
        ``(ngroups, t_end, npages)`` or ``None`` when fewer than two
        groups qualify (the per-group path is cheaper then).
        """
        params = self.params
        frames = self.frames
        firsts = []
        sizes = []
        k = start
        n = len(groups)
        while k < n:
            g = groups[k]
            # planner-certified set contiguity: group slots are in page
            # order, where a span test alone is unsound (a permutation
            # like [2, 1, 6, 5] passes it while covering two disk runs)
            if not g.contig:
                break
            firsts.append(g.slot0)
            sizes.append(g.pages.size)
            k += 1
        if k - start < 2:
            return None
        sizes = np.asarray(sizes, dtype=np.int64)
        firsts = np.asarray(firsts, dtype=np.int64)
        # per-group watermark precondition, prefix-truncated: group j
        # may allocate without reclaim iff the pool stays at or above
        # freepages.min after it (the scalar loop's inline guard)
        csum = np.cumsum(sizes)
        room = (frames.free - csum) >= params.freepages_min
        if not room.all():
            m = int(np.argmin(room))
            if m < 2:
                return None
            sizes = sizes[:m]
            firsts = firsts[:m]
            csum = csum[:m]
        durations, seeks = self.disk.eager_run_times(firsts, sizes, "read")
        # exact event times by strict left-fold: acc interleaves each
        # group's service completion T_c and its fused CPU charge, so
        # T_c = acc[1::2] and the waiter resumes at acc[2::2] — the
        # same float additions, in the same order, as the scalar path
        cpus = sizes * params.major_fault_cpu_s
        inter = np.empty(2 * sizes.size, dtype=np.float64)
        inter[0::2] = durations
        inter[1::2] = cpus
        acc = np.add.accumulate(np.concatenate(([t], inter)))
        t_c = acc[1::2]
        waiters = acc[2::2]
        inside = waiters < deadline
        if not inside.all():
            m = int(np.argmin(inside))
            if m < 2:
                return None
            sizes = sizes[:m]
            firsts = firsts[:m]
            durations = durations[:m]
            seeks = seeks[:m]
            t_c = t_c[:m]
            waiters = waiters[:m]
        m = sizes.size
        starts = acc[0:2 * m:2]
        # the device stores and services the sorted slot set (scalar
        # requests sort on submission); a contiguous set's sorted form
        # is its arange, regardless of the group's page-order shuffle
        slots_list = [np.arange(f, f + s) for f, s in
                      zip(firsts[:m].tolist(), sizes.tolist())]
        all_pages = np.concatenate(
            [groups[start + i].pages for i in range(m)]
        )
        total = self._commit_read_run(
            table, pid, slots_list, all_pages, sizes, durations, seeks,
            starts, t_c, waiters,
        )
        return m, float(waiters[-1]), total

    def _commit_read_run(self, table, pid: int, slots_list, all_pages,
                         sizes, durations, seeks, starts, t_c, waiters):
        """Bulk-apply a priced read run: frames, statistics, the
        refault gather, the disk commit and the page-state flips
        (shared by the group-list and array-plan drivers)."""
        total = int(sizes.sum())
        self.frames.allocate(total)
        self.stats.major_faults += sizes.size
        self.stats.pages_swapped_in += total
        self._c_major.inc(sizes.size)
        self._c_pages_in.inc(total)
        if pid in self._ever_evicted:
            evicted = self._evicted_at[pid][all_pages]
            recent = np.repeat(t_c, sizes) - evicted < self.refault_window_s
            nref = int(np.count_nonzero(recent))
            self.stats.refaults += nref
            if nref:
                self._c_refaults.inc(nref)
        self.disk.commit_eager_run(
            slots_list, sizes, durations, seeks,
            starts, t_c, "read", PRIO_FOREGROUND, pid=pid,
        )
        table.make_resident(all_pages)
        table.set_last_ref_values(all_pages, np.repeat(waiters, sizes))
        return total

    def _advance_eager_plan(self, table, pid: int, plan: MonotonePlan):
        """Array-plan twin of :meth:`_advance_eager`.

        Consumes a :class:`~repro.mem.readahead.MonotonePlan` without
        materialising its fault groups: maximal runs of slot-contiguous
        swap groups (no zero-fill bucket or discontiguity between them)
        commit through :meth:`_eager_read_window`; lone groups and
        zero-fill buckets replay the scalar loop's arithmetic one at a
        time.  The plan's window slices are slot-ascending, which is
        exactly what the scalar path services (requests sort their
        slots on submission), so no per-group page-order shuffle is
        needed anywhere on this path.

        Returns ``(tail_groups, t_end, filled, exc)`` where
        ``tail_groups`` is the materialised uncommitted suffix for the
        scalar loop in :meth:`touch` (``done`` is implicitly 0).
        """
        env = self.env
        params = self.params
        frames = self.frames
        disk = self.disk
        dl = self.deadlines
        deadline = dl.bg_arm_at if dl.bg_arm_at < dl.run_cap_at \
            else dl.run_cap_at
        t = env.now
        filled = 0
        n = plan.los.size
        if not t < deadline:
            return plan.materialize(), t, 0, None
        contig = plan.contig
        zb = plan.zf_bounds
        zbl = zb.tolist() if zb is not None else None
        # a bulk run may not extend across a discontiguous group or a
        # group preceded by a pending zero-fill bucket; precompute the
        # barrier positions once and find each run's end by bisection
        barrier = ~contig
        if zb is not None:
            barrier = barrier | (zb[:n] != zb[1:n + 1])
        bidx = np.flatnonzero(barrier)
        los = plan.los
        his = plan.his
        k = 0
        zf_next = 0
        while k < n:
            if zbl is not None and zf_next == k and zbl[k] != zbl[k + 1]:
                # zero-fill bucket k precedes swap group k
                zpages = plan.zf_pages[zbl[k]:zbl[k + 1]]
                size = zpages.size
                if frames.free < size or frames.below_min(size):
                    try:
                        ok, t = self._eager_ensure(size, t, deadline)
                    except OutOfFramesError as exc:
                        return plan.materialize(k, zf_next), t, filled, exc
                    if not ok:
                        break
                delay = size * params.minor_fault_s
                t2 = t + delay
                if delay > 0 and not t2 < deadline:
                    break
                frames.allocate(size)
                self.stats.minor_faults += size
                self._c_minor.inc(size)
                if delay > 0:
                    t = t2
                    env.events_absorbed += 1
                table.make_resident(zpages)
                table.set_last_ref(zpages, t)
                zf_next = k + 1
                continue
            if bool(contig[k]):
                pos = int(np.searchsorted(bidx, k, side="right"))
                j = int(bidx[pos]) if pos < bidx.size else n
                if j - k >= 2:
                    adv = self._eager_read_window(
                        table, pid, plan, k, j, t, deadline
                    )
                    if adv is not None:
                        m, t, npages = adv
                        filled += npages
                        k += m
                        zf_next = k
                        continue
            # lone swap group k (its bucket, if any, is consumed)
            lo = int(los[k])
            hi = int(his[k])
            size = hi - lo
            if frames.free < size or frames.below_min(size):
                try:
                    ok, t = self._eager_ensure(size, t, deadline)
                except OutOfFramesError as exc:
                    return plan.materialize(k, zf_next), t, filled, exc
                if not ok:
                    break
            gslots = plan.sw_slots[lo:hi]
            cpu = size * params.major_fault_cpu_s
            duration, _ = disk.service_time_for(gslots, "read")
            t_after = (t + duration) + cpu
            if not t_after < deadline:
                break
            frames.allocate(size)
            req = disk.service_eager(gslots, "read", t,
                                     PRIO_FOREGROUND, pid=pid)
            self.stats.major_faults += 1
            self.stats.pages_swapped_in += size
            self._c_major.inc()
            self._c_pages_in.inc(size)
            filled += size
            gpages = plan.sw_pages[lo:hi]
            self._count_refaults(pid, gpages, now=req.completed_at)
            t = req.completed_at + cpu
            table.make_resident(gpages)
            table.set_last_ref(gpages, t)
            k += 1
            zf_next = k
        return plan.materialize(k, zf_next), t, filled, None

    def _eager_read_window(self, table, pid: int, plan: MonotonePlan,
                           start: int, stop: int, t: float,
                           deadline: float):
        """:meth:`_eager_read_run` over a plan's window arrays.

        ``[start, stop)`` indexes slot-contiguous swap groups of
        ``plan``; the run is prefix-truncated by the per-group
        watermark precondition and the deadline exactly as the
        group-list variant.  Returns ``(ngroups, t_end, npages)`` or
        ``None`` when fewer than two groups survive.
        """
        params = self.params
        frames = self.frames
        sizes = plan.sizes[start:stop]
        firsts = plan.firsts[start:stop]
        csum = np.cumsum(sizes)
        room = (frames.free - csum) >= params.freepages_min
        if not room.all():
            m = int(np.argmin(room))
            if m < 2:
                return None
            sizes = sizes[:m]
            firsts = firsts[:m]
        durations, seeks = self.disk.eager_run_times(firsts, sizes, "read")
        cpus = sizes * params.major_fault_cpu_s
        inter = np.empty(2 * sizes.size, dtype=np.float64)
        inter[0::2] = durations
        inter[1::2] = cpus
        acc = np.add.accumulate(np.concatenate(([t], inter)))
        t_c = acc[1::2]
        waiters = acc[2::2]
        inside = waiters < deadline
        if not inside.all():
            m = int(np.argmin(inside))
            if m < 2:
                return None
            sizes = sizes[:m]
            firsts = firsts[:m]
            durations = durations[:m]
            seeks = seeks[:m]
            t_c = t_c[:m]
            waiters = waiters[:m]
        m = sizes.size
        starts = acc[0:2 * m:2]
        los = plan.los[start:start + m].tolist()
        his = plan.his[start:start + m].tolist()
        sw_slots = plan.sw_slots
        sw_pages = plan.sw_pages
        slots_list = [sw_slots[a:b] for a, b in zip(los, his)]
        all_pages = np.concatenate(
            [sw_pages[a:b] for a, b in zip(los, his)]
        ) if m > 1 else sw_pages[los[0]:his[0]]
        total = self._commit_read_run(
            table, pid, slots_list, all_pages, sizes, durations, seeks,
            starts, t_c, waiters,
        )
        return m, float(waiters[-1]), total

    def _eager_ensure(self, incoming: int, t: float, deadline: float):
        """Eager mirror of :meth:`_ensure_frames`.

        Returns ``(ok, t)``.  Reclaim episodes are committed whole or
        not started: ``stats.reclaim_episodes`` is identity-compared,
        so the only safe stop is *between* episodes, guarded by a
        whole-episode duration bound — under the flat-seek model each
        evicted page costs at most one positioning plus one transfer
        plus the per-request overhead, and an episode never evicts
        more than its deficit.  ``(False, t)`` means the scalar loop
        must take over before the next episode.
        """
        frames = self.frames
        params = self.disk.params
        per_page = (params.overhead_s + params.positioning_s
                    + params.page_transfer_s)
        stale_retries = 0
        while True:
            if (frames.free >= incoming
                    and not frames.below_min(incoming)):
                return True, t
            deficit = frames.deficit_to_high(incoming)
            if not t + deficit * per_page < deadline:
                return False, t
            progress, t = self._eager_reclaim_episode(deficit, t)
            if progress > 0:
                stale_retries = 0
                continue
            if frames.free >= incoming:
                return True, t
            if self._reclaim_saw_candidates:
                # unreachable with the shipped policies (a closed pass
                # cannot make victims go stale), but mirrored from
                # _ensure_frames for safety: back off one positioning
                # time and retry
                stale_retries += 1
                if stale_retries > 100_000:
                    raise OutOfFramesError(
                        f"livelock: need {incoming} frames, "
                        f"{frames.free} free after "
                        f"{stale_retries} stale reclaim rounds"
                    )
                t2 = t + params.positioning_s
                if not t2 < deadline:
                    return False, t
                t = t2
                self.env.events_absorbed += 1
                continue
            raise OutOfFramesError(
                f"need {incoming} frames, {frames.free} free, "
                "and nothing is evictable"
            )

    def _eager_reclaim_episode(self, count: int, t: float):
        """One :meth:`reclaim` episode applied eagerly.

        Same selector calls, same batch walk, same statistics — the
        per-batch lock acquisition and disk writes are absorbed instead
        of dispatched.  Returns ``(progress, t)``.
        """
        self.stats.reclaim_episodes += 1
        remaining = count
        total = 0
        self._reclaim_saw_candidates = False
        while remaining > 0:
            selector = self.victim_selector or self.policy.select_victims
            batches = selector(
                self.tables, remaining, self.params.swap_cluster,
                self._active_protect(None),
            )
            if not batches:
                break
            self._reclaim_saw_candidates = True
            progress, t = self._eager_evict_batches(batches, t)
            if progress == 0:
                break
            remaining -= progress
            total += progress
        return total, t

    def _eager_evict_batches(self, batches, t: float):
        """Apply one selector call's victim batches, bulk-committing
        consecutive same-pid spans.

        Per-page LRU eviction produces dozens of single-page batches
        per episode; walking them through :meth:`_eager_evict_batch`
        one at a time costs a full Python round-trip (revalidate,
        allocate, disk service, hook, evict) per page.  A same-pid
        span whose pages survive revalidation untouched and whose
        write slots are per-batch contiguous commits as one vectorised
        pass instead; anything else falls back to the per-batch
        mirror.  Returns ``(progress, t)``.
        """
        progress = 0
        i = 0
        n = len(batches)
        while i < n:
            pid = batches[i].pid
            j = i + 1
            while j < n and batches[j].pid == pid:
                j += 1
            res = (self._eager_evict_span(pid, batches[i:j], t)
                   if j - i > 1 else None)
            if res is None:
                for batch in batches[i:j]:
                    p, t = self._eager_evict_batch(batch, t)
                    progress += p
            else:
                p, t = res
                progress += p
            i = j
        return progress, t

    def _eager_evict_span(self, pid: int, span, t: float):
        """Bulk mirror of consecutive same-pid :meth:`_eager_evict_batch`
        calls.  Returns ``(evicted, t)``, or ``None`` to fall back.

        Preconditions, checked vectorised: batches pairwise disjoint,
        every page still present and undemanded (so revalidation
        filters nothing), and each batch's write slots one contiguous
        run (so the chained head model of
        :meth:`~repro.disk.device.Disk.eager_run_times` applies).  A
        closed pass cannot stale a victim, but fragmented swap can
        scatter slots — those spans take the per-batch path.
        """
        table = self.tables.get(pid)
        if table is None:
            return None
        sizes = np.array([b.pages.size for b in span], dtype=np.int64)
        pages = np.concatenate([b.pages for b in span])
        srt = np.sort(pages)
        if pages.size > 1 and not (srt[1:] > srt[:-1]).all():
            return None
        if not table.present[pages].all():
            return None
        if self._demand_counts[pid][pages].any():
            return None
        nb = sizes.size
        offsets = np.zeros(nb + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        no_slot = table.swap_slot[pages] < 0
        if no_slot.any():
            # per-batch allocations in batch order: the allocator call
            # sequence (and therefore slot placement) matches the
            # scalar mirror exactly
            offs = offsets.tolist()
            for k in range(nb):
                seg = no_slot[offs[k]:offs[k + 1]]
                if seg.any():
                    need = pages[offs[k]:offs[k + 1]][seg]
                    table.assign_slots(need, self.swap.allocate(need.size))
        needs_write = table.dirty[pages] | no_slot
        w_sizes = np.add.reduceat(
            needs_write.astype(np.int64), offsets[:-1]
        ) if needs_write.any() else np.zeros(nb, dtype=np.int64)
        wk = np.flatnonzero(w_sizes)
        if wk.size:
            to_write = pages[needs_write]
            w_slots = table.swap_slot[to_write]
            w_off = np.zeros(nb + 1, dtype=np.int64)
            np.cumsum(w_sizes, out=w_off[1:])
            # minimum/maximum.reduceat segments run from one write
            # batch's start to the next; interleaved write-free batches
            # contribute no slots, so each segment is exactly one
            # batch's write set
            seg_starts = w_off[wk]
            sz = w_sizes[wk]
            mins = np.minimum.reduceat(w_slots, seg_starts)
            maxs = np.maximum.reduceat(w_slots, seg_starts)
            if bool(((maxs - mins) == sz - 1).all()):
                slots_list = [np.arange(m, m + s)
                              for m, s in zip(mins.tolist(), sz.tolist())]
                durations, seeks = self.disk.eager_run_times(
                    mins, sz, "write")
            else:
                # fragmented swap scattered some batch's slots: walk
                # the general head model instead (sorted segments, one
                # per write batch — write-free batches are empty)
                bounds = np.append(seg_starts, w_slots.size).tolist()
                slots_list = [np.sort(w_slots[a:b])
                              for a, b in zip(bounds[:-1], bounds[1:])]
                durations, seeks = self.disk.eager_times_list(
                    slots_list, "write")
            acc = np.add.accumulate(np.concatenate(([t], durations)))
            self.disk.commit_eager_run(
                slots_list,
                sz, durations, seeks, acc[:-1], acc[1:], "write",
                PRIO_FOREGROUND, pid=pid,
            )
            w_total = int(sz.sum())
            self.stats.pages_swapped_out += w_total
            self._c_pages_out.inc(w_total)
            table.mark_clean(to_write)
            # a batch's pages are stamped at the running clock after
            # its own write (write-free batches inherit the previous
            # completion)
            stamps = acc[np.searchsorted(wk, np.arange(nb), side="right")]
            t = float(acc[-1])
        else:
            w_total = 0
            stamps = np.full(nb, t)
        total = int(sizes.sum())
        self.stats.pages_discarded += total - w_total
        self.stats.evictions += total
        self._c_discarded.inc(total - w_total)
        self._c_evictions.inc(total)
        if self.on_flush is not None:
            for b in span:
                self.on_flush(pid, b.pages)
        self._evicted_at[pid][pages] = np.repeat(stamps, sizes)
        self._ever_evicted.add(pid)
        table.evict(pages)
        self.frames.release(total)
        self.env.events_absorbed += nb  # one lock-grant wakeup per batch
        return total, t

    def _eager_evict_batch(self, batch: VictimBatch, t: float):
        """Eager mirror of :meth:`evict_batch` (flush mode, foreground).

        The eviction lock is free by the eager precondition and grants
        synchronously, so acquiring it costs exactly the one wakeup
        event we absorb.  Returns ``(evicted, t)``.
        """
        self.env.events_absorbed += 1  # the lock-grant wakeup
        table = self.tables.get(batch.pid)
        if table is None:
            return 0, t
        # revalidation is kept even though a closed pass cannot race:
        # batches may legitimately overlap our own in-flight demand set
        pages = batch.pages
        present = table.present[pages]
        if not present.all():
            pages = pages[present]
        counts = self._demand_counts[batch.pid]
        if pages.size:
            demanded = counts[pages]
            if demanded.any():
                pages = pages[demanded == 0]
        if pages.size == 0:
            return 0, t
        no_slot_mask = table.swap_slot[pages] < 0
        needs_write = table.dirty[pages] | no_slot_mask
        to_write = pages[needs_write]
        if to_write.size:
            no_slot = pages[no_slot_mask]
            if no_slot.size:
                new_slots = self.swap.allocate(no_slot.size)
                table.assign_slots(no_slot, new_slots)
            slots = table.swap_slot[to_write]
            req = self.disk.service_eager(slots, "write", t,
                                          PRIO_FOREGROUND, pid=batch.pid)
            t = req.completed_at
            self.stats.pages_swapped_out += to_write.size
            self._c_pages_out.inc(to_write.size)
            table.mark_clean(to_write)
            # no post-write demand recheck: demands cannot change
            # inside a closed pass
        self.stats.pages_discarded += pages.size - to_write.size
        self.stats.evictions += pages.size
        self._c_discarded.inc(pages.size - to_write.size)
        self._c_evictions.inc(pages.size)
        if self.on_flush is not None:
            self.on_flush(batch.pid, pages)
        self._evicted_at[batch.pid][pages] = t
        self._ever_evicted.add(batch.pid)
        table.evict(pages)
        self.frames.release(pages.size)
        return int(pages.size), t

    def swap_in_block(self, pid: int, groups):
        """Process fragment: service pre-planned block swap-ins.

        Used by adaptive page-in (§3.3): ``groups`` comes from
        :func:`repro.mem.readahead.plan_block_reads`.  The paper induces
        *faults* for the recorded pages, so each page counts as
        referenced at page-in time (otherwise an LRU baseline would
        treat the prefetched pages as the oldest in memory and evict
        them right back out).
        """
        table = self.tables[pid]
        for group in groups:
            # Skip pages that became resident since planning.
            mask = ~table.present[group.pages]
            pages = group.pages[mask]
            if pages.size == 0:
                continue
            slots = group.slots[mask]
            entry = (pid, pages)
            self._add_demand(entry)
            allocated = False
            try:
                if (self.frames.free < pages.size
                        or self.frames.below_min(pages.size)):
                    yield from self._ensure_frames(pages.size)
                self.frames.allocate(pages.size)
                allocated = True
                req = self.disk.submit(slots, "read", PRIO_FOREGROUND, pid=pid)
                yield req
            except Exception:
                if allocated:
                    self.frames.release(pages.size)
                raise
            finally:
                self._remove_demand(entry)
            self.stats.major_faults += 1
            self.stats.pages_swapped_in += pages.size
            self._c_major.inc()
            self._c_pages_in.inc(pages.size)
            self._count_refaults(pid, pages)
            table.make_resident(pages)
            table.set_last_ref(pages, self.env.now)

    # ------------------------------------------------------------------
    # reclaim / page-out
    # ------------------------------------------------------------------
    def _add_demand(self, entry) -> None:
        """Register an in-flight demand set.

        Must pair with :meth:`_remove_demand` on the same entry object.
        Duplicate page numbers within one entry are fine: fancy-index
        ``+=``/``-=`` touch each unique index once on both sides, so
        the counts stay symmetric.
        """
        self._active_demands.append(entry)
        pid, pages = entry
        self._demand_counts[pid][pages] += 1

    def _remove_demand(self, entry) -> None:
        """Remove ``entry`` from the in-flight demand list by identity
        (tuple equality would compare numpy arrays elementwise)."""
        for i, e in enumerate(self._active_demands):
            if e is entry:
                del self._active_demands[i]
                pid, pages = entry
                counts = self._demand_counts.get(pid)
                if counts is not None:
                    counts[pages] -= 1
                return
        if id(entry) in self._purged_demands:
            # the owning process was unregistered mid-service; the entry
            # (and its count array) are already gone
            self._purged_demands.discard(id(entry))
            return
        raise ValueError("demand entry not registered")

    def _active_protect(
        self, extra: Optional[Mapping[int, np.ndarray]] = None
    ) -> dict[int, np.ndarray]:
        """Union of all in-flight demand sets (plus ``extra``), by pid."""
        demands = self._active_demands
        if not extra:
            # fast paths for the overwhelmingly common shapes
            if not demands:
                return {}
            if len(demands) == 1:
                pid, pages = demands[0]
                return {pid: pages}
        merged: dict[int, list[np.ndarray]] = {}
        for pid, pages in demands:
            merged.setdefault(pid, []).append(pages)
        if extra:
            for pid, pages in extra.items():
                merged.setdefault(pid, []).append(
                    np.asarray(pages, dtype=np.int64)
                )
        return {
            pid: arrs[0] if len(arrs) == 1 else np.concatenate(arrs)
            for pid, arrs in merged.items()
        }

    def _ensure_frames(self, incoming: int):
        """Process fragment: reclaim until ``incoming`` frames can be
        allocated without breaching the ``freepages.min`` watermark.

        Loops because a concurrent fault may consume frames we just
        freed while we waited on the eviction lock, and because another
        reclaimer may steal our selected victims (stale batches) — in
        that case the world is still making progress, so back off for
        one disk-positioning time and retry rather than giving up.
        """
        stale_retries = 0
        while True:
            if (self.frames.free >= incoming
                    and not self.frames.below_min(incoming)):
                return
            deficit = self.frames.deficit_to_high(incoming)
            progress = yield from self.reclaim(deficit)
            if progress > 0:
                stale_retries = 0
                continue
            if self.frames.free >= incoming:
                return  # cannot reach the watermark, but we fit
            if self._reclaim_saw_candidates:
                stale_retries += 1
                if stale_retries > 100_000:
                    raise OutOfFramesError(
                        f"livelock: need {incoming} frames, "
                        f"{self.frames.free} free after "
                        f"{stale_retries} stale reclaim rounds"
                    )
                yield self.env.timeout(self.disk.params.positioning_s)
                continue
            raise OutOfFramesError(
                f"need {incoming} frames, {self.frames.free} free, "
                "and nothing is evictable"
            )

    def reclaim(self, count: int,
                protect: Optional[Mapping[int, np.ndarray]] = None,
                priority: int = PRIO_FOREGROUND):
        """Process fragment: evict ~``count`` pages via the active policy.

        Pages belonging to any in-flight fault service are always
        protected, in addition to the caller-supplied ``protect`` map.
        Returns the number of pages evicted.
        """
        if count <= 0:
            return 0
        self.stats.reclaim_episodes += 1
        remaining = count
        total = 0
        self._reclaim_saw_candidates = False
        while remaining > 0:
            selector = self.victim_selector or self.policy.select_victims
            batches = selector(
                self.tables, remaining, self.params.swap_cluster,
                self._active_protect(protect),
            )
            if not batches:
                break  # nothing evictable (all resident pages protected)
            self._reclaim_saw_candidates = True
            progress = 0
            for batch in batches:
                progress += yield from self.evict_batch(batch, priority)
            if progress == 0:
                # victims went stale (a concurrent reclaim consumed
                # them first); the caller decides whether to retry
                break
            remaining -= progress
            total += progress
        return total

    def evict_batch(self, batch: VictimBatch,
                    priority: int = PRIO_FOREGROUND,
                    keep_resident: bool = False):
        """Process fragment: write out / discard one victim batch.

        Dirty pages (or pages with no swap copy yet) are written in a
        single disk request; clean pages with valid swap copies are
        discarded free of I/O.  With ``keep_resident=True`` the pages
        stay in memory and only the dirty ones are cleaned — this is the
        §3.4 background-writing mode.

        Evictions are serialised VMM-wide; victims selected before the
        lock wait are re-validated afterwards.  Returns the number of
        pages actually evicted (0 in keep-resident mode).
        """
        lock = self._evict_lock.request()
        try:
            yield lock
        except BaseException:
            # An interrupt can land while we are suspended at this yield
            # *after* the resource already granted the slot (grants are
            # synchronous; the wakeup event is still in the queue).  The
            # slot must not leak: release() cancels a pending request and
            # frees a granted one, so both states are safe here.
            self._evict_lock.release(lock)
            raise
        try:
            table = self.tables.get(batch.pid)
            if table is None:
                return 0  # process exited while we waited
            # Re-validate: drop victims that were evicted, exited or are
            # now part of an in-flight fault's demand set.  The fancy-
            # index copies are skipped when nothing went stale — the
            # overwhelmingly common case on this hot path.
            pages = batch.pages
            present = table.present[pages]
            if not present.all():
                pages = pages[present]
            counts = self._demand_counts[batch.pid]
            if pages.size:
                demanded = counts[pages]
                if demanded.any():
                    pages = pages[demanded == 0]
            if pages.size == 0:
                return 0

            no_slot_mask = table.swap_slot[pages] < 0
            needs_write = table.dirty[pages] | no_slot_mask
            to_write = pages[needs_write]
            if to_write.size:
                # a page with no swap copy always needs a write, so the
                # no-slot subset of `pages` equals the no-slot subset of
                # `to_write` (same order) — one gather instead of two
                no_slot = pages[no_slot_mask]
                if no_slot.size:
                    new_slots = self.swap.allocate(no_slot.size)
                    table.assign_slots(no_slot, new_slots)
                slots = table.swap_slot[to_write]
                req = self.disk.submit(slots, "write", priority, pid=batch.pid)
                yield req
                if batch.pid not in self.tables:
                    return 0  # process exited during the write
                self.stats.pages_swapped_out += to_write.size
                self._c_pages_out.inc(to_write.size)
                table.mark_clean(to_write)
                # A fault service may have started demanding some of
                # these pages while the write was in flight; they were
                # written (wasted I/O) but must stay resident.
                counts = self._demand_counts[batch.pid]
                demanded = counts[pages]
                if demanded.any():
                    pages = pages[demanded == 0]
                    to_write = to_write[counts[to_write] == 0]
                if pages.size == 0:
                    return 0

            if keep_resident:
                # Background cleaning (§3.4): pages stay in memory, so
                # this is not a flush and must not reach the recorder.
                return 0

            self.stats.pages_discarded += pages.size - to_write.size
            self.stats.evictions += pages.size
            self._c_discarded.inc(pages.size - to_write.size)
            self._c_evictions.inc(pages.size)
            if self.on_flush is not None:
                self.on_flush(batch.pid, pages)
            self._evicted_at[batch.pid][pages] = self.env.now
            self._ever_evicted.add(batch.pid)
            table.evict(pages)
            self.frames.release(pages.size)
            return int(pages.size)
        finally:
            self._evict_lock.release(lock)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _count_refaults(self, pid: int, pages: np.ndarray,
                        now: Optional[float] = None) -> None:
        if pid not in self._ever_evicted:
            return  # nothing evicted yet: no gather needed
        if now is None:
            now = self.env.now
        evicted = self._evicted_at[pid][pages]
        recent = now - evicted < self.refault_window_s
        n = int(np.count_nonzero(recent))
        self.stats.refaults += n
        if n:
            self._c_refaults.inc(n)

    def check_invariants(self) -> None:
        """Cross-structure consistency checks (used by property tests)."""
        resident = self.resident_pages_total()
        assert resident == self.frames.used, (
            f"frame accounting drift: tables={resident} pool={self.frames.used}"
        )
        all_slots = []
        for table in self.tables.values():
            table.check_invariants()
            s = table.swap_slot[table.swap_slot >= 0]
            all_slots.append(s)
        if all_slots:
            merged = np.concatenate(all_slots)
            assert len(np.unique(merged)) == merged.size, (
                "swap slot shared between processes"
            )
            assert merged.size == self.swap.used_slots, (
                f"swap accounting drift: tables={merged.size} "
                f"allocator={self.swap.used_slots}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VMM({self.name}, procs={len(self.tables)}, "
            f"free={self.frames.free}/{self.frames.total})"
        )


__all__ = ["FaultStats", "VirtualMemoryManager"]
