"""The per-node virtual memory manager.

Ties the frame pool, page tables, replacement policy, swap allocator
and disk together, and exposes the three hook points the adaptive
mechanisms of :mod:`repro.core` use:

``victim_selector``
    Replaces baseline victim selection during a job switch (selective
    page-out, §3.1).
``on_flush``
    Observes every page-out, in flush order (the adaptive page-in
    recorder, §3.3).
``evict_batch`` / ``reclaim``
    Called directly by aggressive page-out (§3.2) and the background
    writer (§3.4) to force page-outs outside the fault path.

All methods that perform disk I/O are generator *process fragments* to
be driven with ``yield from`` inside a simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.disk.device import Disk, PRIO_FOREGROUND
from repro.disk.swap import SwapAllocator
from repro.mem.frames import FramePool, OutOfFramesError
from repro.mem.page_table import PageTable
from repro.mem.params import MemoryParams
from repro.mem.readahead import dedupe_preserve_order, plan_swapins
from repro.mem.replacement import (
    GlobalLruPolicy,
    ReplacementPolicy,
    VictimBatch,
)
from repro.obs.registry import NULL_OBS
from repro.sim import fastpath as _fastpath
from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass
class FaultStats:
    """Cumulative paging statistics for one node."""

    minor_faults: int = 0          # zero-fill pages
    major_faults: int = 0          # fault events serviced from swap
    pages_swapped_in: int = 0      # pages read (incl. read-ahead)
    pages_swapped_out: int = 0     # pages written
    pages_discarded: int = 0       # clean evictions (no I/O)
    evictions: int = 0             # pages removed from memory (total)
    refaults: int = 0              # pages swapped in soon after eviction
    reclaim_episodes: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.__dict__)


class VirtualMemoryManager:
    """Demand-paged virtual memory for one node.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Memory configuration (frames, watermarks, read-ahead, ...).
    disk:
        The node's paging device.
    policy:
        Baseline replacement policy (default: global LRU approximation).
    refault_window_s:
        A page swapped back in within this many seconds of its eviction
        counts as a *refault* — the observable symptom of the paper's
        §3.1 false eviction.
    """

    def __init__(
        self,
        env: Environment,
        params: MemoryParams,
        disk: Disk,
        policy: Optional[ReplacementPolicy] = None,
        refault_window_s: float = 300.0,
        name: str = "vmm0",
        obs=NULL_OBS,
    ) -> None:
        self.env = env
        self.params = params
        self.disk = disk
        self.name = name
        self.policy = policy or GlobalLruPolicy()
        self.refault_window_s = refault_window_s
        self.frames = FramePool(
            params.total_frames, params.freepages_min, params.freepages_high
        )
        self.swap = SwapAllocator(params.swap_slots)
        self.tables: dict[int, PageTable] = {}
        self.stats = FaultStats()
        # eviction timestamps per pid for refault detection
        self._evicted_at: dict[int, np.ndarray] = {}
        # demand sets of in-flight fault services; pages here must never
        # be selected as victims (several touches can be in flight when
        # a stopped process is still finishing kernel-side fault work)
        self._active_demands: list[tuple[int, np.ndarray]] = []
        # entries purged by unregister_process while their fault service
        # was still in flight (identity set: _remove_demand must not
        # raise when the generator finally unwinds)
        self._purged_demands: set[int] = set()
        # pids that have ever had a page evicted — before the first
        # eviction the refault gather can be skipped entirely
        self._ever_evicted: set[int] = set()
        # per-pid refcount of in-flight demand membership, mirroring
        # _active_demands: counts[page] > 0 == page is in some demand
        # set.  evict_batch consults this instead of rebuilding the
        # merged map and running set-membership per batch (hot path).
        self._demand_counts: dict[int, np.ndarray] = {}
        # serialises evictions (the kernel's reclaim path holds a lock);
        # victims are re-validated after the wait
        self._evict_lock = Resource(env, capacity=1)
        # whether the most recent reclaim round found any candidates
        # (distinguishes "nothing evictable" from "victims went stale")
        self._reclaim_saw_candidates = False

        # telemetry (no-ops against the default NULL_OBS registry);
        # _obs_on gates the few sites that would otherwise do real work
        # (env.now reads, span emission) when telemetry is off
        self._obs = obs
        self._obs_on = obs.enabled
        self._c_minor = obs.counter("vmm_minor_faults", node=name)
        self._c_major = obs.counter("vmm_major_faults", node=name)
        self._c_pages_in = obs.counter("vmm_pages_swapped_in", node=name)
        self._c_pages_out = obs.counter("vmm_pages_swapped_out", node=name)
        self._c_discarded = obs.counter("vmm_pages_discarded", node=name)
        self._c_evictions = obs.counter("vmm_evictions", node=name)
        self._c_refaults = obs.counter("vmm_refaults", node=name)

        # -- adaptive-mechanism hook points --------------------------------
        #: when set, replaces baseline victim selection; same signature
        #: as ReplacementPolicy.select_victims
        self.victim_selector: Optional[
            Callable[[Mapping[int, PageTable], int, int,
                      Optional[Mapping[int, np.ndarray]]], list[VictimBatch]]
        ] = None
        #: observer called as on_flush(pid, pages) for every page-out,
        #: in flush order
        self.on_flush: Optional[Callable[[int, np.ndarray], None]] = None

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def register_process(self, pid: int, num_pages: int) -> PageTable:
        """Create the page table for a new process."""
        if pid in self.tables:
            raise ValueError(f"pid {pid} already registered")
        table = PageTable(pid, num_pages)
        self.tables[pid] = table
        self._evicted_at[pid] = np.full(num_pages, -np.inf)
        self._demand_counts[pid] = np.zeros(num_pages, dtype=np.int32)
        return table

    def unregister_process(self, pid: int) -> None:
        """Tear down an exited process, releasing frames and swap.

        Any in-flight demand entries of the pid are purged so
        :meth:`_active_protect` never hands a dead pid's page array to a
        victim selector (page numbers of a dead table could even exceed
        a successor process's address space).
        """
        table = self.tables.pop(pid)
        self._evicted_at.pop(pid)
        self._demand_counts.pop(pid)
        self._ever_evicted.discard(pid)
        stale = [e for e in self._active_demands if e[0] == pid]
        if stale:
            self._active_demands = [
                e for e in self._active_demands if e[0] != pid
            ]
            self._purged_demands.update(id(e) for e in stale)
        self.frames.release(table.resident_count)
        slots = table.swap_slot[table.swap_slot >= 0]
        if slots.size:
            self.swap.free(slots)

    def resident_pages_total(self) -> int:
        """Total resident pages across every registered process."""
        return sum(t.resident_count for t in self.tables.values())

    # ------------------------------------------------------------------
    # the steady-state fast path (see repro.sim.fastpath)
    # ------------------------------------------------------------------
    def resident_all(self, pid: int, pages: np.ndarray) -> bool:
        """One vectorised probe: is the whole chunk already resident?"""
        return bool(self.tables[pid].present[pages].all())

    def touch_fast(self, pid: int, pages: np.ndarray,
                   dirty: bool | np.ndarray = False) -> bool:
        """Service a fully-resident chunk without the generator fault path.

        Returns ``True`` when every page of ``pages`` (already deduped by
        :func:`~repro.workloads.base.expand_phase`) is resident: the
        chunk is then referenced via :meth:`PageTable.record_access` and
        no demand entry, swap-in plan, or simulation event is created.
        This is invisible to the rest of the simulation because the
        legacy :meth:`touch` performs *zero yields* for a fully-resident
        chunk — same page-state writes, same timestamps, no time passes
        either way.  Returns ``False`` (having touched nothing) when any
        page is absent; the caller must then fall back to :meth:`touch`.
        """
        table = self.tables[pid]
        if pages.size > self.params.total_frames - self.params.freepages_high:
            raise ValueError(
                f"phase demands {pages.size} pages; node has only "
                f"{self.params.total_frames} frames (chunk the phase)"
            )
        if not table.present[pages].all():
            return False
        table.record_access(pages, self.env.now, dirty)
        return True

    def fastpath_quiescent(self) -> bool:
        """True when no fault service or eviction is in flight.

        The resident-run batching in :mod:`repro.gang.job` defers
        page-reference stamping to the end of a coalesced CPU burst;
        that is only sound while nothing else can read or mutate page
        state mid-run.  In-flight demand sets and a held (or contended)
        eviction lock are exactly the situations where a concurrent
        process fragment is awake between our events.
        """
        lock = self._evict_lock
        return (not self._active_demands
                and lock.in_use == 0
                and lock.queue_length == 0)

    # ------------------------------------------------------------------
    # the demand-paging fault path
    # ------------------------------------------------------------------
    def touch(self, pid: int, pages: np.ndarray,
              dirty: bool | np.ndarray = False):
        """Process fragment: make ``pages`` resident and reference them.

        ``pages`` is in touch order; ``dirty`` is a scalar or per-page
        mask.  Yields on disk I/O for page-ins and any reclaim writes.
        The demand set is protected from eviction while being serviced,
        so a single call must not demand more pages than physical memory
        minus the high watermark (workload phases are chunked to ensure
        this).
        """
        table = self.tables[pid]
        pages = dedupe_preserve_order(pages)
        if pages.size > self.params.total_frames - self.params.freepages_high:
            raise ValueError(
                f"phase demands {pages.size} pages; node has only "
                f"{self.params.total_frames} frames (chunk the phase)"
            )
        entry = (pid, pages)
        self._add_demand(entry)
        # telemetry: a touch that swaps pages in from disk is a
        # demand-fill burst (the post-switch working-set refill when
        # adaptive page-in is off or its record was incomplete)
        t0 = self.env.now if self._obs_on else 0.0
        filled = 0
        try:
            # Loop: a page resident when first checked can be evicted by
            # an in-flight write that had already selected it; re-check
            # until the whole demand set is resident.
            while True:
                absent = pages[~table.present[pages]]
                if absent.size == 0:
                    break
                for group in plan_swapins(
                    table, absent, self.params.readahead_pages
                ):
                    # a group page may have been brought in meanwhile;
                    # when none was (the overwhelmingly common case) the
                    # planned arrays are used as-is, skipping the mask
                    # inversion and two fancy-index copies
                    gpages = group.pages
                    pres = table.present[gpages]
                    if pres.any():
                        mask = ~pres
                        gpages = gpages[mask]
                        if gpages.size == 0:
                            continue
                        gslots = group.slots[mask] \
                            if group.slots is not None else None
                    else:
                        gslots = group.slots
                    # inline guard: _ensure_frames returns without
                    # yielding when the watermark already holds, so
                    # replicating its first check here skips a generator
                    # per group with no behavioural difference
                    if (self.frames.free < gpages.size
                            or self.frames.below_min(gpages.size)):
                        yield from self._ensure_frames(gpages.size)
                    self.frames.allocate(gpages.size)
                    if gslots is None:
                        self.stats.minor_faults += gpages.size
                        self._c_minor.inc(gpages.size)
                        delay = gpages.size * self.params.minor_fault_s
                        if delay > 0:
                            yield self.env.timeout(delay)
                    else:
                        cpu = gpages.size * self.params.major_fault_cpu_s
                        # fast path: fold the post-read CPU charge into
                        # the request's completion trigger (the device
                        # still frees at service completion Tc; our
                        # wakeup just moves from Tc -> Tc + cpu, saving
                        # one Timeout event per read group)
                        fused = _fastpath.ENABLED and cpu > 0
                        req = self.disk.submit(
                            gslots, "read", PRIO_FOREGROUND, pid=pid,
                            extra_delay=cpu if fused else 0.0,
                        )
                        try:
                            yield req
                        except Exception:
                            # failed page-in (e.g. disk retry budget
                            # exhausted): return the frames before the
                            # fault propagates to the process
                            self.frames.release(gpages.size)
                            raise
                        self.stats.major_faults += 1
                        self.stats.pages_swapped_in += gpages.size
                        self._c_major.inc()
                        self._c_pages_in.inc(gpages.size)
                        if self._obs_on:
                            filled += gpages.size
                        # refault detection is keyed on the *service
                        # completion* time, which in fused mode is cpu
                        # earlier than env.now
                        self._count_refaults(pid, gpages,
                                             now=req.completed_at)
                        if cpu > 0 and not fused:
                            yield self.env.timeout(cpu)
                    table.make_resident(gpages)
                    # the fault itself is a reference (protects freshly
                    # faulted pages from instant LRU re-eviction)
                    table.set_last_ref(gpages, self.env.now)
        finally:
            self._remove_demand(entry)
        if filled:
            self._obs.span("demand_fill", self.name, t0, self.env.now,
                           pid=pid, pages=filled)
        table.record_access(pages, self.env.now, dirty)

    def swap_in_block(self, pid: int, groups):
        """Process fragment: service pre-planned block swap-ins.

        Used by adaptive page-in (§3.3): ``groups`` comes from
        :func:`repro.mem.readahead.plan_block_reads`.  The paper induces
        *faults* for the recorded pages, so each page counts as
        referenced at page-in time (otherwise an LRU baseline would
        treat the prefetched pages as the oldest in memory and evict
        them right back out).
        """
        table = self.tables[pid]
        for group in groups:
            # Skip pages that became resident since planning.
            mask = ~table.present[group.pages]
            pages = group.pages[mask]
            if pages.size == 0:
                continue
            slots = group.slots[mask]
            entry = (pid, pages)
            self._add_demand(entry)
            allocated = False
            try:
                if (self.frames.free < pages.size
                        or self.frames.below_min(pages.size)):
                    yield from self._ensure_frames(pages.size)
                self.frames.allocate(pages.size)
                allocated = True
                req = self.disk.submit(slots, "read", PRIO_FOREGROUND, pid=pid)
                yield req
            except Exception:
                if allocated:
                    self.frames.release(pages.size)
                raise
            finally:
                self._remove_demand(entry)
            self.stats.major_faults += 1
            self.stats.pages_swapped_in += pages.size
            self._c_major.inc()
            self._c_pages_in.inc(pages.size)
            self._count_refaults(pid, pages)
            table.make_resident(pages)
            table.set_last_ref(pages, self.env.now)

    # ------------------------------------------------------------------
    # reclaim / page-out
    # ------------------------------------------------------------------
    def _add_demand(self, entry) -> None:
        """Register an in-flight demand set.

        Must pair with :meth:`_remove_demand` on the same entry object.
        Duplicate page numbers within one entry are fine: fancy-index
        ``+=``/``-=`` touch each unique index once on both sides, so
        the counts stay symmetric.
        """
        self._active_demands.append(entry)
        pid, pages = entry
        self._demand_counts[pid][pages] += 1

    def _remove_demand(self, entry) -> None:
        """Remove ``entry`` from the in-flight demand list by identity
        (tuple equality would compare numpy arrays elementwise)."""
        for i, e in enumerate(self._active_demands):
            if e is entry:
                del self._active_demands[i]
                pid, pages = entry
                counts = self._demand_counts.get(pid)
                if counts is not None:
                    counts[pages] -= 1
                return
        if id(entry) in self._purged_demands:
            # the owning process was unregistered mid-service; the entry
            # (and its count array) are already gone
            self._purged_demands.discard(id(entry))
            return
        raise ValueError("demand entry not registered")

    def _active_protect(
        self, extra: Optional[Mapping[int, np.ndarray]] = None
    ) -> dict[int, np.ndarray]:
        """Union of all in-flight demand sets (plus ``extra``), by pid."""
        demands = self._active_demands
        if not extra:
            # fast paths for the overwhelmingly common shapes
            if not demands:
                return {}
            if len(demands) == 1:
                pid, pages = demands[0]
                return {pid: pages}
        merged: dict[int, list[np.ndarray]] = {}
        for pid, pages in demands:
            merged.setdefault(pid, []).append(pages)
        if extra:
            for pid, pages in extra.items():
                merged.setdefault(pid, []).append(
                    np.asarray(pages, dtype=np.int64)
                )
        return {
            pid: arrs[0] if len(arrs) == 1 else np.concatenate(arrs)
            for pid, arrs in merged.items()
        }

    def _ensure_frames(self, incoming: int):
        """Process fragment: reclaim until ``incoming`` frames can be
        allocated without breaching the ``freepages.min`` watermark.

        Loops because a concurrent fault may consume frames we just
        freed while we waited on the eviction lock, and because another
        reclaimer may steal our selected victims (stale batches) — in
        that case the world is still making progress, so back off for
        one disk-positioning time and retry rather than giving up.
        """
        stale_retries = 0
        while True:
            if (self.frames.free >= incoming
                    and not self.frames.below_min(incoming)):
                return
            deficit = self.frames.deficit_to_high(incoming)
            progress = yield from self.reclaim(deficit)
            if progress > 0:
                stale_retries = 0
                continue
            if self.frames.free >= incoming:
                return  # cannot reach the watermark, but we fit
            if self._reclaim_saw_candidates:
                stale_retries += 1
                if stale_retries > 100_000:
                    raise OutOfFramesError(
                        f"livelock: need {incoming} frames, "
                        f"{self.frames.free} free after "
                        f"{stale_retries} stale reclaim rounds"
                    )
                yield self.env.timeout(self.disk.params.positioning_s)
                continue
            raise OutOfFramesError(
                f"need {incoming} frames, {self.frames.free} free, "
                "and nothing is evictable"
            )

    def reclaim(self, count: int,
                protect: Optional[Mapping[int, np.ndarray]] = None,
                priority: int = PRIO_FOREGROUND):
        """Process fragment: evict ~``count`` pages via the active policy.

        Pages belonging to any in-flight fault service are always
        protected, in addition to the caller-supplied ``protect`` map.
        Returns the number of pages evicted.
        """
        if count <= 0:
            return 0
        self.stats.reclaim_episodes += 1
        remaining = count
        total = 0
        self._reclaim_saw_candidates = False
        while remaining > 0:
            selector = self.victim_selector or self.policy.select_victims
            batches = selector(
                self.tables, remaining, self.params.swap_cluster,
                self._active_protect(protect),
            )
            if not batches:
                break  # nothing evictable (all resident pages protected)
            self._reclaim_saw_candidates = True
            progress = 0
            for batch in batches:
                progress += yield from self.evict_batch(batch, priority)
            if progress == 0:
                # victims went stale (a concurrent reclaim consumed
                # them first); the caller decides whether to retry
                break
            remaining -= progress
            total += progress
        return total

    def evict_batch(self, batch: VictimBatch,
                    priority: int = PRIO_FOREGROUND,
                    keep_resident: bool = False):
        """Process fragment: write out / discard one victim batch.

        Dirty pages (or pages with no swap copy yet) are written in a
        single disk request; clean pages with valid swap copies are
        discarded free of I/O.  With ``keep_resident=True`` the pages
        stay in memory and only the dirty ones are cleaned — this is the
        §3.4 background-writing mode.

        Evictions are serialised VMM-wide; victims selected before the
        lock wait are re-validated afterwards.  Returns the number of
        pages actually evicted (0 in keep-resident mode).
        """
        lock = self._evict_lock.request()
        try:
            yield lock
        except BaseException:
            # An interrupt can land while we are suspended at this yield
            # *after* the resource already granted the slot (grants are
            # synchronous; the wakeup event is still in the queue).  The
            # slot must not leak: release() cancels a pending request and
            # frees a granted one, so both states are safe here.
            self._evict_lock.release(lock)
            raise
        try:
            table = self.tables.get(batch.pid)
            if table is None:
                return 0  # process exited while we waited
            # Re-validate: drop victims that were evicted, exited or are
            # now part of an in-flight fault's demand set.  The fancy-
            # index copies are skipped when nothing went stale — the
            # overwhelmingly common case on this hot path.
            pages = batch.pages
            present = table.present[pages]
            if not present.all():
                pages = pages[present]
            counts = self._demand_counts[batch.pid]
            if pages.size:
                demanded = counts[pages]
                if demanded.any():
                    pages = pages[demanded == 0]
            if pages.size == 0:
                return 0

            no_slot_mask = table.swap_slot[pages] < 0
            needs_write = table.dirty[pages] | no_slot_mask
            to_write = pages[needs_write]
            if to_write.size:
                # a page with no swap copy always needs a write, so the
                # no-slot subset of `pages` equals the no-slot subset of
                # `to_write` (same order) — one gather instead of two
                no_slot = pages[no_slot_mask]
                if no_slot.size:
                    new_slots = self.swap.allocate(no_slot.size)
                    table.assign_slots(no_slot, new_slots)
                slots = table.swap_slot[to_write]
                req = self.disk.submit(slots, "write", priority, pid=batch.pid)
                yield req
                if batch.pid not in self.tables:
                    return 0  # process exited during the write
                self.stats.pages_swapped_out += to_write.size
                self._c_pages_out.inc(to_write.size)
                table.mark_clean(to_write)
                # A fault service may have started demanding some of
                # these pages while the write was in flight; they were
                # written (wasted I/O) but must stay resident.
                counts = self._demand_counts[batch.pid]
                demanded = counts[pages]
                if demanded.any():
                    pages = pages[demanded == 0]
                    to_write = to_write[counts[to_write] == 0]
                if pages.size == 0:
                    return 0

            if keep_resident:
                # Background cleaning (§3.4): pages stay in memory, so
                # this is not a flush and must not reach the recorder.
                return 0

            self.stats.pages_discarded += pages.size - to_write.size
            self.stats.evictions += pages.size
            self._c_discarded.inc(pages.size - to_write.size)
            self._c_evictions.inc(pages.size)
            if self.on_flush is not None:
                self.on_flush(batch.pid, pages)
            self._evicted_at[batch.pid][pages] = self.env.now
            self._ever_evicted.add(batch.pid)
            table.evict(pages)
            self.frames.release(pages.size)
            return int(pages.size)
        finally:
            self._evict_lock.release(lock)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _count_refaults(self, pid: int, pages: np.ndarray,
                        now: Optional[float] = None) -> None:
        if pid not in self._ever_evicted:
            return  # nothing evicted yet: no gather needed
        if now is None:
            now = self.env.now
        evicted = self._evicted_at[pid][pages]
        recent = now - evicted < self.refault_window_s
        n = int(np.count_nonzero(recent))
        self.stats.refaults += n
        if n:
            self._c_refaults.inc(n)

    def check_invariants(self) -> None:
        """Cross-structure consistency checks (used by property tests)."""
        resident = self.resident_pages_total()
        assert resident == self.frames.used, (
            f"frame accounting drift: tables={resident} pool={self.frames.used}"
        )
        all_slots = []
        for table in self.tables.values():
            table.check_invariants()
            s = table.swap_slot[table.swap_slot >= 0]
            all_slots.append(s)
        if all_slots:
            merged = np.concatenate(all_slots)
            assert len(np.unique(merged)) == merged.size, (
                "swap slot shared between processes"
            )
            assert merged.size == self.swap.used_slots, (
                f"swap accounting drift: tables={merged.size} "
                f"allocator={self.swap.used_slots}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VMM({self.name}, procs={len(self.tables)}, "
            f"free={self.frames.free}/{self.frames.total})"
        )


__all__ = ["FaultStats", "VirtualMemoryManager"]
