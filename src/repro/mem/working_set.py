"""Working-set size estimation from previous-quantum references.

The paper's aggressive page-out needs "the working set size of the
incoming process", which "the kernel obtains ... using the page
references during the incoming process' previous time quanta" (§3.2,
§3.5).  This estimator snapshots, at each deschedule, how many distinct
pages the process referenced during the quantum that just ended, and
blends it with earlier quanta with an exponential moving average.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.page_table import PageTable


class WorkingSetEstimator:
    """Tracks per-process working-set size across scheduling quanta.

    Parameters
    ----------
    alpha:
        EMA weight of the most recent quantum (1.0 = only the latest).
    """

    def __init__(self, alpha: float = 0.7) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._quantum_start: dict[int, float] = {}
        self._estimate: dict[int, float] = {}

    def begin_quantum(self, pid: int, now: float) -> None:
        """Note that ``pid`` was just scheduled at time ``now``."""
        self._quantum_start[pid] = now

    def end_quantum(self, pid: int, table: PageTable, now: float) -> int:
        """Record the quantum that just ended; returns its distinct-page
        reference count."""
        start = self._quantum_start.pop(pid, None)
        if start is None:
            # Process was never marked scheduled; fall back to everything
            # it has ever touched (epoch-cached view).
            referenced = table.index.touched_count()
        else:
            # Gather over the touched view instead of scanning the full
            # last_ref array: untouched pages sit at -inf < start, so the
            # counts agree exactly.
            touched = table.index.touched_pages()
            referenced = int(
                np.count_nonzero(table.last_ref[touched] >= start)
            )
        prev = self._estimate.get(pid)
        if prev is None or prev <= 0:
            self._estimate[pid] = float(referenced)
        else:
            self._estimate[pid] = (
                self.alpha * referenced + (1 - self.alpha) * prev
            )
        return referenced

    def estimate(self, pid: int, table: Optional[PageTable] = None) -> int:
        """Best working-set-size estimate for ``pid``, in pages.

        Before any quantum has completed, falls back to the number of
        pages the process has ever touched (if a table is supplied) —
        the kernel would similarly have nothing better on first switch.
        """
        est = self._estimate.get(pid)
        if est is not None and est > 0:
            return int(round(est))
        if table is not None:
            return table.index.touched_count()
        return 0

    def forget(self, pid: int) -> None:
        """Drop state for an exited process."""
        self._quantum_start.pop(pid, None)
        self._estimate.pop(pid, None)


__all__ = ["WorkingSetEstimator"]
