"""Per-process page table with vectorised state.

Page state (numpy arrays indexed by virtual page number):

``present``     resident in physical memory
``dirty``       modified since the swap copy was last written
``referenced``  clock/LRU reference bit (cleared by sweeps)
``last_ref``    virtual time of the most recent reference (-inf if never)
``swap_slot``   slot holding the page's swap copy, or -1

Swap-cache semantics (matching Linux 2.2 closely enough for the paper's
mechanisms): a page keeps its swap slot across a page-in, so a *clean*
resident page with a slot can later be discarded without disk I/O —
this is exactly what the §3.4 background writer buys at switch time.
Dirtying a page invalidates (but keeps) the slot; the next page-out
rewrites it in place.
"""

from __future__ import annotations

import numpy as np


class PageTable:
    """State of one process's virtual address space.

    Parameters
    ----------
    pid:
        Process id (node-local).
    num_pages:
        Size of the address space in pages; page numbers are
        ``0..num_pages-1``.
    """

    def __init__(self, pid: int, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        self.pid = pid
        self.num_pages = int(num_pages)
        self.present = np.zeros(self.num_pages, dtype=bool)
        self.dirty = np.zeros(self.num_pages, dtype=bool)
        self.referenced = np.zeros(self.num_pages, dtype=bool)
        self.last_ref = np.full(self.num_pages, -np.inf, dtype=np.float64)
        self.swap_slot = np.full(self.num_pages, -1, dtype=np.int64)
        #: per-process clock hand for sweep-style replacement
        self.clock_hand = 0

    # -- queries -----------------------------------------------------------
    @property
    def resident_count(self) -> int:
        """Resident set size in pages."""
        return int(np.count_nonzero(self.present))

    def resident_pages(self) -> np.ndarray:
        """Page numbers currently resident, ascending."""
        return np.flatnonzero(self.present)

    def swapped_pages(self) -> np.ndarray:
        """Pages that are out of memory but have a swap copy."""
        return np.flatnonzero(~self.present & (self.swap_slot >= 0))

    def touched_pages(self) -> np.ndarray:
        """Pages the process has ever referenced."""
        return np.flatnonzero(self.last_ref > -np.inf)

    def absent(self, pages: np.ndarray) -> np.ndarray:
        """Subset of ``pages`` (order preserved) that are not resident."""
        pages = np.asarray(pages, dtype=np.int64)
        return pages[~self.present[pages]]

    def oldest_resident(self, n: int) -> np.ndarray:
        """Up to ``n`` resident pages with the smallest ``last_ref``."""
        res = self.resident_pages()
        if res.size <= n:
            return res
        ages = self.last_ref[res]
        idx = np.argpartition(ages, n - 1)[:n]
        return res[np.sort(idx)]

    def dirty_resident_pages(self) -> np.ndarray:
        """Resident pages whose swap copy is missing or stale."""
        return np.flatnonzero(self.present & (self.dirty | (self.swap_slot < 0)))

    def clean_resident_pages(self) -> np.ndarray:
        """Resident pages discardable without I/O (valid swap copy)."""
        return np.flatnonzero(self.present & ~self.dirty & (self.swap_slot >= 0))

    # -- mutations ---------------------------------------------------------
    def record_access(self, pages: np.ndarray, now: float,
                      dirty: bool | np.ndarray = False) -> None:
        """Mark ``pages`` referenced at ``now``; optionally dirtied.

        ``dirty`` may be a scalar or a boolean mask aligned with
        ``pages``.  All pages must already be resident.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if not self.present[pages].all():
            raise ValueError("record_access on non-resident page")
        self.referenced[pages] = True
        self.last_ref[pages] = now
        if np.isscalar(dirty) or isinstance(dirty, bool):
            if dirty:
                self.dirty[pages] = True
        else:
            mask = np.asarray(dirty, dtype=bool)
            if mask.shape != pages.shape:
                raise ValueError("dirty mask shape mismatch")
            self.dirty[pages[mask]] = True

    def make_resident(self, pages: np.ndarray) -> None:
        """Flip ``pages`` to present (frames must already be accounted).

        Freshly paged-in or zero-filled pages are clean and referenced.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if self.present[pages].any():
            raise ValueError("make_resident on already-resident page")
        self.present[pages] = True
        self.dirty[pages] = False
        self.referenced[pages] = True

    def evict(self, pages: np.ndarray) -> None:
        """Flip ``pages`` to non-present (slots must be assigned for any
        page that needs a swap copy *before* calling this)."""
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if not self.present[pages].all():
            raise ValueError("evict of non-resident page")
        self.present[pages] = False
        self.referenced[pages] = False
        self.dirty[pages] = False

    def assign_slots(self, pages: np.ndarray, slots: np.ndarray) -> None:
        """Record swap copies for ``pages`` living in ``slots``."""
        pages = np.asarray(pages, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        if pages.shape != slots.shape:
            raise ValueError("pages/slots shape mismatch")
        self.swap_slot[pages] = slots

    def release_slots(self, pages: np.ndarray) -> np.ndarray:
        """Forget swap copies for ``pages``; returns the freed slot ids."""
        pages = np.asarray(pages, dtype=np.int64)
        slots = self.swap_slot[pages]
        if np.any(slots < 0):
            raise ValueError("release_slots on page without a slot")
        self.swap_slot[pages] = -1
        return slots

    def clear_referenced(self, pages: np.ndarray | None = None) -> None:
        """Clear reference bits (a clock sweep step)."""
        if pages is None:
            self.referenced[:] = False
        else:
            self.referenced[np.asarray(pages, dtype=np.int64)] = False

    # -- invariants (used by property tests and debug assertions) ----------
    def check_invariants(self) -> None:
        """Raise AssertionError if internal state is inconsistent."""
        # dirty or referenced implies present
        assert not np.any(self.dirty & ~self.present), "dirty non-resident page"
        assert not np.any(self.referenced & ~self.present), (
            "referenced non-resident page"
        )
        # a non-resident touched page must have a swap copy
        touched = self.last_ref > -np.inf
        assert not np.any(touched & ~self.present & (self.swap_slot < 0)), (
            "touched page neither resident nor on swap"
        )
        # slots are unique where assigned
        slots = self.swap_slot[self.swap_slot >= 0]
        assert len(np.unique(slots)) == slots.size, "duplicate swap slot"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageTable(pid={self.pid}, pages={self.num_pages}, "
            f"resident={self.resident_count})"
        )


__all__ = ["PageTable"]
