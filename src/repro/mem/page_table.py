"""Per-process page table with vectorised state.

Page state (numpy arrays indexed by virtual page number):

``present``     resident in physical memory
``dirty``       modified since the swap copy was last written
``referenced``  clock/LRU reference bit (cleared by sweeps)
``last_ref``    virtual time of the most recent reference (-inf if never)
``swap_slot``   slot holding the page's swap copy, or -1

Swap-cache semantics (matching Linux 2.2 closely enough for the paper's
mechanisms): a page keeps its swap slot across a page-in, so a *clean*
resident page with a slot can later be discarded without disk I/O —
this is exactly what the §3.4 background writer buys at switch time.
Dirtying a page invalidates (but keeps) the slot; the next page-out
rewrites it in place.

Mutation epoch
--------------
Every mutator that changes ``present`` / ``dirty`` / ``swap_slot`` /
``last_ref`` bumps :attr:`PageTable.epoch`; the per-table
:class:`~repro.mem.index.PageIndex` (reachable as :attr:`PageTable.index`)
uses the epoch to cache the resident / dirty / clean / candidate views
between mutations instead of rescanning the arrays.  ``referenced`` and
``clock_hand`` writes do **not** bump the epoch — no cached view reads
them, and the clock policies clear reference bits on every sweep.
State must therefore be mutated through the methods below (or followed
by an explicit epoch bump), never by writing the arrays directly.
"""

from __future__ import annotations

import numpy as np

from repro.mem import index as _index_mode
from repro.mem.index import PageIndex


class PageTable:
    """State of one process's virtual address space.

    Parameters
    ----------
    pid:
        Process id (node-local).
    num_pages:
        Size of the address space in pages; page numbers are
        ``0..num_pages-1``.
    """

    def __init__(self, pid: int, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        self.pid = pid
        self.num_pages = int(num_pages)
        self.present = np.zeros(self.num_pages, dtype=bool)
        self.dirty = np.zeros(self.num_pages, dtype=bool)
        self.referenced = np.zeros(self.num_pages, dtype=bool)
        self.last_ref = np.full(self.num_pages, -np.inf, dtype=np.float64)
        self.swap_slot = np.full(self.num_pages, -1, dtype=np.int64)
        #: per-process clock hand for sweep-style replacement
        self.clock_hand = 0
        #: mutation epoch — bumped by every state-changing method
        self.epoch = 0
        # O(1) resident-set size, maintained by make_resident/evict
        self._resident_count = 0
        #: epoch-cached views (resident / dirty / clean / candidates)
        self.index = PageIndex(self)

    # -- queries -----------------------------------------------------------
    @property
    def resident_count(self) -> int:
        """Resident set size in pages (O(1) — maintained incrementally).

        In scan mode (:func:`repro.mem.index.set_index_enabled` off) the
        count is recomputed from the array, reproducing the pre-index
        cost profile for the identity/benchmark comparison.
        """
        if _index_mode.INDEX_ENABLED:
            return self._resident_count
        return int(np.count_nonzero(self.present))

    def resident_pages(self) -> np.ndarray:
        """Page numbers currently resident, ascending."""
        return self.index.resident_pages()

    def swapped_pages(self) -> np.ndarray:
        """Pages that are out of memory but have a swap copy.

        Not epoch-cached: the set changes with every page-in of the
        faulting process, so a cache would never hit (the read-ahead
        planner restricts the scan to the relevant slot range instead).
        """
        return np.flatnonzero(~self.present & (self.swap_slot >= 0))

    def touched_pages(self) -> np.ndarray:
        """Pages the process has ever referenced."""
        return self.index.touched_pages()

    def absent(self, pages: np.ndarray) -> np.ndarray:
        """Subset of ``pages`` (order preserved) that are not resident."""
        pages = np.asarray(pages, dtype=np.int64)
        return pages[~self.present[pages]]

    def oldest_resident(self, n: int) -> np.ndarray:
        """Up to ``n`` resident pages with the smallest ``last_ref``."""
        res, ages = self.index.candidates()
        if res.size <= n:
            return res
        idx = np.argpartition(ages, n - 1)[:n]
        return res[np.sort(idx)]

    def dirty_resident_pages(self) -> np.ndarray:
        """Resident pages whose swap copy is missing or stale."""
        return self.index.dirty_resident_pages()

    def clean_resident_pages(self) -> np.ndarray:
        """Resident pages discardable without I/O (valid swap copy)."""
        return self.index.clean_resident_pages()

    # -- mutations ---------------------------------------------------------
    def record_access(self, pages: np.ndarray, now: float,
                      dirty: bool | np.ndarray = False) -> None:
        """Mark ``pages`` referenced at ``now``; optionally dirtied.

        ``dirty`` may be a scalar or a boolean mask aligned with
        ``pages``.  All pages must already be resident.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if not self.present[pages].all():
            raise ValueError("record_access on non-resident page")
        self.referenced[pages] = True
        self.last_ref[pages] = now
        if np.isscalar(dirty) or isinstance(dirty, bool):
            if dirty:
                self.dirty[pages] = True
        else:
            mask = np.asarray(dirty, dtype=bool)
            if mask.shape != pages.shape:
                raise ValueError("dirty mask shape mismatch")
            self.dirty[pages[mask]] = True
        self.epoch += 1

    def record_access_runs(
        self,
        runs: list[tuple[np.ndarray, float, "bool | np.ndarray"]],
    ) -> None:
        """Apply a batch of :meth:`record_access` updates in one epoch bump.

        ``runs`` is a list of ``(pages, now, dirty)`` tuples in access
        order; later stamps overwrite earlier ones exactly as the
        per-chunk calls would.  Callers (the steady-state fast path)
        have already verified residency via the vectorised probe, so the
        per-call ``present`` validation is skipped.  The single epoch
        bump at the end preserves the PageIndex contract: cached views
        are only consulted *between* mutations, and the batch is applied
        atomically from the simulation's point of view (no event can
        observe a half-applied run).
        """
        if not runs:
            return
        referenced = self.referenced
        last_ref = self.last_ref
        dirty_arr = self.dirty
        for pages, now, dirty in runs:
            referenced[pages] = True
            last_ref[pages] = now
            if np.isscalar(dirty) or isinstance(dirty, bool):
                if dirty:
                    dirty_arr[pages] = True
            else:
                mask = np.asarray(dirty, dtype=bool)
                if mask.shape != pages.shape:
                    raise ValueError("dirty mask shape mismatch")
                dirty_arr[pages[mask]] = True
        self.epoch += 1

    def set_last_ref(self, pages: np.ndarray, now: float) -> None:
        """Stamp ``last_ref`` only (a fault-time reference: the freshly
        paged-in pages must not look like the oldest in memory)."""
        if len(pages) == 0:
            return
        self.last_ref[pages] = now
        self.epoch += 1

    def set_last_ref_values(self, pages: np.ndarray,
                            values: np.ndarray) -> None:
        """Per-page :meth:`set_last_ref` stamps in one epoch bump.

        The batch-advance tier applies a whole run of fault groups at
        once; each group's pages get that group's waiter-resume time,
        exactly as the per-group calls would have stamped them.
        """
        if len(pages) == 0:
            return
        self.last_ref[pages] = values
        self.epoch += 1

    def make_resident(self, pages: np.ndarray) -> None:
        """Flip ``pages`` to present (frames must already be accounted).

        Freshly paged-in or zero-filled pages are clean and referenced.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if self.present[pages].any():
            raise ValueError("make_resident on already-resident page")
        self.present[pages] = True
        self.dirty[pages] = False
        self.referenced[pages] = True
        self._resident_count += int(pages.size)
        self.epoch += 1

    def evict(self, pages: np.ndarray) -> None:
        """Flip ``pages`` to non-present (slots must be assigned for any
        page that needs a swap copy *before* calling this)."""
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        if not self.present[pages].all():
            raise ValueError("evict of non-resident page")
        self.present[pages] = False
        self.referenced[pages] = False
        self.dirty[pages] = False
        self._resident_count -= int(pages.size)
        self.epoch += 1

    def mark_clean(self, pages: np.ndarray) -> None:
        """Clear dirty bits after a successful swap write-back."""
        if len(pages) == 0:
            return
        self.dirty[pages] = False
        self.epoch += 1

    def assign_slots(self, pages: np.ndarray, slots: np.ndarray) -> None:
        """Record swap copies for ``pages`` living in ``slots``."""
        pages = np.asarray(pages, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        if pages.shape != slots.shape:
            raise ValueError("pages/slots shape mismatch")
        if pages.size == 0:
            return
        self.swap_slot[pages] = slots
        self.epoch += 1

    def release_slots(self, pages: np.ndarray) -> np.ndarray:
        """Forget swap copies for ``pages``; returns the freed slot ids."""
        pages = np.asarray(pages, dtype=np.int64)
        slots = self.swap_slot[pages]
        if np.any(slots < 0):
            raise ValueError("release_slots on page without a slot")
        self.swap_slot[pages] = -1
        if pages.size:
            self.epoch += 1
        return slots

    def clear_referenced(self, pages: np.ndarray | None = None) -> None:
        """Clear reference bits (a clock sweep step; no epoch bump —
        ``referenced`` feeds no cached view)."""
        if pages is None:
            self.referenced[:] = False
        else:
            self.referenced[np.asarray(pages, dtype=np.int64)] = False

    # -- invariants (used by property tests and debug assertions) ----------
    def check_invariants(self) -> None:
        """Raise AssertionError if internal state is inconsistent."""
        # dirty or referenced implies present
        assert not np.any(self.dirty & ~self.present), "dirty non-resident page"
        assert not np.any(self.referenced & ~self.present), (
            "referenced non-resident page"
        )
        # a non-resident touched page must have a swap copy
        touched = self.last_ref > -np.inf
        assert not np.any(touched & ~self.present & (self.swap_slot < 0)), (
            "touched page neither resident nor on swap"
        )
        # slots are unique where assigned
        slots = self.swap_slot[self.swap_slot >= 0]
        assert len(np.unique(slots)) == slots.size, "duplicate swap slot"
        # the O(1) resident count tracks the array
        assert self._resident_count == int(np.count_nonzero(self.present)), (
            f"resident_count drift: cached={self._resident_count} "
            f"actual={int(np.count_nonzero(self.present))}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageTable(pid={self.pid}, pages={self.num_pages}, "
            f"resident={self.resident_count})"
        )


__all__ = ["PageTable"]
