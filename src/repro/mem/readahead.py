"""Swap-in fault planning with read-ahead.

Linux 2.2 services a swap-in fault by reading the faulted page plus a
window of *consecutive swap slots* (default 16 pages, paper §3.3).  The
planner below turns the list of absent pages a phase is about to touch
(in touch order) into a sequence of fault groups:

* **zero-fill groups** — pages never touched before; no disk I/O, just a
  frame and a minor-fault CPU charge;
* **swap-in groups** — the faulted page and every other absent page of
  the same process whose swap slot falls within the read-ahead window
  starting at the faulted page's slot.  Like the kernel's read-ahead,
  this may drag in pages that were not asked for ("pages that may not
  be useful at all", §3.3) — they occupy frames either way.

Keeping the plan in touch order preserves the interleaving between
zero-fill and disk groups, which is what makes the baseline's scattered
page-in bursts visible in the Figure 6 traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mem.page_table import PageTable
from repro.sim import compiled as _compiled


@dataclass
class FaultGroup:
    """One planned fault service: a set of pages made resident together."""

    pages: np.ndarray          # ascending page numbers
    slots: Optional[np.ndarray]  # matching swap slots, or None for zero-fill
    #: the slot *set* is one consecutive run [slot0, slot0+count) — an
    #: exact judgement the planner makes for free from its slot-sorted
    #: view (``slots`` itself is in page order, where a span test alone
    #: is unsound); the batch-advance tier keys its bulk commits on it
    contig: bool = False
    slot0: int = -1            # first slot of the run when contig

    @property
    def is_zero_fill(self) -> bool:
        return self.slots is None

    @property
    def count(self) -> int:
        return int(self.pages.size)


def dedupe_preserve_order(pages: np.ndarray) -> np.ndarray:
    """Drop repeated page numbers, keeping first-occurrence order."""
    pages = np.asarray(pages, dtype=np.int64)
    if pages.size <= 1:
        return pages
    # Touch traces are overwhelmingly strictly ascending sweeps; those
    # are duplicate-free by construction, so skip the unique() sort.
    if bool((pages[1:] > pages[:-1]).all()):
        return pages
    _, first = np.unique(pages, return_index=True)
    return pages[np.sort(first)]


class MonotonePlan:
    """Array form of a monotone :func:`plan_swapins` plan.

    At thrash scale a single touch plans thousands of fault groups;
    materialising a :class:`FaultGroup` per group is the planner's
    dominant cost, and the batch-advance tier immediately re-derives
    arrays from the objects anyway.  The monotone branch therefore
    describes the whole plan with a few arrays; the tier consumes them
    directly (:meth:`VirtualMemoryManager._advance_eager_plan`) and
    :meth:`materialize` builds the exact scalar group list on demand —
    the full list for the scalar path, or just the uncommitted tail
    when the eager driver stops early.

    Group sequence: zero-fill bucket ``k`` (pages
    ``zf_pages[zf_bounds[k]:zf_bounds[k+1]]``, pre-sorted) precedes
    swap group ``k``, which reads slot-map positions
    ``[los[k], his[k])``; bucket ``n_swap`` trails the last group.
    ``firsts``/``sizes``/``contig`` are the per-group head-model
    ingredients (``contig`` is exact: the map is slot-sorted, so
    span == size-1 means one consecutive run).
    """

    __slots__ = ("sw_pages", "sw_slots", "los", "his", "zf_pages",
                 "zf_bounds", "page_asc", "firsts", "sizes", "contig")

    def __init__(self, sw_pages, sw_slots, los, his, zf_pages,
                 zf_bounds, page_asc):
        self.sw_pages = sw_pages
        self.sw_slots = sw_slots
        self.los = los
        self.his = his
        self.zf_pages = zf_pages
        self.zf_bounds = zf_bounds
        self.page_asc = page_asc
        self.firsts = sw_slots[los]
        self.sizes = his - los
        self.contig = (sw_slots[his - 1] - self.firsts) == (self.sizes - 1)

    @property
    def n_swap(self) -> int:
        return int(self.los.size)

    def materialize(self, k_swap: int = 0,
                    zf_from: Optional[int] = None) -> list[FaultGroup]:
        """Group list from swap group ``k_swap`` on, exactly as the
        scalar emission loop would have built it.  ``zf_from`` is the
        first unconsumed zero-fill bucket (defaults to ``k_swap``)."""
        if zf_from is None:
            zf_from = k_swap
        groups: list[FaultGroup] = []
        sw_pages = self.sw_pages
        sw_slots = self.sw_slots
        los = self.los.tolist()
        his = self.his.tolist()
        contig_l = self.contig.tolist()
        firsts_l = self.firsts.tolist()
        zb = self.zf_bounds
        zbl = zb.tolist() if zb is not None else None
        page_asc = self.page_asc
        n = len(los)
        for k in range(k_swap, n):
            if zbl is not None and k >= zf_from and zbl[k] != zbl[k + 1]:
                groups.append(
                    FaultGroup(self.zf_pages[zbl[k]:zbl[k + 1]], None)
                )
            lo = los[k]
            hi = his[k]
            cand_pages = sw_pages[lo:hi]
            cand_slots = sw_slots[lo:hi]
            if page_asc:
                groups.append(FaultGroup(cand_pages, cand_slots,
                                         contig_l[k], firsts_l[k]))
            else:
                idx = np.argsort(cand_pages)
                groups.append(FaultGroup(cand_pages[idx], cand_slots[idx],
                                         contig_l[k], firsts_l[k]))
        if zbl is not None and zf_from <= n and zbl[n] != zbl[n + 1]:
            groups.append(
                FaultGroup(self.zf_pages[zbl[n]:zbl[n + 1]], None)
            )
        return groups


def plan_swapins(
    table: PageTable, demand: np.ndarray, window: int
) -> list[FaultGroup]:
    """Plan fault groups for ``demand`` (absent pages in touch order).

    Parameters
    ----------
    table:
        The faulting process's page table.
    demand:
        Absent pages in the order the process touches them (deduped by
        the caller or not — duplicates are dropped here).
    window:
        Read-ahead window in pages (slots ``[s, s+window)``).

    Returns
    -------
    Groups in touch order.  Groups are pairwise disjoint; their union
    covers ``demand`` and possibly extra read-ahead pages.
    """
    plan = plan_swapins_fused(table, demand, window)
    if isinstance(plan, MonotonePlan):
        return plan.materialize()
    return plan


def plan_swapins_fused(
    table: PageTable, demand: np.ndarray, window: int
):
    """:func:`plan_swapins` returning the array form where possible.

    The monotone fast case comes back as a :class:`MonotonePlan` (call
    :meth:`~MonotonePlan.materialize` for the group list); everything
    else is a plain group list.
    """
    if window <= 0:
        raise ValueError("read-ahead window must be positive")
    demand = dedupe_preserve_order(demand)
    if demand.size == 0:
        return []
    if table.present[demand].any():
        raise ValueError("plan_swapins expects only absent pages")

    demand_slots = table.swap_slot[demand]

    # Reverse map of this process's swapped-out pages, ordered by slot,
    # for the read-ahead window lookup.  Only slots inside
    # [min demand slot, max demand slot + window) can ever fall in a
    # read-ahead window of this plan, so the map is built over that
    # range instead of every swapped page the process owns — with large
    # residual swap footprints this cuts the dominant scan/argsort cost.
    have_swap = demand_slots >= 0
    if have_swap.any():
        lo_slot = int(demand_slots[have_swap].min())
        hi_slot = int(demand_slots.max()) + window
        in_range = (
            (~table.present)
            & (table.swap_slot >= lo_slot)
            & (table.swap_slot < hi_slot)
        )
        swapped = np.flatnonzero(in_range)
        sw_slots = table.swap_slot[swapped]
        order = np.argsort(sw_slots)
        sw_slots = sw_slots[order]
        sw_pages = swapped[order]
        # The per-page window bounds are independent of planning order,
        # so they are batched into two searchsorted calls up front
        # instead of two numpy calls per faulted page.
        los = np.searchsorted(sw_slots, demand_slots, side="left")
        his = np.searchsorted(sw_slots, demand_slots + window, side="left")
    else:
        # Pure zero-fill demand: no swap copies involved at all.
        sw_slots = sw_pages = np.empty(0, dtype=np.int64)
        los = his = np.zeros(demand.size, dtype=np.int64)

    # When the slot map is page-ascending (slots were handed out in
    # page order — the common case), every window slice is already
    # sorted by page and the per-group argsort is skipped.
    page_asc = sw_pages.size < 2 or bool((np.diff(sw_pages) > 0).all())

    # When the swap-backed demand slots ascend (touch order follows
    # slot order — the dominant case for sequential sweeps), the chosen
    # windows [lo, hi) appear with strictly increasing bounds, so the
    # union of earlier windows is exactly [0, last_hi): the coverage
    # test collapses to one integer compare and no window can partially
    # overlap earlier coverage — the bytearray bookkeeping disappears,
    # and the whole plan is built by array ops (one jump per *group*
    # instead of one loop iteration per demanded page).
    swap_slots_seq = demand_slots[have_swap]
    monotone = swap_slots_seq.size < 2 or bool(
        (swap_slots_seq[1:] > swap_slots_seq[:-1]).all()
    )
    if monotone:
        return _plan_monotone(demand, have_swap, sw_pages, sw_slots,
                              los, his, page_asc)

    # Planned-state bookkeeping lives in *slot-index* space: every
    # swap-backed demand page appears exactly once in the sorted slot
    # map (slots are unique), at position ``los[i]`` (its own slot is
    # the first >= itself).  A bytearray over the map gives C-speed
    # scalar skip tests and slice coverage marks; zero-fill pages need
    # no membership test at all (windows only ever absorb swap-backed
    # pages, and the demand list is already deduplicated).
    covered = bytearray(len(sw_pages))
    groups: list[FaultGroup] = []
    zero_acc: list[int] = []

    def flush_zero():
        if zero_acc:
            groups.append(
                FaultGroup(np.asarray(sorted(zero_acc), dtype=np.int64), None)
            )
            zero_acc.clear()

    # single zip drive: three scalar list indexings per page replaced
    # by tuple unpacking (this loop runs once per demanded page and is
    # the planner's dominant cost at thrash scale)
    slot_list = demand_slots.tolist()
    for page, slot, lo, hi in zip(demand.tolist(), slot_list,
                                  los.tolist(), his.tolist()):
        if slot < 0:
            # Never touched: zero-fill.
            zero_acc.append(page)
            continue
        if covered[lo]:
            continue
        flush_zero()
        # Read-ahead: all absent pages with slots in [slot, slot+window).
        cand_pages = sw_pages[lo:hi]
        cand_slots = sw_slots[lo:hi]
        if 1 in covered[lo:hi]:
            keep = np.frombuffer(covered[lo:hi], dtype=np.uint8) == 0
            cand_pages = cand_pages[keep]
            cand_slots = cand_slots[keep]
        covered[lo:hi] = b"\x01" * (hi - lo)
        # judged on the still-slot-sorted candidate view, where the
        # span test is exact
        first = int(cand_slots[0])
        contig = int(cand_slots[-1]) - first == cand_slots.size - 1
        if page_asc:
            groups.append(FaultGroup(cand_pages, cand_slots,
                                     contig, first))
        else:
            idx = np.argsort(cand_pages)
            groups.append(FaultGroup(cand_pages[idx], cand_slots[idx],
                                     contig, first))

    flush_zero()
    return groups


def _plan_monotone(
    demand: np.ndarray,
    have_swap: np.ndarray,
    sw_pages: np.ndarray,
    sw_slots: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    page_asc: bool,
):
    """Array-built plan for the monotone branch of :func:`plan_swapins`.

    Describes exactly the group sequence of the scalar loop it
    replaces: the swap-backed demand pages that *open* a window are
    found by jumping ``lo``-past-previous-``hi`` (monotonicity makes
    ``los`` non-decreasing, so one ``searchsorted`` per emitted group
    lands on the next opener), and zero-fill pages are bucketed —
    sorted within each bucket, as the scalar accumulator did — in
    front of the first later window.  Returns a :class:`MonotonePlan`
    (or a plain group list when there are no swap-backed pages).
    """
    idx_sb = np.flatnonzero(have_swap)
    zf_raw = demand[~have_swap]
    if idx_sb.size == 0:
        if zf_raw.size:
            return [FaultGroup(np.sort(zf_raw), None)]
        return []
    los_sb = los[idx_sb]
    his_sb = his[idx_sb]
    if _compiled.COMPILED_ENABLED:
        chosen = _compiled.monotone_window_starts(
            np.ascontiguousarray(los_sb, dtype=np.int64),
            np.ascontiguousarray(his_sb, dtype=np.int64),
        )
    else:
        chosen = np.zeros(idx_sb.size, dtype=bool)
        n = idx_sb.size
        i = 0
        while i < n:
            chosen[i] = True
            # the next opener is the first later page whose window does
            # not overlap this one (own-slot membership guarantees
            # lo < hi, so the jump always advances)
            i = int(np.searchsorted(los_sb, his_sb[i], side="left"))
    los_c = los_sb[chosen]
    his_c = his_sb[chosen]
    nchosen = los_c.size
    if zf_raw.size:
        # bucket k = zero-fill pages flushed just before chosen group k
        # (touch-order position before that group's); bucket nchosen is
        # the trailing flush.  ``bucket`` is non-decreasing (both index
        # sequences ascend), so a bucket-major stable lexsort equals
        # per-bucket np.sort.
        bucket = np.searchsorted(idx_sb[chosen], np.flatnonzero(~have_swap),
                                 side="left")
        bounds = np.searchsorted(bucket, np.arange(nchosen + 2), side="left")
        zf_pages = zf_raw[np.lexsort((zf_raw, bucket))]
    else:
        bounds = None
        zf_pages = zf_raw
    return MonotonePlan(sw_pages, sw_slots, los_c, his_c, zf_pages,
                        bounds, page_asc)


def plan_block_reads(
    table: PageTable, pages: np.ndarray, max_batch: int
) -> list[FaultGroup]:
    """Plan large block swap-ins for an explicit page list.

    Used by adaptive page-in (§3.3): ``pages`` is the recorded flush
    list; absent pages with swap copies are grouped into batches of up
    to ``max_batch`` in *slot order*, maximising run contiguity on disk.
    Pages already resident (or with no swap copy) are skipped.
    """
    if max_batch <= 0:
        raise ValueError("max_batch must be positive")
    pages = dedupe_preserve_order(pages)
    if pages.size == 0:
        return []
    mask = (~table.present[pages]) & (table.swap_slot[pages] >= 0)
    pages = pages[mask]
    if pages.size == 0:
        return []
    slots = table.swap_slot[pages]
    order = np.argsort(slots, kind="stable")
    pages = pages[order]
    slots = slots[order]
    groups = []
    for i in range(0, pages.size, max_batch):
        p = pages[i : i + max_batch]
        s = slots[i : i + max_batch]
        first = int(s[0])
        contig = int(s[-1]) - first == s.size - 1
        idx = np.argsort(p)
        groups.append(FaultGroup(p[idx], s[idx], contig, first))
    return groups


__all__ = [
    "FaultGroup",
    "MonotonePlan",
    "dedupe_preserve_order",
    "plan_block_reads",
    "plan_swapins",
    "plan_swapins_fused",
]
