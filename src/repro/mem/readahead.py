"""Swap-in fault planning with read-ahead.

Linux 2.2 services a swap-in fault by reading the faulted page plus a
window of *consecutive swap slots* (default 16 pages, paper §3.3).  The
planner below turns the list of absent pages a phase is about to touch
(in touch order) into a sequence of fault groups:

* **zero-fill groups** — pages never touched before; no disk I/O, just a
  frame and a minor-fault CPU charge;
* **swap-in groups** — the faulted page and every other absent page of
  the same process whose swap slot falls within the read-ahead window
  starting at the faulted page's slot.  Like the kernel's read-ahead,
  this may drag in pages that were not asked for ("pages that may not
  be useful at all", §3.3) — they occupy frames either way.

Keeping the plan in touch order preserves the interleaving between
zero-fill and disk groups, which is what makes the baseline's scattered
page-in bursts visible in the Figure 6 traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mem.page_table import PageTable


@dataclass
class FaultGroup:
    """One planned fault service: a set of pages made resident together."""

    pages: np.ndarray          # ascending page numbers
    slots: Optional[np.ndarray]  # matching swap slots, or None for zero-fill

    @property
    def is_zero_fill(self) -> bool:
        return self.slots is None

    @property
    def count(self) -> int:
        return int(self.pages.size)


def dedupe_preserve_order(pages: np.ndarray) -> np.ndarray:
    """Drop repeated page numbers, keeping first-occurrence order."""
    pages = np.asarray(pages, dtype=np.int64)
    if pages.size <= 1:
        return pages
    # Touch traces are overwhelmingly strictly ascending sweeps; those
    # are duplicate-free by construction, so skip the unique() sort.
    if bool((pages[1:] > pages[:-1]).all()):
        return pages
    _, first = np.unique(pages, return_index=True)
    return pages[np.sort(first)]


def plan_swapins(
    table: PageTable, demand: np.ndarray, window: int
) -> list[FaultGroup]:
    """Plan fault groups for ``demand`` (absent pages in touch order).

    Parameters
    ----------
    table:
        The faulting process's page table.
    demand:
        Absent pages in the order the process touches them (deduped by
        the caller or not — duplicates are dropped here).
    window:
        Read-ahead window in pages (slots ``[s, s+window)``).

    Returns
    -------
    Groups in touch order.  Groups are pairwise disjoint; their union
    covers ``demand`` and possibly extra read-ahead pages.
    """
    if window <= 0:
        raise ValueError("read-ahead window must be positive")
    demand = dedupe_preserve_order(demand)
    if demand.size == 0:
        return []
    if table.present[demand].any():
        raise ValueError("plan_swapins expects only absent pages")

    demand_slots = table.swap_slot[demand]
    slot_list = demand_slots.tolist()

    # Reverse map of this process's swapped-out pages, ordered by slot,
    # for the read-ahead window lookup.  Only slots inside
    # [min demand slot, max demand slot + window) can ever fall in a
    # read-ahead window of this plan, so the map is built over that
    # range instead of every swapped page the process owns — with large
    # residual swap footprints this cuts the dominant scan/argsort cost.
    have_swap = demand_slots >= 0
    if have_swap.any():
        lo_slot = int(demand_slots[have_swap].min())
        hi_slot = int(demand_slots.max()) + window
        in_range = (
            (~table.present)
            & (table.swap_slot >= lo_slot)
            & (table.swap_slot < hi_slot)
        )
        swapped = np.flatnonzero(in_range)
        sw_slots = table.swap_slot[swapped]
        order = np.argsort(sw_slots)
        sw_slots = sw_slots[order]
        sw_pages = swapped[order]
        # The per-page window bounds are independent of planning order,
        # so they are batched into two searchsorted calls up front
        # instead of two numpy calls per faulted page.
        los = np.searchsorted(sw_slots, demand_slots, side="left").tolist()
        his = np.searchsorted(
            sw_slots, demand_slots + window, side="left"
        ).tolist()
    else:
        # Pure zero-fill demand: no swap copies involved at all.
        sw_slots = sw_pages = np.empty(0, dtype=np.int64)
        los = his = [0] * len(slot_list)

    # Planned-state bookkeeping lives in *slot-index* space: every
    # swap-backed demand page appears exactly once in the sorted slot
    # map (slots are unique), at position ``los[i]`` (its own slot is
    # the first >= itself).  A bytearray over the map gives C-speed
    # scalar skip tests and slice coverage marks; zero-fill pages need
    # no membership test at all (windows only ever absorb swap-backed
    # pages, and the demand list is already deduplicated).
    covered = bytearray(len(sw_pages))
    # When the slot map is page-ascending (slots were handed out in
    # page order — the common case), every window slice is already
    # sorted by page and the per-group argsort is skipped.
    page_asc = sw_pages.size < 2 or bool((np.diff(sw_pages) > 0).all())
    groups: list[FaultGroup] = []
    zero_acc: list[int] = []

    def flush_zero():
        if zero_acc:
            groups.append(
                FaultGroup(np.asarray(sorted(zero_acc), dtype=np.int64), None)
            )
            zero_acc.clear()

    # When the swap-backed demand slots ascend (touch order follows
    # slot order — the dominant case for sequential sweeps), the chosen
    # windows [lo, hi) appear with strictly increasing bounds, so the
    # union of earlier windows is exactly [0, last_hi): the coverage
    # test collapses to one integer compare and no window can partially
    # overlap earlier coverage — the bytearray bookkeeping disappears.
    swap_slots_seq = demand_slots[have_swap]
    monotone = swap_slots_seq.size < 2 or bool(
        (swap_slots_seq[1:] > swap_slots_seq[:-1]).all()
    )

    # single zip drive: three scalar list indexings per page replaced
    # by tuple unpacking (this loop runs once per demanded page and is
    # the planner's dominant cost at thrash scale)
    if monotone:
        last_hi = 0
        for page, slot, lo, hi in zip(demand.tolist(), slot_list,
                                      los, his):
            if slot < 0:
                # Never touched: zero-fill.
                zero_acc.append(page)
                continue
            if lo < last_hi:
                continue
            flush_zero()
            last_hi = hi
            cand_pages = sw_pages[lo:hi]
            cand_slots = sw_slots[lo:hi]
            if page_asc:
                groups.append(FaultGroup(cand_pages, cand_slots))
            else:
                idx = np.argsort(cand_pages)
                groups.append(FaultGroup(cand_pages[idx], cand_slots[idx]))
        flush_zero()
        return groups

    for page, slot, lo, hi in zip(demand.tolist(), slot_list, los, his):
        if slot < 0:
            # Never touched: zero-fill.
            zero_acc.append(page)
            continue
        if covered[lo]:
            continue
        flush_zero()
        # Read-ahead: all absent pages with slots in [slot, slot+window).
        cand_pages = sw_pages[lo:hi]
        cand_slots = sw_slots[lo:hi]
        if 1 in covered[lo:hi]:
            keep = np.frombuffer(covered[lo:hi], dtype=np.uint8) == 0
            cand_pages = cand_pages[keep]
            cand_slots = cand_slots[keep]
        covered[lo:hi] = b"\x01" * (hi - lo)
        if page_asc:
            groups.append(FaultGroup(cand_pages, cand_slots))
        else:
            idx = np.argsort(cand_pages)
            groups.append(FaultGroup(cand_pages[idx], cand_slots[idx]))

    flush_zero()
    return groups


def plan_block_reads(
    table: PageTable, pages: np.ndarray, max_batch: int
) -> list[FaultGroup]:
    """Plan large block swap-ins for an explicit page list.

    Used by adaptive page-in (§3.3): ``pages`` is the recorded flush
    list; absent pages with swap copies are grouped into batches of up
    to ``max_batch`` in *slot order*, maximising run contiguity on disk.
    Pages already resident (or with no swap copy) are skipped.
    """
    if max_batch <= 0:
        raise ValueError("max_batch must be positive")
    pages = dedupe_preserve_order(pages)
    if pages.size == 0:
        return []
    mask = (~table.present[pages]) & (table.swap_slot[pages] >= 0)
    pages = pages[mask]
    if pages.size == 0:
        return []
    slots = table.swap_slot[pages]
    order = np.argsort(slots, kind="stable")
    pages = pages[order]
    slots = slots[order]
    groups = []
    for i in range(0, pages.size, max_batch):
        p = pages[i : i + max_batch]
        s = slots[i : i + max_batch]
        idx = np.argsort(p)
        groups.append(FaultGroup(p[idx], s[idx]))
    return groups


__all__ = ["FaultGroup", "dedupe_preserve_order", "plan_block_reads", "plan_swapins"]
