"""Swap-in fault planning with read-ahead.

Linux 2.2 services a swap-in fault by reading the faulted page plus a
window of *consecutive swap slots* (default 16 pages, paper §3.3).  The
planner below turns the list of absent pages a phase is about to touch
(in touch order) into a sequence of fault groups:

* **zero-fill groups** — pages never touched before; no disk I/O, just a
  frame and a minor-fault CPU charge;
* **swap-in groups** — the faulted page and every other absent page of
  the same process whose swap slot falls within the read-ahead window
  starting at the faulted page's slot.  Like the kernel's read-ahead,
  this may drag in pages that were not asked for ("pages that may not
  be useful at all", §3.3) — they occupy frames either way.

Keeping the plan in touch order preserves the interleaving between
zero-fill and disk groups, which is what makes the baseline's scattered
page-in bursts visible in the Figure 6 traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mem.page_table import PageTable


@dataclass
class FaultGroup:
    """One planned fault service: a set of pages made resident together."""

    pages: np.ndarray          # ascending page numbers
    slots: Optional[np.ndarray]  # matching swap slots, or None for zero-fill

    @property
    def is_zero_fill(self) -> bool:
        return self.slots is None

    @property
    def count(self) -> int:
        return int(self.pages.size)


def dedupe_preserve_order(pages: np.ndarray) -> np.ndarray:
    """Drop repeated page numbers, keeping first-occurrence order."""
    pages = np.asarray(pages, dtype=np.int64)
    _, first = np.unique(pages, return_index=True)
    return pages[np.sort(first)]


def plan_swapins(
    table: PageTable, demand: np.ndarray, window: int
) -> list[FaultGroup]:
    """Plan fault groups for ``demand`` (absent pages in touch order).

    Parameters
    ----------
    table:
        The faulting process's page table.
    demand:
        Absent pages in the order the process touches them (deduped by
        the caller or not — duplicates are dropped here).
    window:
        Read-ahead window in pages (slots ``[s, s+window)``).

    Returns
    -------
    Groups in touch order.  Groups are pairwise disjoint; their union
    covers ``demand`` and possibly extra read-ahead pages.
    """
    if window <= 0:
        raise ValueError("read-ahead window must be positive")
    demand = dedupe_preserve_order(demand)
    if demand.size == 0:
        return []
    if table.present[demand].any():
        raise ValueError("plan_swapins expects only absent pages")

    # Reverse map of this process's swapped-out pages, ordered by slot,
    # for the read-ahead window lookup.
    swapped = table.swapped_pages()
    sw_slots = table.swap_slot[swapped]
    order = np.argsort(sw_slots)
    sw_slots = sw_slots[order]
    sw_pages = swapped[order]

    planned = np.zeros(table.num_pages, dtype=bool)
    groups: list[FaultGroup] = []
    zero_acc: list[int] = []

    def flush_zero():
        if zero_acc:
            groups.append(
                FaultGroup(np.asarray(sorted(zero_acc), dtype=np.int64), None)
            )
            zero_acc.clear()

    # The per-page window bounds are independent of planning order, so
    # they are batched into two searchsorted calls up front instead of
    # two numpy calls per faulted page (the previous hot spot here).
    demand_slots = table.swap_slot[demand]
    los = np.searchsorted(sw_slots, demand_slots, side="left").tolist()
    his = np.searchsorted(sw_slots, demand_slots + window, side="left").tolist()
    slot_list = demand_slots.tolist()

    for i, page in enumerate(demand.tolist()):
        if planned[page]:
            continue
        if slot_list[i] < 0:
            # Never touched: zero-fill.
            planned[page] = True
            zero_acc.append(page)
            continue
        flush_zero()
        # Read-ahead: all absent pages with slots in [slot, slot+window).
        lo, hi = los[i], his[i]
        cand_pages = sw_pages[lo:hi]
        cand_slots = sw_slots[lo:hi]
        keep = ~planned[cand_pages]
        cand_pages = cand_pages[keep]
        cand_slots = cand_slots[keep]
        planned[cand_pages] = True
        idx = np.argsort(cand_pages)
        groups.append(FaultGroup(cand_pages[idx], cand_slots[idx]))

    flush_zero()
    return groups


def plan_block_reads(
    table: PageTable, pages: np.ndarray, max_batch: int
) -> list[FaultGroup]:
    """Plan large block swap-ins for an explicit page list.

    Used by adaptive page-in (§3.3): ``pages`` is the recorded flush
    list; absent pages with swap copies are grouped into batches of up
    to ``max_batch`` in *slot order*, maximising run contiguity on disk.
    Pages already resident (or with no swap copy) are skipped.
    """
    if max_batch <= 0:
        raise ValueError("max_batch must be positive")
    pages = dedupe_preserve_order(pages)
    if pages.size == 0:
        return []
    mask = (~table.present[pages]) & (table.swap_slot[pages] >= 0)
    pages = pages[mask]
    if pages.size == 0:
        return []
    slots = table.swap_slot[pages]
    order = np.argsort(slots, kind="stable")
    pages = pages[order]
    slots = slots[order]
    groups = []
    for i in range(0, pages.size, max_batch):
        p = pages[i : i + max_batch]
        s = slots[i : i + max_batch]
        idx = np.argsort(p)
        groups.append(FaultGroup(p[idx], s[idx]))
    return groups


__all__ = ["FaultGroup", "dedupe_preserve_order", "plan_block_reads", "plan_swapins"]
