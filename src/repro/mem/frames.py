"""Physical frame accounting with reclaim watermarks.

Frames are fungible in this model — what matters to every policy is the
*count* of free frames relative to the ``freepages.min`` / ``.high``
watermarks (paper §2), not which frame holds which page.
"""

from __future__ import annotations


class OutOfFramesError(Exception):
    """Raised when an allocation would exceed physical memory.

    The VMM is expected to reclaim before allocating; reaching this
    error indicates a policy bug, so it is loud rather than silent.
    """


class FramePool:
    """Counts free/used physical frames and exposes watermark tests."""

    def __init__(self, total: int, freepages_min: int, freepages_high: int) -> None:
        if total <= 0:
            raise ValueError("total frames must be positive")
        if not (0 <= freepages_min <= freepages_high <= total):
            raise ValueError("invalid watermarks")
        self.total = total
        self.freepages_min = freepages_min
        self.freepages_high = freepages_high
        self._free = total

    @property
    def free(self) -> int:
        """Currently free frames."""
        return self._free

    @property
    def used(self) -> int:
        return self.total - self._free

    def allocate(self, n: int) -> None:
        """Take ``n`` frames; raises :class:`OutOfFramesError` if short."""
        if n < 0:
            raise ValueError("cannot allocate a negative frame count")
        if n > self._free:
            raise OutOfFramesError(
                f"requested {n} frames with only {self._free} free"
            )
        self._free -= n

    def release(self, n: int) -> None:
        """Return ``n`` frames to the pool."""
        if n < 0:
            raise ValueError("cannot release a negative frame count")
        if self._free + n > self.total:
            raise ValueError(
                f"releasing {n} frames would exceed total {self.total}"
            )
        self._free += n

    # -- watermark tests ---------------------------------------------------
    def below_min(self, incoming: int = 0) -> bool:
        """Would free frames drop below ``freepages.min`` after taking
        ``incoming`` more frames?"""
        return self._free - incoming < self.freepages_min

    def deficit_to_high(self, incoming: int = 0) -> int:
        """Frames that must be reclaimed to reach ``freepages.high``
        after also allocating ``incoming`` frames."""
        return max(0, self.freepages_high + incoming - self._free)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FramePool(free={self._free}/{self.total})"


__all__ = ["FramePool", "OutOfFramesError"]
