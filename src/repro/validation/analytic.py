"""Closed-form cost expectations for the disk/paging models.

Each function mirrors one documented behaviour:

* :func:`expected_transfer_s` — the §1 disk model: one positioning per
  discontiguous run plus streaming transfer;
* :func:`expected_demand_pagein_s` — a demand-paged working set read
  with the kernel's read-ahead window (one I/O per window);
* :func:`expected_block_pagein_s` — the same pages read by adaptive
  page-in's large batches;
* :func:`expected_switch_paging_s` — a whole coordinated switch: writes
  for the outgoing dirty set plus reads for the incoming set, under
  either the original or the adaptive policy;
* :func:`amortization_ratio` — the per-page cost advantage of block
  transfers, the single number the paper's whole design leans on.
"""

from __future__ import annotations

import math

from repro.disk.device import DiskParams


def expected_transfer_s(params: DiskParams, npages: int, nruns: int,
                        continues: bool = False) -> float:
    """Service time of one request: ``nruns`` discontiguous runs of
    ``npages`` total pages (``continues``: first run follows the head)."""
    if npages <= 0 or nruns <= 0 or nruns > npages:
        raise ValueError("need 0 < nruns <= npages")
    seeks = nruns - (1 if continues else 0)
    return (
        params.overhead_s
        + seeks * params.positioning_s
        + npages * params.page_transfer_s
    )


def expected_demand_pagein_s(params: DiskParams, npages: int,
                             readahead: int,
                             sequential: bool = False) -> float:
    """Reading ``npages`` via demand faults with a read-ahead window.

    ``sequential=False`` (the general case): every fault's window lands
    somewhere else on the swap area, so each I/O pays a positioning.
    ``sequential=True``: the swap layout is contiguous and the access
    order matches it (an undisturbed sweep re-read), so consecutive
    windows stream and only the first I/O positions the head.
    """
    if readahead <= 0:
        raise ValueError("readahead must be positive")
    nio = math.ceil(npages / readahead)
    positionings = 1 if sequential else nio
    return (
        nio * params.overhead_s
        + positionings * params.positioning_s
        + npages * params.page_transfer_s
    )


def expected_block_pagein_s(params: DiskParams, npages: int,
                            batch: int, sequential: bool = False) -> float:
    """Reading ``npages`` in adaptive page-in batches of ``batch``.

    ``sequential`` as in :func:`expected_demand_pagein_s` — adaptive
    page-in reads in slot order, so its batches stream whenever the
    flush laid the pages out contiguously (the aggressive page-out
    case).
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    nio = math.ceil(npages / batch)
    positionings = 1 if sequential else nio
    return (
        nio * params.overhead_s
        + positionings * params.positioning_s
        + npages * params.page_transfer_s
    )


def expected_switch_paging_s(
    params: DiskParams,
    ws_in_pages: int,
    out_dirty_pages: int,
    adaptive: bool,
    readahead: int = 16,
    batch: int = 256,
    cluster: int = 32,
    interleave_penalty: float = 1.0,
) -> float:
    """One coordinated switch's paging time.

    Original policy: the outgoing dirty set leaves in ``cluster``-page
    writes interleaved with ``readahead``-page reads — every I/O pays a
    positioning, scaled by ``interleave_penalty`` (>1 when read/write
    alternation destroys locality).  Adaptive: one block write stream
    plus one block read stream of ``batch`` pages per I/O.
    """
    if adaptive:
        writes = expected_block_pagein_s(params, out_dirty_pages, batch) \
            if out_dirty_pages else 0.0
        reads = expected_block_pagein_s(params, ws_in_pages, batch) \
            if ws_in_pages else 0.0
        return writes + reads
    w = expected_block_pagein_s(params, out_dirty_pages, cluster) \
        if out_dirty_pages else 0.0
    r = expected_demand_pagein_s(params, ws_in_pages, readahead) \
        if ws_in_pages else 0.0
    return interleave_penalty * (w + r)


def amortization_ratio(params: DiskParams, batch: int,
                       scattered: int = 1) -> float:
    """Per-page cost of ``scattered``-page I/Os over ``batch``-page I/Os."""
    small = expected_transfer_s(params, scattered, 1) / scattered
    big = expected_transfer_s(params, batch, 1) / batch
    return small / big


__all__ = [
    "amortization_ratio",
    "expected_block_pagein_s",
    "expected_demand_pagein_s",
    "expected_switch_paging_s",
    "expected_transfer_s",
]
