"""Analytic validation of the simulation models.

Closed-form expectations for the disk and paging models, used by the
test suite to verify that the simulator's arithmetic matches the
stated model exactly (transfer times) or within modelling tolerance
(whole switch bursts).  Keeping these as a public module also documents
the cost model a downstream user is simulating under.
"""

from repro.validation.analytic import (
    amortization_ratio,
    expected_block_pagein_s,
    expected_demand_pagein_s,
    expected_switch_paging_s,
    expected_transfer_s,
)

__all__ = [
    "amortization_ratio",
    "expected_block_pagein_s",
    "expected_demand_pagein_s",
    "expected_switch_paging_s",
    "expected_transfer_s",
]
