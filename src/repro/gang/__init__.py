"""Gang scheduling substrate.

A user-level gang scheduler in the paper's architecture (Fig. 5): it
stops the outgoing job's processes on every node (SIGSTOP), invokes the
adaptive-paging API, resumes the incoming job (SIGCONT), and repeats
every time quantum.  A batch scheduler (jobs run back to back) provides
the paper's ``batch`` baseline that defines switching overhead.
"""

from repro.gang.admission import AdmissionGangScheduler
from repro.gang.job import Job, JobProcess
from repro.gang.matrix import MatrixGangScheduler, ScheduleMatrix
from repro.gang.scheduler import BatchScheduler, GangScheduler
from repro.gang.signals import ProcessControl

__all__ = [
    "AdmissionGangScheduler",
    "BatchScheduler",
    "GangScheduler",
    "Job",
    "JobProcess",
    "MatrixGangScheduler",
    "ProcessControl",
    "ScheduleMatrix",
]
