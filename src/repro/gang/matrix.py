"""Ousterhout-style scheduling matrix and the general gang scheduler.

The two-job round-robin of :class:`~repro.gang.scheduler.GangScheduler`
is what the paper's experiments need, but a production gang scheduler
keeps a *scheduling matrix*: rows are time slots, columns are nodes, and
a cell names the job whose process runs on that node during that row's
quantum (paper Fig. 5's "scheduling table"; Feitelson & Rudolph [2]).
Several jobs occupying disjoint node subsets can share a row.

:class:`ScheduleMatrix` is the data structure (placement, removal, row
compaction); :class:`MatrixGangScheduler` rotates rows, driving the
same per-node adaptive-paging switch protocol as the two-job scheduler.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gang.job import Job
from repro.sim.engine import AnyOf, Environment, Process


class ScheduleMatrix:
    """Rows × nodes placement of gang-scheduled jobs.

    Nodes are identified by index 0..ncols-1; each row maps node index
    to the job running there (or None).
    """

    def __init__(self, ncols: int) -> None:
        if ncols < 1:
            raise ValueError("matrix needs at least one column")
        self.ncols = ncols
        self._rows: list[list[Optional[Job]]] = []

    # -- queries -----------------------------------------------------------
    @property
    def nrows(self) -> int:
        return len(self._rows)

    def row_jobs(self, r: int) -> list[Job]:
        """Distinct jobs in row ``r`` (left-to-right order)."""
        seen: list[Job] = []
        for cell in self._rows[r]:
            if cell is not None and cell not in seen:
                seen.append(cell)
        return seen

    def job_at(self, r: int, col: int) -> Optional[Job]:
        """The job occupying cell (row, column), if any."""
        return self._rows[r][col]

    def row_of(self, job: Job) -> Optional[int]:
        """The row hosting ``job``, or None if not placed."""
        for r, row in enumerate(self._rows):
            if job in row:
                return r
        return None

    def utilization(self) -> float:
        """Fraction of matrix cells occupied (1.0 = perfectly packed)."""
        if not self._rows:
            return 0.0
        filled = sum(
            1 for row in self._rows for cell in row if cell is not None
        )
        return filled / (self.nrows * self.ncols)

    # -- placement -----------------------------------------------------------
    def place(self, job: Job, columns: Sequence[int]) -> int:
        """Place ``job`` on ``columns`` in the first row where they are
        all free (first-fit); opens a new row if none fits.  Returns the
        row index."""
        cols = sorted(set(columns))
        if not cols:
            raise ValueError("job needs at least one column")
        if cols[0] < 0 or cols[-1] >= self.ncols:
            raise ValueError("column out of range")
        if self.row_of(job) is not None:
            raise ValueError(f"{job.name} already placed")
        for r, row in enumerate(self._rows):
            if all(row[c] is None for c in cols):
                for c in cols:
                    row[c] = job
                return r
        self._rows.append([None] * self.ncols)
        for c in cols:
            self._rows[-1][c] = job
        return self.nrows - 1

    def remove(self, job: Job) -> None:
        """Remove ``job``; drops rows that become empty."""
        r = self.row_of(job)
        if r is None:
            raise KeyError(f"{job.name} not in matrix")
        row = self._rows[r]
        for c in range(self.ncols):
            if row[c] is job:
                row[c] = None
        if all(cell is None for cell in row):
            del self._rows[r]

    def compact(self) -> int:
        """Greedy row compaction: try to merge each row's jobs down into
        earlier rows (alternate scheduling [2] simplified).  Returns the
        number of rows eliminated."""
        eliminated = 0
        r = 1
        while r < self.nrows:
            row = self._rows[r]
            moved_all = True
            for job in self.row_jobs(r):
                cols = [c for c in range(self.ncols) if row[c] is job]
                target = None
                for r2 in range(r):
                    if all(self._rows[r2][c] is None for c in cols):
                        target = r2
                        break
                if target is None:
                    moved_all = False
                    continue
                for c in cols:
                    self._rows[target][c] = job
                    row[c] = None
            if moved_all and all(cell is None for cell in row):
                del self._rows[r]
                eliminated += 1
            else:
                r += 1
        return eliminated

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lines = []
        for row in self._rows:
            lines.append(
                " | ".join(
                    (cell.name[:8] if cell else "-").ljust(8) for cell in row
                )
            )
        return "\n".join(lines) or "<empty matrix>"


class MatrixGangScheduler:
    """Rotates the rows of a :class:`ScheduleMatrix` every quantum.

    Each row switch runs the per-node adaptive-paging protocol for every
    (outgoing job, incoming job) pair on each node, then resumes all of
    the incoming row's jobs together.  A job's completion removes it
    from the matrix; empty rows disappear and the matrix is re-compacted
    so the machine never idles on a hole.
    """

    def __init__(
        self,
        env: Environment,
        nodes: Sequence,
        matrix: ScheduleMatrix,
        quantum_s: float = 300.0,
        on_switch=None,
        accept_arrivals: bool = False,
    ) -> None:
        if quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        if matrix.ncols != len(nodes):
            raise ValueError("matrix width must match node count")
        self.env = env
        self.nodes = list(nodes)
        self.matrix = matrix
        self.quantum_s = quantum_s
        self.on_switch = on_switch
        self.rotations = 0
        self.proc: Optional[Process] = None
        #: open-system mode: an empty matrix waits for submissions
        #: (close() ends the run) instead of terminating immediately
        self._accepting = accept_arrivals
        self._arrival_event = env.event()

    def start(self) -> Process:
        """Launch the rotation loop."""
        if self.proc is not None:
            raise RuntimeError("scheduler already started")
        self.proc = self.env.process(self._run())
        return self.proc

    # -- open-system submission ------------------------------------------------
    def submit(self, job: Job, columns: Sequence[int]) -> int:
        """Place a newly arrived job and wake the scheduler if idle."""
        row = self.matrix.place(job, columns)
        ev, self._arrival_event = self._arrival_event, self.env.event()
        if not ev.triggered:
            ev.succeed()
        return row

    def close(self) -> None:
        """No further submissions: the run ends when the matrix drains."""
        self._accepting = False
        ev, self._arrival_event = self._arrival_event, self.env.event()
        if not ev.triggered:
            ev.succeed()

    # -- control loop --------------------------------------------------------
    def _run(self):
        env = self.env
        current_row_jobs: list[Job] = []
        r = 0
        while self.matrix.nrows > 0 or self._accepting:
            if self.matrix.nrows == 0:
                # idle open system: park until a submission (or close)
                yield self._arrival_event
                continue
            self.matrix.compact()
            if self.matrix.nrows == 0:
                break
            r = r % self.matrix.nrows
            incoming = self.matrix.row_jobs(r)
            if set(incoming) != set(current_row_jobs):
                yield from self._switch(current_row_jobs, incoming, r)
                current_row_jobs = incoming
            self.rotations += 1
            waits = [env.timeout(self.quantum_s)]
            waits += [job.done for job in incoming if not job.finished]
            yield AnyOf(env, waits)
            for job in list(incoming):
                if job.finished and self.matrix.row_of(job) is not None:
                    self.matrix.remove(job)
            current_row_jobs = [j for j in current_row_jobs if not j.finished]
            r += 1

    def _switch(self, out_jobs: list[Job], in_jobs: list[Job], row: int):
        env = self.env
        # stop every job leaving the machine
        for job in out_jobs:
            if job not in in_jobs and not job.finished:
                job.stop()
                for proc in job.processes:
                    proc.node.adaptive.stop_bgwrite()
                    if proc.pid in proc.node.vmm.tables:
                        proc.node.adaptive.notify_descheduled(proc.pid)
        # per-node paging fragments for every incoming job
        fragments = []
        for job in in_jobs:
            if job in out_jobs or job.finished:
                continue
            for proc in job.processes:
                node = proc.node
                col = self.nodes.index(node)
                out_job = self._outgoing_on(out_jobs, node)
                out_pid = -1
                if out_job is not None and not out_job.finished:
                    try:
                        out_pid = out_job.process_on(node).pid
                    except KeyError:
                        out_pid = -1
                fragments.append(
                    env.process(
                        self._switch_node(node, proc.pid, out_pid)
                    )
                )
        if fragments:
            yield env.all_of(fragments)
        for job in in_jobs:
            if job not in out_jobs and not job.finished:
                for proc in job.processes:
                    proc.node.adaptive.notify_scheduled(proc.pid)
                job.cont()
        if self.on_switch is not None:
            self.on_switch(row, [j.name for j in in_jobs])

    @staticmethod
    def _outgoing_on(out_jobs: list[Job], node) -> Optional[Job]:
        for job in out_jobs:
            for proc in job.processes:
                if proc.node is node:
                    return job
        return None

    def _switch_node(self, node, in_pid: int, out_pid: int):
        ap = node.adaptive
        ws = ap.working_set_estimate(in_pid)
        yield from ap.adaptive_page_out(in_pid, out_pid, ws)
        yield from ap.adaptive_page_in(in_pid, out_pid, ws)


__all__ = ["MatrixGangScheduler", "ScheduleMatrix"]
