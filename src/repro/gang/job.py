"""Parallel jobs and their per-node processes.

A :class:`Job` is one application instance: one :class:`JobProcess` per
node (SPMD), coupled by a barrier for parallel runs.  Each process
executes its workload's phase list against its node's VMM: fault the
phase's pages in, burn CPU (interruptible by the gang scheduler), and
synchronise at barrier phases.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.cluster.mpi import Barrier
from repro.cluster.network import NetworkParams
from repro.cluster.node import Node
from repro.faults.errors import DiskFailure
from repro.gang.signals import ProcessControl
from repro.sim import fastpath as _fastpath
from repro.sim.engine import Environment, Event
from repro.sim.rng import RngStreams
from repro.workloads.base import Workload, expand_phase

#: most chunks one coalesced resident run may span (bounds the rollback
#: bookkeeping kept alive across a burst)
_MAX_RUN_CHUNKS = 256


class JobProcess:
    """One rank of a job, pinned to one node."""

    def __init__(
        self,
        job: "Job",
        rank: int,
        node: Node,
        workload: Workload,
        rng: np.random.Generator,
    ) -> None:
        self.job = job
        self.rank = rank
        self.node = node
        self.workload = workload
        self.rng = rng
        self.pid = job.jid
        self.control = ProcessControl(node.env, start_stopped=True)
        self.finished_at: Optional[float] = None
        node.vmm.register_process(self.pid, workload.footprint_pages)
        self.proc = node.env.process(self._run())
        self.control.bind(self.proc)

    def _run(self):
        env = self.node.env
        vmm = self.node.vmm
        barrier = self.job.barrier
        control = self.control
        phases = self.workload.phases(self.rng)
        # chunks pulled off the phase generator by the run builder's
        # lookahead but not yet executed (the workload's RNG stream is
        # private to this rank, so drawing phases early yields the same
        # sequence the per-chunk loop would see)
        pending: deque = deque()
        try:
            while True:
                if pending:
                    phase, pages, dirty = pending.popleft()
                else:
                    try:
                        phase = next(phases)
                    except StopIteration:
                        break
                    pages, dirty = expand_phase(phase)
                yield from control.wait_runnable()
                if _fastpath.ENABLED:
                    # one residency probe decides everything: a fully-
                    # resident chunk is consumed by _resident_run
                    # (batched or single-chunk), a faulting one falls
                    # straight through to the generator fault path
                    ran = yield from self._resident_run(
                        phase, pages, dirty, phases, pending
                    )
                    if ran:
                        continue
                if pages.size:
                    yield from vmm.touch(self.pid, pages, dirty)
                if phase.cpu_s > 0:
                    # a straggling node burns CPU slower this quantum
                    yield from control.cpu(
                        phase.cpu_s * self.node.slowdown
                    )
                if phase.barrier and barrier is not None:
                    yield from barrier.wait(self.rank, payload_s=phase.comm_s)
        except DiskFailure as exc:
            # Unrecoverable paging I/O (the device exhausted its retry
            # budget): this rank dies and takes the job with it, so the
            # rest of the schedule proceeds instead of deadlocking at
            # the gang's next barrier.
            self.job._rank_failed(self, exc)
            return
        self.finished_at = env.now
        # process exit: free memory and swap, drop estimator state
        vmm.unregister_process(self.pid)
        ap = self.node.adaptive
        ap.ws.forget(self.pid)
        if ap.recorder is not None:
            ap.recorder.clear(self.pid)
        self.job._rank_done(self)

    def _resident_run(self, phase, pages, dirty, phases, pending):
        """Process fragment: try to execute a coalesced resident run.

        Starting from ``(phase, pages, dirty)``, greedily accumulates
        consecutive fully-resident chunks and burns their summed CPU
        time in **one** timeout, then applies the page-reference stamps
        the per-chunk path would have written (same per-chunk start
        timestamps, one epoch bump).  Returns ``True`` when the chunk
        was consumed, ``False`` when it is not fully resident (or
        oversized) — nothing touched, the caller falls back to the
        generator fault path.

        The chunk's residency is probed exactly once.  When batching is
        gated off (VMM busy, background writer active, or no room
        before a deadline) a fully-resident chunk is still executed
        here, immediately and un-deferred: reference stamp at the
        current time, the legacy CPU loop, the barrier — the per-chunk
        path's exact behaviour, since ``touch`` performs zero yields
        for a fully-resident chunk.

        Deferred stamping is only sound while no other process fragment
        can observe page state mid-run, so a run is attempted only when
        the VMM is quiescent and the background writer is off, and it
        must end strictly before both scheduler-published deadlines
        (background-writer arm time and quantum cap — the latter because
        a chunk starting after the quantum boundary re-reads the node
        slowdown in the per-chunk path).  A ``stop()`` landing mid-burst
        rolls the run back to the interrupt instant: chunks the
        per-chunk path would have started are stamped and charged
        (identical float expressions), the interrupted chunk's remainder
        is finished through the legacy CPU loop, and unstarted chunks
        are pushed back for the outer loop.
        """
        node = self.node
        vmm = node.vmm
        ap = node.adaptive
        env = node.env
        control = self.control
        barrier = self.job.barrier

        table = vmm.tables[self.pid]
        if pages.size:
            if (pages.size > vmm.params.total_frames
                    - vmm.params.freepages_high
                    or not table.present[pages].all()):
                # oversized chunks fall through so ``touch`` raises its
                # informative error exactly as the per-chunk path would
                return False

        t0 = env.now
        slowdown = node.slowdown
        d0 = phase.cpu_s * slowdown
        batch = vmm.fastpath_quiescent()
        if batch:
            bg = ap.bgwriter
            batch = bg is None or not bg.active
        if batch:
            deadline = ap.bg_arm_at if ap.bg_arm_at < ap.run_cap_at \
                else ap.run_cap_at
            t = t0 + d0
            batch = t < deadline
        if not batch:
            # single-chunk immediate path (always legacy-identical)
            if pages.size:
                table.record_access(pages, t0, dirty)
            if phase.cpu_s > 0:
                yield from control.cpu(phase.cpu_s * slowdown)
            if phase.barrier and barrier is not None:
                yield from barrier.wait(self.rank, payload_s=phase.comm_s)
            return True
        chunks = [(phase, pages, dirty)]
        starts = [t0]
        durs = [d0]
        # extend the run while the next chunk is fully resident and its
        # end stays strictly inside the deadline; a barrier chunk may
        # only close a run (the wait happens after the burst)
        if not (phase.barrier and barrier is not None):
            while len(chunks) < _MAX_RUN_CHUNKS:
                if not pending:
                    try:
                        p2 = next(phases)
                    except StopIteration:
                        break
                    pg2, dt2 = expand_phase(p2)
                    pending.append((p2, pg2, dt2))
                p2, pg2, dt2 = pending[0]
                d2 = p2.cpu_s * slowdown
                t2 = t + d2
                if not t2 < deadline:
                    break
                if pg2.size and not table.present[pg2].all():
                    break
                pending.popleft()
                chunks.append((p2, pg2, dt2))
                starts.append(t)
                durs.append(d2)
                t = t2
                if p2.barrier and barrier is not None:
                    break
        t_end = t

        t_int = None
        if t_end > t0:
            t_int = yield from control.cpu_until(t_end)

        if t_int is None:
            # run completed: charge and stamp every chunk exactly as
            # the per-chunk path would have (same floats, same order)
            for d in durs:
                if d > 0:
                    control.cpu_consumed_s += d
            runs = [(pg, starts[k], dt)
                    for k, (_p, pg, dt) in enumerate(chunks) if pg.size]
            if runs:
                table.record_access_runs(runs)
            last = chunks[-1][0]
            if last.barrier and barrier is not None:
                yield from barrier.wait(self.rank, payload_s=last.comm_s)
            return True

        # interrupted at t_int: the per-chunk path would have started
        # every chunk with start < t_int; at t_int == t0 it runs
        # synchronously through leading zero-CPU chunks and sleeps on
        # the first positive one (the URGENT interrupt beats the NORMAL
        # chunk timeout at equal times, so a chunk starting exactly at
        # t_int is never entered)
        if t_int == t0:
            j = 0
            while durs[j] == 0:
                j += 1
        else:
            j = len(chunks) - 1
            while starts[j] >= t_int:
                j -= 1
        runs = [(pg, starts[k], dt)
                for k, (_p, pg, dt) in enumerate(chunks[:j + 1])
                if pg.size]
        if runs:
            table.record_access_runs(runs)
        for k in range(j):
            if durs[k] > 0:
                control.cpu_consumed_s += durs[k]
        used = t_int - starts[j]
        control.cpu_consumed_s += used
        rem = durs[j] - used
        for k in range(len(chunks) - 1, j, -1):
            pending.appendleft(chunks[k])
        yield from control._cpu_loop(rem)
        pj = chunks[j][0]
        if pj.barrier and barrier is not None:
            yield from barrier.wait(self.rank, payload_s=pj.comm_s)
        return True


class Job:
    """A gang-scheduled application: one process per node."""

    _next_jid = 1

    def __init__(
        self,
        name: str,
        nodes: Sequence[Node],
        workloads: Sequence[Workload],
        rngs: RngStreams,
        network: Optional[NetworkParams] = None,
        jid: Optional[int] = None,
    ) -> None:
        if len(nodes) != len(workloads):
            raise ValueError("need exactly one workload per node")
        if not nodes:
            raise ValueError("job needs at least one node")
        envs = {n.env for n in nodes}
        if len(envs) != 1:
            raise ValueError("all nodes must share one environment")
        self.env: Environment = nodes[0].env
        self.name = name
        if jid is None:
            jid = Job._next_jid
            Job._next_jid += 1
        self.jid = jid
        self.nodes = list(nodes)
        self.barrier = (
            Barrier(self.env, len(nodes), network, name=f"{name}.barrier")
            if len(nodes) > 1
            else None
        )
        self.done: Event = self.env.event()
        self.completed_at: Optional[float] = None
        #: set when the job was evicted (node crash / rank I/O failure)
        self.failed = False
        self.failure: Optional[str] = None
        self.failed_at: Optional[float] = None
        self._remaining = len(nodes)
        self.processes = [
            JobProcess(self, rank, node, wl, rngs.stream(f"{name}.r{rank}"))
            for rank, (node, wl) in enumerate(zip(nodes, workloads))
        ]

    # -- gang control ------------------------------------------------------
    def stop(self) -> None:
        """SIGSTOP every rank."""
        for p in self.processes:
            p.control.stop()

    def cont(self) -> None:
        """SIGCONT every rank (a no-op once the job was evicted)."""
        if self.failed:
            return
        for p in self.processes:
            p.control.cont()

    def terminate(self, cause) -> None:
        """Evict the job: stop every rank and mark it failed.

        Used when a node dies or a rank hits a permanent I/O failure.
        Ranks blocked at the job's own barrier stay suspended forever
        (they hold no scheduled events, so they cannot stall the run);
        the ``done`` event fires so any waiting scheduler proceeds.
        """
        if self.finished:
            return
        self.failed = True
        self.failure = str(cause)
        self.failed_at = self.env.now
        self.stop()
        self.done.succeed(None)

    @property
    def finished(self) -> bool:
        """True once the job completed *or* was evicted."""
        return self.completed_at is not None or self.failed

    def process_on(self, node: Node) -> JobProcess:
        """The rank of this job running on ``node``."""
        for p in self.processes:
            if p.node is node:
                return p
        raise KeyError(f"{self.name} has no process on {node.name}")

    def _rank_done(self, proc: JobProcess) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.failed:
            self.completed_at = self.env.now
            self.done.succeed(self.completed_at)

    def _rank_failed(self, proc: JobProcess, exc: BaseException) -> None:
        self.terminate(f"rank {proc.rank} on {proc.node.name}: {exc}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Job({self.name}, jid={self.jid}, nodes={len(self.nodes)})"


__all__ = ["Job", "JobProcess"]
