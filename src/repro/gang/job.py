"""Parallel jobs and their per-node processes.

A :class:`Job` is one application instance: one :class:`JobProcess` per
node (SPMD), coupled by a barrier for parallel runs.  Each process
executes its workload's phase list against its node's VMM: fault the
phase's pages in, burn CPU (interruptible by the gang scheduler), and
synchronise at barrier phases.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.mpi import Barrier
from repro.cluster.network import NetworkParams
from repro.cluster.node import Node
from repro.faults.errors import DiskFailure
from repro.gang.signals import ProcessControl
from repro.sim.engine import Environment, Event
from repro.sim.rng import RngStreams
from repro.workloads.base import Workload, expand_phase


class JobProcess:
    """One rank of a job, pinned to one node."""

    def __init__(
        self,
        job: "Job",
        rank: int,
        node: Node,
        workload: Workload,
        rng: np.random.Generator,
    ) -> None:
        self.job = job
        self.rank = rank
        self.node = node
        self.workload = workload
        self.rng = rng
        self.pid = job.jid
        self.control = ProcessControl(node.env, start_stopped=True)
        self.finished_at: Optional[float] = None
        node.vmm.register_process(self.pid, workload.footprint_pages)
        self.proc = node.env.process(self._run())
        self.control.bind(self.proc)

    def _run(self):
        env = self.node.env
        vmm = self.node.vmm
        barrier = self.job.barrier
        try:
            for phase in self.workload.phases(self.rng):
                yield from self.control.wait_runnable()
                pages, dirty = expand_phase(phase)
                if pages.size:
                    yield from vmm.touch(self.pid, pages, dirty)
                if phase.cpu_s > 0:
                    # a straggling node burns CPU slower this quantum
                    yield from self.control.cpu(
                        phase.cpu_s * self.node.slowdown
                    )
                if phase.barrier and barrier is not None:
                    yield from barrier.wait(self.rank, payload_s=phase.comm_s)
        except DiskFailure as exc:
            # Unrecoverable paging I/O (the device exhausted its retry
            # budget): this rank dies and takes the job with it, so the
            # rest of the schedule proceeds instead of deadlocking at
            # the gang's next barrier.
            self.job._rank_failed(self, exc)
            return
        self.finished_at = env.now
        # process exit: free memory and swap, drop estimator state
        vmm.unregister_process(self.pid)
        ap = self.node.adaptive
        ap.ws.forget(self.pid)
        if ap.recorder is not None:
            ap.recorder.clear(self.pid)
        self.job._rank_done(self)


class Job:
    """A gang-scheduled application: one process per node."""

    _next_jid = 1

    def __init__(
        self,
        name: str,
        nodes: Sequence[Node],
        workloads: Sequence[Workload],
        rngs: RngStreams,
        network: Optional[NetworkParams] = None,
        jid: Optional[int] = None,
    ) -> None:
        if len(nodes) != len(workloads):
            raise ValueError("need exactly one workload per node")
        if not nodes:
            raise ValueError("job needs at least one node")
        envs = {n.env for n in nodes}
        if len(envs) != 1:
            raise ValueError("all nodes must share one environment")
        self.env: Environment = nodes[0].env
        self.name = name
        if jid is None:
            jid = Job._next_jid
            Job._next_jid += 1
        self.jid = jid
        self.nodes = list(nodes)
        self.barrier = (
            Barrier(self.env, len(nodes), network, name=f"{name}.barrier")
            if len(nodes) > 1
            else None
        )
        self.done: Event = self.env.event()
        self.completed_at: Optional[float] = None
        #: set when the job was evicted (node crash / rank I/O failure)
        self.failed = False
        self.failure: Optional[str] = None
        self.failed_at: Optional[float] = None
        self._remaining = len(nodes)
        self.processes = [
            JobProcess(self, rank, node, wl, rngs.stream(f"{name}.r{rank}"))
            for rank, (node, wl) in enumerate(zip(nodes, workloads))
        ]

    # -- gang control ------------------------------------------------------
    def stop(self) -> None:
        """SIGSTOP every rank."""
        for p in self.processes:
            p.control.stop()

    def cont(self) -> None:
        """SIGCONT every rank (a no-op once the job was evicted)."""
        if self.failed:
            return
        for p in self.processes:
            p.control.cont()

    def terminate(self, cause) -> None:
        """Evict the job: stop every rank and mark it failed.

        Used when a node dies or a rank hits a permanent I/O failure.
        Ranks blocked at the job's own barrier stay suspended forever
        (they hold no scheduled events, so they cannot stall the run);
        the ``done`` event fires so any waiting scheduler proceeds.
        """
        if self.finished:
            return
        self.failed = True
        self.failure = str(cause)
        self.failed_at = self.env.now
        self.stop()
        self.done.succeed(None)

    @property
    def finished(self) -> bool:
        """True once the job completed *or* was evicted."""
        return self.completed_at is not None or self.failed

    def process_on(self, node: Node) -> JobProcess:
        """The rank of this job running on ``node``."""
        for p in self.processes:
            if p.node is node:
                return p
        raise KeyError(f"{self.name} has no process on {node.name}")

    def _rank_done(self, proc: JobProcess) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.failed:
            self.completed_at = self.env.now
            self.done.succeed(self.completed_at)

    def _rank_failed(self, proc: JobProcess, exc: BaseException) -> None:
        self.terminate(f"rank {proc.rank} on {proc.node.name}: {exc}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Job({self.name}, jid={self.jid}, nodes={len(self.nodes)})"


__all__ = ["Job", "JobProcess"]
