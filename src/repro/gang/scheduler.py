"""The user-level gang scheduler (and the batch baseline).

Round-robin over jobs with a fixed time quantum (the paper uses five
minutes; SP on four nodes needs seven, §4.2).  At each quantum boundary
the scheduler stops the outgoing job on every node, drives the
adaptive-paging API (page-out side, then page-in side, per node in
parallel), and resumes the incoming job once every node is ready —
the coordinated context switch of Fig. 5.

With the ``bg`` mechanism active, a timer arms the background writer on
every node for the last ``bg_fraction`` of each quantum and the switch
path stops it (§3.4).

:class:`BatchScheduler` runs the same jobs strictly one after another —
the paper's ``batch`` bars, which define zero switching overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.gang.job import Job
from repro.sim.engine import AnyOf, Environment, Process


@dataclass
class SwitchRecord:
    """One coordinated context switch, for the metrics layer."""

    started_at: float
    paging_done_at: float
    in_job: str
    out_job: Optional[str]


class GangScheduler:
    """Coordinated time-sharing of ``jobs`` across their nodes."""

    def __init__(
        self,
        env: Environment,
        jobs: Sequence[Job],
        quantum_s: float = 300.0,
        quantum_overrides: Optional[dict[str, float]] = None,
        on_switch=None,
    ) -> None:
        if quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        if not jobs:
            raise ValueError("need at least one job")
        self.env = env
        self.jobs = list(jobs)
        self.quantum_s = quantum_s
        self.quantum_overrides = dict(quantum_overrides or {})
        self.on_switch = on_switch
        self.switches: list[SwitchRecord] = []
        self._gen = 0
        self._switch_proc: Optional[Process] = None
        self.proc: Optional[Process] = None

    # -- public ------------------------------------------------------------
    def start(self) -> Process:
        """Launch the scheduler's control loop."""
        if self.proc is not None:
            raise RuntimeError("scheduler already started")
        self.proc = self.env.process(self._run())
        return self.proc

    def quantum_for(self, job: Job) -> float:
        """The quantum this job runs for (honours overrides)."""
        return self.quantum_overrides.get(job.name, self.quantum_s)

    # -- control loop --------------------------------------------------------
    def _run(self):
        env = self.env
        current: Optional[Job] = None
        while True:
            pending = [j for j in self.jobs if not j.finished]
            if not pending:
                return
            nxt = self._next_job(current, pending)
            if nxt is not current:
                # A still-running previous switch must finish first (the
                # "continuous thrashing" regime of §4.2).
                if self._switch_proc is not None and self._switch_proc.is_alive:
                    yield self._switch_proc
                self._switch_proc = env.process(self._switch(current, nxt))
                current = nxt
            self._gen += 1
            self._arm_bgwrite(current, self._gen)
            yield AnyOf(env, [env.timeout(self.quantum_for(current)),
                              current.done])
            for node in current.nodes:
                node.adaptive.stop_bgwrite()

    def _next_job(self, current: Optional[Job], pending: list[Job]) -> Job:
        """Round-robin: the first unfinished job after ``current``."""
        if current is None or current not in self.jobs:
            return pending[0]
        i = self.jobs.index(current)
        order = self.jobs[i + 1 :] + self.jobs[: i + 1]
        for job in order:
            if not job.finished:
                return job
        return current  # unreachable while pending is non-empty

    # -- the coordinated switch ---------------------------------------------
    def _switch(self, out_job: Optional[Job], in_job: Job):
        env = self.env
        t0 = env.now
        if out_job is not None and not out_job.finished:
            out_job.stop()
        fragments = [
            env.process(self._switch_node(node, out_job, in_job))
            for node in in_job.nodes
        ]
        if fragments:
            yield env.all_of(fragments)
        in_job.cont()
        rec = SwitchRecord(
            started_at=t0,
            paging_done_at=env.now,
            in_job=in_job.name,
            out_job=out_job.name if out_job is not None else None,
        )
        self.switches.append(rec)
        if self.on_switch is not None:
            self.on_switch(rec)

    def _switch_node(self, node, out_job: Optional[Job], in_job: Job):
        ap = node.adaptive
        ap.stop_bgwrite()
        out_pid = -1
        if out_job is not None and not out_job.finished:
            try:
                proc = out_job.process_on(node)
            except KeyError:
                proc = None
            if proc is not None and proc.pid in node.vmm.tables:
                out_pid = proc.pid
                ap.notify_descheduled(out_pid)
        in_pid = in_job.process_on(node).pid
        ws = ap.working_set_estimate(in_pid)
        yield from ap.adaptive_page_out(in_pid, out_pid, ws)
        yield from ap.adaptive_page_in(in_pid, out_pid, ws)
        ap.notify_scheduled(in_pid)

    # -- background-writing timer ---------------------------------------------
    def _arm_bgwrite(self, job: Job, gen: int) -> None:
        # bg_fraction comes from the node policies (identical across a
        # cluster in every experiment).
        nodes = [n for n in job.nodes if n.adaptive.policy.bg]
        if not nodes:
            return
        frac = nodes[0].adaptive.policy.bg_fraction
        delay = self.quantum_for(job) * (1.0 - frac)
        self.env.process(self._bg_timer(job, gen, delay))

    def _bg_timer(self, job: Job, gen: int, delay: float):
        yield self.env.timeout(delay)
        if self._gen != gen or job.finished:
            return
        for proc in job.processes:
            if proc.pid in proc.node.vmm.tables:
                proc.node.adaptive.start_bgwrite(proc.pid)


class BatchScheduler:
    """Run jobs strictly one after another (no time-sharing)."""

    def __init__(self, env: Environment, jobs: Sequence[Job]) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        self.env = env
        self.jobs = list(jobs)
        self.proc: Optional[Process] = None

    def start(self) -> Process:
        """Launch the sequential run-to-completion loop."""
        if self.proc is not None:
            raise RuntimeError("scheduler already started")
        self.proc = self.env.process(self._run())
        return self.proc

    def _run(self):
        for job in self.jobs:
            for node in job.nodes:
                node.adaptive.notify_scheduled(job.process_on(node).pid)
            job.cont()
            yield job.done


__all__ = ["BatchScheduler", "GangScheduler", "SwitchRecord"]
