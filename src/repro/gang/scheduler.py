"""The user-level gang scheduler (and the batch baseline).

Round-robin over jobs with a fixed time quantum (the paper uses five
minutes; SP on four nodes needs seven, §4.2).  At each quantum boundary
the scheduler stops the outgoing job on every node, drives the
adaptive-paging API (page-out side, then page-in side, per node in
parallel), and resumes the incoming job once every node is ready —
the coordinated context switch of Fig. 5.

With the ``bg`` mechanism active, a timer arms the background writer on
every node for the last ``bg_fraction`` of each quantum and the switch
path stops it (§3.4).

Fault handling
--------------
The quantum boundary doubles as the health check.  With a
:class:`~repro.faults.plan.FaultPlan` attached the scheduler first
injects per-quantum node events (fail-stop crashes, straggler
slowdowns), then — whatever the source of the state — *detects* and
degrades:

* a job with a rank on a dead node is **evicted**
  (:meth:`~repro.gang.job.Job.terminate`) so the remaining jobs keep
  time-sharing instead of the whole gang deadlocking at a barrier;
* a job about to run on a straggling node gets its quantum **extended**
  by the slowdown factor (capped), so the straggler still makes one
  quantum's worth of progress before the next coordinated switch;
* a switch whose paging I/O dies permanently evicts the incoming job
  rather than leaving the cluster half-switched.

:class:`BatchScheduler` runs the same jobs strictly one after another —
the paper's ``batch`` bars, which define zero switching overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.faults.errors import DiskFailure
from repro.faults.plan import FaultPlan
from repro.gang.job import Job
from repro.obs.registry import NULL_OBS
from repro.sim.engine import AnyOf, Environment, Process


@dataclass
class SwitchRecord:
    """One coordinated context switch, for the metrics layer."""

    started_at: float
    paging_done_at: float
    in_job: str
    out_job: Optional[str]


@dataclass(frozen=True)
class EvictionRecord:
    """One job eviction (crash / I/O failure), for the metrics layer."""

    at: float
    job: str
    cause: str


class GangScheduler:
    """Coordinated time-sharing of ``jobs`` across their nodes."""

    def __init__(
        self,
        env: Environment,
        jobs: Sequence[Job],
        quantum_s: float = 300.0,
        quantum_overrides: Optional[dict[str, float]] = None,
        on_switch=None,
        faults: Optional[FaultPlan] = None,
        straggler_extension_cap: float = 4.0,
        obs=NULL_OBS,
    ) -> None:
        if quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        if not jobs:
            raise ValueError("need at least one job")
        if straggler_extension_cap < 1.0:
            raise ValueError("straggler_extension_cap must be >= 1")
        self.env = env
        self.jobs = list(jobs)
        self.quantum_s = quantum_s
        self.quantum_overrides = dict(quantum_overrides or {})
        self.on_switch = on_switch
        self.faults = faults
        self.straggler_extension_cap = straggler_extension_cap
        self.switches: list[SwitchRecord] = []
        self.evictions: list[EvictionRecord] = []
        #: quanta stretched because a gang member straggled
        self.straggler_extensions = 0
        self._gen = 0
        self._switch_proc: Optional[Process] = None
        self.proc: Optional[Process] = None
        self._obs = obs
        self._obs_on = obs.enabled
        self._c_switches = obs.counter("switches_total")
        self._c_evicted = obs.counter("jobs_evicted")
        self._c_extensions = obs.counter("straggler_extensions")

    # -- public ------------------------------------------------------------
    def start(self) -> Process:
        """Launch the scheduler's control loop."""
        if self.proc is not None:
            raise RuntimeError("scheduler already started")
        # opt the nodes into the batch-advance tier: from here on the
        # scheduler owns every node and publishes its wakeup deadlines
        # (AdaptivePaging.bg_arm_at / run_cap_at) before each quantum
        for job in self.jobs:
            for node in job.nodes:
                node.vmm.deadlines = node.adaptive
        self.proc = self.env.process(self._run())
        return self.proc

    def quantum_for(self, job: Job) -> float:
        """The quantum this job runs for (honours overrides)."""
        return self.quantum_overrides.get(job.name, self.quantum_s)

    @property
    def jobs_evicted(self) -> int:
        """Jobs removed from the schedule by fault degradation."""
        return len(self.evictions)

    # -- control loop --------------------------------------------------------
    def _run(self):
        env = self.env
        current: Optional[Job] = None
        while True:
            self._quantum_boundary()
            pending = [j for j in self.jobs if not j.finished]
            if not pending:
                return
            nxt = self._next_job(current, pending)
            if nxt is not current:
                # A still-running previous switch must finish first (the
                # "continuous thrashing" regime of §4.2).
                if self._switch_proc is not None and self._switch_proc.is_alive:
                    yield self._switch_proc
                self._switch_proc = env.process(self._switch(current, nxt))
                current = nxt
            self._gen += 1
            quantum = self._degraded_quantum(current)
            # publish the quantum cap for the steady-state fast path:
            # a coalesced resident run must not contain a chunk starting
            # at/after this time (per-chunk slowdown re-reads would see
            # the boundary's slowdown reset).  Same float expression as
            # the timeout below, so cap and wakeup agree bit-for-bit.
            for node in current.nodes:
                node.adaptive.run_cap_at = env.now + quantum
            self._arm_bgwrite(current, self._gen, quantum)
            yield AnyOf(env, [env.timeout(quantum), current.done])
            for node in current.nodes:
                node.adaptive.stop_bgwrite()

    def _next_job(self, current: Optional[Job], pending: list[Job]) -> Job:
        """Round-robin: the first unfinished job after ``current``."""
        if current is None or current not in self.jobs:
            return pending[0]
        i = self.jobs.index(current)
        order = self.jobs[i + 1 :] + self.jobs[: i + 1]
        for job in order:
            if not job.finished:
                return job
        return current  # unreachable while pending is non-empty

    # -- fault detection and degradation --------------------------------------
    def _quantum_boundary(self) -> None:
        """Inject per-quantum node faults, then detect and degrade.

        Detection is injection-agnostic: a node failed by a test (or a
        future mechanism) is handled identically to an injected crash.
        """
        nodes = {}
        active = set()
        for job in self.jobs:
            for node in job.nodes:
                nodes[node.name] = node
                if not job.finished:
                    active.add(node.name)
        # inject only after a quantum has elapsed (gen > 0): crash and
        # straggle events model hardware misbehaving *during* a quantum,
        # so nothing can be drawn before anything has run
        inject = self.faults is not None and self._gen > 0
        for name in sorted(nodes):
            node = nodes[name]
            node.slowdown = 1.0  # straggle episodes last one quantum
            if not node.alive:
                continue
            if inject and name in active:
                if self.faults.node_crash(name):
                    node.fail("injected crash")
                    continue
                node.slowdown = self.faults.node_straggle(name)
        for job in self.jobs:
            if job.finished:
                continue
            dead = [n.name for n in job.nodes if not n.alive]
            if dead:
                self._evict(job, f"node(s) {', '.join(dead)} crashed")

    def _degraded_quantum(self, job: Job) -> float:
        """This quantum's length, extended if a gang member straggles.

        The gang runs at the pace of its slowest member (§5.6), so a
        straggling node would otherwise waste the whole gang's quantum;
        stretching it (capped) preserves per-quantum progress without
        letting one node capture the machine.
        """
        quantum = self.quantum_for(job)
        slow = max((n.slowdown for n in job.nodes), default=1.0)
        if slow > 1.0:
            self.straggler_extensions += 1
            self._c_extensions.inc()
            quantum *= min(slow, self.straggler_extension_cap)
        return quantum

    def _evict(self, job: Job, cause: str) -> None:
        job.terminate(cause)
        self.evictions.append(EvictionRecord(self.env.now, job.name, cause))
        self._c_evicted.inc()

    # -- the coordinated switch ---------------------------------------------
    def _switch(self, out_job: Optional[Job], in_job: Job):
        env = self.env
        t0 = env.now
        if out_job is not None and not out_job.finished:
            out_job.stop()
        fragments = [
            env.process(self._switch_node(node, out_job, in_job))
            for node in in_job.nodes
        ]
        if fragments:
            yield env.all_of(fragments)
        if in_job.failed:
            return  # evicted mid-switch: nothing to resume or record
        in_job.cont()
        rec = SwitchRecord(
            started_at=t0,
            paging_done_at=env.now,
            in_job=in_job.name,
            out_job=out_job.name if out_job is not None else None,
        )
        self.switches.append(rec)
        self._c_switches.inc()
        if self._obs_on:
            self._obs.counter("job_switches", job=in_job.name).inc()
            self._obs.span(
                "switch", "scheduler", t0, env.now,
                in_job=in_job.name,
                out_job=out_job.name if out_job is not None else None,
            )
        if self.on_switch is not None:
            self.on_switch(rec)

    def _switch_node(self, node, out_job: Optional[Job], in_job: Job):
        try:
            yield from self._switch_node_paging(node, out_job, in_job)
        except DiskFailure as exc:
            # Node-local switch paging died permanently: evict the
            # incoming job so the rest of the gang proceeds instead of
            # waiting forever on a half-switched cluster.
            self._evict(in_job, f"{node.name}: switch paging failed: {exc}")

    def _switch_node_paging(self, node, out_job: Optional[Job], in_job: Job):
        env = self.env
        obs_on = self._obs_on
        ap = node.adaptive
        t0 = env.now
        ap.stop_bgwrite()
        out_pid = -1
        if out_job is not None and not out_job.finished:
            try:
                proc = out_job.process_on(node)
            except KeyError:
                proc = None
            if proc is not None and proc.pid in node.vmm.tables:
                out_pid = proc.pid
                ap.notify_descheduled(out_pid)
        in_pid = in_job.process_on(node).pid
        ws = ap.working_set_estimate(in_pid)
        t1 = env.now
        if obs_on:
            self._obs.span("drain", node.name, t0, t1,
                           in_job=in_job.name, out_pid=out_pid)
        yield from ap.adaptive_page_out(in_pid, out_pid, ws)
        t2 = env.now
        if obs_on:
            self._obs.span("page_out", node.name, t1, t2,
                           in_job=in_job.name, out_pid=out_pid)
        yield from ap.adaptive_page_in(in_pid, out_pid, ws)
        if obs_on:
            self._obs.span("page_in_prefetch", node.name, t2, env.now,
                           in_job=in_job.name, in_pid=in_pid)
        ap.notify_scheduled(in_pid)

    # -- background-writing timer ---------------------------------------------
    def _arm_bgwrite(self, job: Job, gen: int, quantum_s: float) -> None:
        # bg_fraction comes from the node policies (identical across a
        # cluster in every experiment).
        nodes = [n for n in job.nodes if n.adaptive.policy.bg]
        if not nodes:
            return
        frac = nodes[0].adaptive.policy.bg_fraction
        delay = quantum_s * (1.0 - frac)
        # publish the arm deadline for the steady-state fast path (same
        # float expression as the timer's wakeup: _bg_timer starts at
        # this same timestep, so its timeout resolves env.now + delay
        # identically).  Never reset: each bg-policy quantum overwrites
        # it before its job is continued, and stop_bgwrite must not
        # clear it (the switch stops the writer in the same timestep
        # this publication happens).
        for node in nodes:
            node.adaptive.bg_arm_at = self.env.now + delay
        self.env.process(self._bg_timer(job, gen, delay))

    def _bg_timer(self, job: Job, gen: int, delay: float):
        yield self.env.timeout(delay)
        if self._gen != gen or job.finished:
            return
        for proc in job.processes:
            if proc.pid in proc.node.vmm.tables:
                proc.node.adaptive.start_bgwrite(proc.pid)


class BatchScheduler:
    """Run jobs strictly one after another (no time-sharing)."""

    def __init__(self, env: Environment, jobs: Sequence[Job]) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        self.env = env
        self.jobs = list(jobs)
        self.proc: Optional[Process] = None

    def start(self) -> Process:
        """Launch the sequential run-to-completion loop."""
        if self.proc is not None:
            raise RuntimeError("scheduler already started")
        # batch scheduling never preempts mid-run, so the default
        # infinite deadlines let fills advance eagerly in full
        for job in self.jobs:
            for node in job.nodes:
                node.vmm.deadlines = node.adaptive
        self.proc = self.env.process(self._run())
        return self.proc

    def _run(self):
        for job in self.jobs:
            if job.finished:
                continue
            for node in job.nodes:
                node.adaptive.notify_scheduled(job.process_on(node).pid)
            job.cont()
            yield job.done


__all__ = ["BatchScheduler", "EvictionRecord", "GangScheduler", "SwitchRecord"]
