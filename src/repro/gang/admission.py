"""Memory-aware admission control (Batat & Feitelson, paper ref. [15]).

The paper's related work discusses an alternative to adaptive paging:
admit into the gang rotation only jobs whose memory fits alongside the
already-admitted ones, so paging never happens — at the cost of delayed
job execution ("gives overall improvement in performance while
suffering from delayed job execution", §5).

:class:`AdmissionGangScheduler` extends the gang scheduler with an FCFS
admission queue: a job joins the rotation only when the sum of admitted
per-node footprints fits below the reclaim watermark on every node it
uses.  Jobs are (re-)considered in arrival order whenever an admitted
job completes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gang.job import Job
from repro.gang.scheduler import GangScheduler
from repro.sim.engine import AnyOf, Environment


class AdmissionGangScheduler(GangScheduler):
    """Gang scheduling restricted to jobs that fit in memory together."""

    def __init__(
        self,
        env: Environment,
        jobs: Sequence[Job],
        quantum_s: float = 300.0,
        quantum_overrides=None,
        on_switch=None,
        strict_fcfs: bool = True,
    ) -> None:
        super().__init__(env, jobs, quantum_s, quantum_overrides, on_switch)
        #: with strict FCFS a large waiting job blocks later small ones
        #: (no backfilling) — the behaviour ref. [15] analyses
        self.strict_fcfs = strict_fcfs
        self._admitted: list[Job] = []
        #: admission timestamps by job name (for queueing-delay metrics)
        self.admitted_at: dict[str, float] = {}
        self._refresh_admissions()

    # -- admission logic -----------------------------------------------------
    @staticmethod
    def _footprint_on(job: Job, node) -> int:
        return job.process_on(node).workload.footprint_pages

    @staticmethod
    def _capacity(node) -> int:
        params = node.vmm.params
        return params.total_frames - params.freepages_high

    def _fits(self, job: Job) -> bool:
        for node in job.nodes:
            used = sum(
                self._footprint_on(other, node)
                for other in self._admitted
                if not other.finished and node in other.nodes
            )
            if used + self._footprint_on(job, node) > self._capacity(node):
                return False
        return True

    def _refresh_admissions(self) -> None:
        for job in self.jobs:
            if job in self._admitted or job.finished:
                continue
            if self._fits(job):
                self._admitted.append(job)
                self.admitted_at[job.name] = self.env.now
            elif self.strict_fcfs:
                break  # FCFS head-of-line blocking

    # -- control loop (same protocol, admission-filtered rotation) -----------
    def _run(self):
        env = self.env
        current: Optional[Job] = None
        while True:
            self._quantum_boundary()
            self._refresh_admissions()
            pending = [
                j for j in self._admitted if not j.finished
            ]
            if not pending:
                if all(j.finished for j in self.jobs):
                    return
                # waiting jobs exist but nothing is admitted: this can
                # only mean a job larger than a node — admit it alone
                waiting = [j for j in self.jobs if not j.finished]
                self._admitted.append(waiting[0])
                self.admitted_at[waiting[0].name] = env.now
                continue
            nxt = self._next_job_admitted(current, pending)
            if nxt is not current:
                if self._switch_proc is not None and self._switch_proc.is_alive:
                    yield self._switch_proc
                self._switch_proc = env.process(self._switch(current, nxt))
                current = nxt
            self._gen += 1
            quantum = self._degraded_quantum(current)
            self._arm_bgwrite(current, self._gen, quantum)
            yield AnyOf(env, [env.timeout(quantum), current.done])
            for node in current.nodes:
                node.adaptive.stop_bgwrite()

    def _next_job_admitted(self, current: Optional[Job],
                           pending: list[Job]) -> Job:
        if current is None or current not in self._admitted:
            return pending[0]
        i = self._admitted.index(current)
        order = self._admitted[i + 1:] + self._admitted[: i + 1]
        for job in order:
            if not job.finished:
                return job
        return current

    def queueing_delay(self, job: Job) -> float:
        """How long ``job`` waited in the admission queue."""
        return self.admitted_at.get(job.name, float("inf"))


__all__ = ["AdmissionGangScheduler"]
