"""SIGSTOP/SIGCONT-style process control.

The paper's scheduler controls applications with signals: SIGSTOP for
the outgoing job's processes, SIGCONT for the incoming job's (§3.5).
:class:`ProcessControl` reproduces those semantics for a simulation
process:

* ``stop()`` halts CPU consumption immediately (an in-progress compute
  burst is interrupted and its remaining time preserved);
* in-flight kernel work — a page fault being serviced — completes, just
  as a signalled Linux process finishes its kernel business before the
  stop takes effect;
* ``cont()`` resumes the process where it left off.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Environment, Event, Interrupt, Process


class ProcessControl:
    """Stop/continue gate plus interruptible CPU bursts for one process."""

    def __init__(self, env: Environment, start_stopped: bool = True) -> None:
        self.env = env
        self._stopped = start_stopped
        self._resume: Event = env.event()
        self._proc: Optional[Process] = None
        self._in_cpu = False
        #: cumulative CPU seconds actually consumed
        self.cpu_consumed_s = 0.0
        #: cumulative time spent stopped while wanting to run
        self.stopped_waiting_s = 0.0
        #: (time, "stopped"|"running") transition log for Gantt views
        self.transitions: list[tuple[float, str]] = [
            (env.now, "stopped" if start_stopped else "running")
        ]

    # -- wiring ----------------------------------------------------------
    def bind(self, proc: Process) -> None:
        """Attach the simulation process this control governs."""
        self._proc = proc

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- scheduler side ----------------------------------------------------
    def stop(self) -> None:
        """SIGSTOP: no further CPU will be consumed until :meth:`cont`.

        If the process is inside a compute burst the burst is
        interrupted; fault servicing in progress completes on its own.
        """
        if self._stopped:
            return
        self._stopped = True
        self.transitions.append((self.env.now, "stopped"))
        if self._in_cpu and self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("sigstop")

    def cont(self) -> None:
        """SIGCONT: release the gate (idempotent)."""
        if not self._stopped:
            return
        self._stopped = False
        self.transitions.append((self.env.now, "running"))
        resume, self._resume = self._resume, self.env.event()
        resume.succeed()

    # -- process side ------------------------------------------------------
    def wait_runnable(self):
        """Process fragment: block while stopped."""
        while self._stopped:
            t0 = self.env.now
            yield self._resume
            self.stopped_waiting_s += self.env.now - t0

    def cpu(self, duration: float):
        """Process fragment: consume ``duration`` CPU seconds, pausing
        across any stop/cont cycles."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        yield from self._cpu_loop(duration)

    def _cpu_loop(self, remaining: float):
        while remaining > 0:
            yield from self.wait_runnable()
            start = self.env.now
            self._in_cpu = True
            try:
                yield self.env.timeout(remaining)
                self.cpu_consumed_s += remaining
                remaining = 0.0
            except Interrupt:
                used = self.env.now - start
                self.cpu_consumed_s += used
                remaining -= used
            finally:
                self._in_cpu = False

    def cpu_until(self, when: float):
        """Process fragment: one *interruptible* sleep to exactly ``when``.

        The steady-state fast path's coalesced burst primitive: no
        ``cpu_consumed_s`` accounting happens here (the caller stamps
        per-chunk amounts afterwards, so the books match the per-chunk
        path bit-for-bit).  Returns ``None`` on completion, or the
        interrupt time when a stop() lands mid-burst — the caller then
        rolls the run state back to that instant.
        """
        self._in_cpu = True
        try:
            yield self.env.timeout_at(when)
            return None
        except Interrupt:
            return self.env.now
        finally:
            self._in_cpu = False


__all__ = ["ProcessControl"]
