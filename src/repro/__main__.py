"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list``                 show every reproducible experiment
``run <experiment>``     run one experiment (``--scale``, ``--seed``)
``all``                  run every experiment in sequence
``replicate``            multi-seed stability check for one workload
``obs <trace>``          switch-phase / event-log report from a saved file
``obs bench-report``     cumulative perf trajectory across BENCH_PR*.json
``cache stats|clear``    inspect / wipe the cell result cache

``run``, ``all`` and ``replicate`` accept ``--obs`` (collect telemetry
and print the switch-phase breakdown) and ``--trace-out FILE`` (also
write a Chrome trace viewable in chrome://tracing or Perfetto; implies
``--obs``).  Telemetry spans sweeps: with ``--jobs N`` every worker
ships its counters and spans back through the ``"_perf"`` channel and
the exported trace is the cross-cell merge, one track group per cell
(`repro.obs.sweep`).  ``cellcache_*`` / ``supervisor_*`` host-side
counters appear in the report alongside the phase table.

``run``, ``all`` and ``replicate`` accept the resilient-sweep flags:
``--max-retries N`` (bounded per-cell retries with exponential
backoff), ``--cell-timeout SECONDS`` (fixed per-cell deadline; hung
workers are killed and the cell rescheduled) and ``--resume`` (skip
cells a previous interrupted run already completed, via the journal
under ``results/.sweepjournal``).  Any of them installs the sweep
supervisor (``repro.perf.supervisor``): worker crashes rebuild the
pool instead of sinking the sweep, and cells that exhaust their
retries are quarantined under the reserved ``"_failed"`` key of the
merged record.

``--cache`` enables the content-addressed cell result cache
(``results/.cellcache``): sweep cells whose code + config fingerprint
was already produced are served from disk instead of re-simulated, so
a warm ``python -m repro all --cache`` rerun skips every unchanged
cell.  ``--profile`` wraps the run in cProfile and writes a ``pstats``
dump next to the record.

Examples::

    python -m repro list
    python -m repro run fig7 --scale 0.2
    python -m repro run fig6 --scale 0.1 --obs --trace-out fig6.trace.json
    python -m repro obs fig6.trace.json
    python -m repro replicate --bench CG --klass B --seeds 1 2 3
    python -m repro replicate --jobs 4 --obs --trace-out sweep.trace.json
    python -m repro obs results/.sweepjournal/<sweep>.events.jsonl
    python -m repro obs bench-report --strict
    python -m repro all --scale 0.1 --cache
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments import (
    ablation_bgwrite,
    ablation_wsestimator,
    calibration,
    ablation_false_eviction,
    ablation_readahead,
    extension_admission,
    extension_characterization,
    extension_diskched,
    extension_faults,
    extension_jobstream,
    extension_matrix,
    extension_policies,
    extension_quantum,
    extension_scaling,
    extension_topology,
    fig1_compaction,
    fig6_traces,
    fig7_serial,
    fig8_parallel,
    fig9_lu_detail,
    fig_summary,
    motivation_moreira,
    sensitivity,
)

EXPERIMENTS = {
    "fig1": (fig1_compaction, "Fig 1 — paging compaction, measured"),
    "fig6": (fig6_traces, "Fig 6 — LU.C x 4 paging activity traces"),
    "fig7": (fig7_serial, "Fig 7 — serial NPB class B"),
    "fig8": (fig8_parallel, "Fig 8 — parallel NPB on 2 and 4 nodes"),
    "fig9": (fig9_lu_detail, "Fig 9 — LU per-mechanism detail"),
    "motivation": (motivation_moreira, "§1 — Moreira et al. slowdown"),
    "bgwrite": (ablation_bgwrite, "§3.4 — background-write window sweep"),
    "readahead": (ablation_readahead, "§3.3 — read-ahead vs adaptive page-in"),
    "false-eviction": (ablation_false_eviction, "§3.1 — refault counting"),
    "ws-estimator": (ablation_wsestimator,
                     "§3.2 — working-set estimate source"),
    "quantum": (extension_quantum, "ext — overhead vs quantum length"),
    "policies": (extension_policies, "ext — baseline replacement policies"),
    "scaling": (extension_scaling, "ext — 2/4/8/16-node clusters"),
    "diskched": (extension_diskched, "ext — elevator vs adaptive paging"),
    "faults": (extension_faults, "ext — graceful degradation under faults"),
    "admission": (extension_admission, "ext — admission control (ref. [15])"),
    "matrix": (extension_matrix, "ext — mixed workload scheduling matrix"),
    "jobstream": (extension_jobstream, "ext — open-system arrival stream"),
    "sensitivity": (sensitivity, "robustness of the headline result"),
    "summary": (fig_summary, "paper-vs-measured one-table summary"),
    "calibration": (calibration, "disk-parameter calibration grid"),
    "topology": (extension_topology, "ext — rack topology vs paging"),
    "characterization": (extension_characterization,
                         "ext — workload properties vs adaptive win"),
}


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: an int that is at least 1.

    Mirrors the ``run_cells(jobs=...)`` validation so a bad value dies
    at the parser with a clear message instead of deep in the pool.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (got {value}); jobs counts worker processes"
        )
    return value


def _jobs_arg(text: str) -> int:
    """argparse type for ``--jobs``: an int >= 1, or ``auto`` for the
    host CPU count (see :func:`repro.perf.backend.resolve_jobs`)."""
    if text.strip().lower() == "auto":
        from repro.perf.backend import resolve_jobs

        return resolve_jobs("auto")
    return _positive_int(text)


def cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (_mod, desc) in EXPERIMENTS.items():
        print(f"  {key.ljust(width)}  {desc}")
    return 0


def _run_kwargs(module, args) -> dict:
    """Build ``module.run`` kwargs, forwarding ``--jobs`` only to the
    sweep experiments whose run() accepts it (serial output is
    bit-for-bit identical either way, see repro.perf.pool)."""
    kwargs = {"scale": args.scale, "seed": args.seed}
    jobs = getattr(args, "jobs", 1)
    if jobs != 1 and "jobs" in inspect.signature(module.run).parameters:
        kwargs["jobs"] = jobs
    return kwargs


def _obs_begin(args):
    """Install the process-default telemetry registry AND sweep observer.

    The registry collects in-process telemetry (serial runs, host-side
    ``cellcache_*`` / ``supervisor_*`` counters); the sweep observer
    makes ``--jobs N`` workers capture and ship theirs back, so the
    exported trace is never silently main-process-only.
    """
    if not (getattr(args, "obs", False) or getattr(args, "trace_out", None)):
        return None
    from repro.obs import Registry, SweepObserver, set_default, \
        set_default_sweep

    reg = Registry()
    set_default(reg)
    sweep = SweepObserver()
    set_default_sweep(sweep)
    return reg, sweep


def _obs_finish(handle, args) -> None:
    """Report and export the collected telemetry, then uninstall."""
    if handle is None:
        return
    reg, sweep = handle
    from repro.obs import (
        phase_breakdown,
        render_counter_table,
        render_phase_table,
        set_default,
        set_default_sweep,
        write_chrome_trace,
    )

    set_default(None)
    set_default_sweep(None)
    if sweep.cell_count:
        # cross-process merge: worker spans/counters join the
        # main-process registry before reporting and trace export
        reg.merge(sweep.registry)
        print(f"\nsweep telemetry: merged {sweep.cell_count} cell "
              f"snapshot(s)"
              + (f", {sweep.cells_skipped} without telemetry"
                 if sweep.cells_skipped else ""))
    print()
    print(render_phase_table(phase_breakdown(reg)))
    host = render_counter_table(
        reg, prefixes=("cellcache_", "supervisor_"),
        title="Host-side counters")
    if "<no matching counters>" not in host:
        print()
        print(host)
    if getattr(args, "trace_out", None):
        path = write_chrome_trace(reg, args.trace_out)
        print(f"chrome trace written to {path}")


def _cache_begin(args):
    """Install the process-default cell cache when ``--cache`` is on."""
    if not getattr(args, "cache", False):
        return None
    from repro.perf.cache import CellCache, set_default_cache

    cache = CellCache()
    set_default_cache(cache)
    return cache


def _cache_finish(cache) -> None:
    """Print session cache counters, then uninstall the default."""
    if cache is None:
        return
    from repro.perf.cache import set_default_cache

    set_default_cache(None)
    s = cache.stats()
    rate = "" if s["hit_rate"] is None \
        else f", {100.0 * s['hit_rate']:.0f}% hit rate"
    print(f"\ncell cache: {s['hits']} hits, {s['misses']} misses, "
          f"{s['stores']} stores{rate} ({s['entries']} entries on disk, "
          f"{s['bytes'] / 1024:.0f} KiB at {s['root']})")


def _backend_begin(args):
    """Install the process-default executor backend from ``--backend``.

    ``auto`` (the default) installs the persistent warm-worker
    executor, so CLI sweeps — bare *and* supervised — share one warm
    worker set across every ``run_cells`` call of the invocation.
    Explicit names install that backend; results are byte-identical
    across all of them (see repro.perf.backend).
    """
    spec = getattr(args, "backend", None)
    if spec is None:
        return None
    from repro.perf.backend import set_default_backend

    set_default_backend("persistent" if spec == "auto" else spec)
    return spec


def _backend_finish(handle) -> None:
    """Print warm-executor stats (if one was spun up), uninstall the
    default backend, and shut the workers down."""
    if handle is None:
        return
    from repro.perf.backend import set_default_backend
    from repro.perf.persistent import (
        peek_default_executor,
        shutdown_default_executor,
    )

    set_default_backend(None)
    executor = peek_default_executor()
    if executor is not None:
        s = executor.stats
        print(f"\npersistent executor: {s['spawns']} workers spawned, "
              f"{s['respawns']} respawned, {s['sweeps']} sweeps, "
              f"{s['dispatches']} dispatches, "
              f"{s['spec_bytes'] / 1024:.0f} KiB spec tables")
    shutdown_default_executor()


def _supervisor_begin(args):
    """Install the process-default sweep supervisor when any of the
    resilience flags (``--max-retries``, ``--cell-timeout``,
    ``--resume``, hidden ``--chaos``) was given."""
    retries = getattr(args, "max_retries", None)
    timeout = getattr(args, "cell_timeout", None)
    resume = getattr(args, "resume", False)
    chaos = getattr(args, "chaos", None)
    if retries is None and timeout is None and not resume \
            and chaos is None:
        return None
    from repro.perf.supervisor import (
        Supervisor,
        SupervisorConfig,
        set_default_supervisor,
    )

    kwargs: dict = {"journal": True, "resume": resume}
    if retries is not None:
        kwargs["max_retries"] = retries
    if timeout is not None:
        kwargs["cell_timeout_s"] = timeout
    if chaos:
        from repro.faults.worker import WorkerFaultPlan

        kwargs["worker_faults"] = WorkerFaultPlan.parse(chaos)
    supervisor = Supervisor(SupervisorConfig(**kwargs))
    set_default_supervisor(supervisor)
    return supervisor


def _supervisor_finish(supervisor) -> None:
    """Print the supervision summary, then uninstall the default."""
    if supervisor is None:
        return
    from repro.perf.supervisor import set_default_supervisor

    set_default_supervisor(None)
    s = supervisor.stats
    print(f"\nsupervisor: {s['completed']} cells completed, "
          f"{s['resumed']} resumed, {s['retries']} retries, "
          f"{s['rebuilds']} pool rebuilds, "
          f"{s['respawns']} worker respawns, "
          f"{s['timeouts']} timeouts, "
          f"{s['deadline_extensions']} deadline extensions, "
          f"{s['quarantined']} quarantined")
    counts = supervisor.events.counts()
    if counts:
        line = ", ".join(f"{k}={v}" for k, v in counts.items())
        where = f" (log: {supervisor.events.path})" \
            if supervisor.events.path else ""
        print(f"supervisor events: {line}{where}")


def _profiled(args, default_stem: str, fn):
    """Run ``fn()``; with ``--profile``, wrap it in cProfile and write a
    pstats dump next to the record (``<json path>.pstats`` when
    ``--json`` is given, ``<default_stem>.pstats`` otherwise)."""
    if not getattr(args, "profile", False):
        return fn()
    import cProfile
    import pstats

    out = f"{args.json}.pstats" if getattr(args, "json", None) \
        else f"{default_stem}.pstats"
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        profiler.dump_stats(out)
        top = pstats.Stats(profiler)
        print(f"\nprofile written to {out} "
              f"({int(top.total_calls)} calls, {top.total_tt:.2f}s); "
              f"inspect with: python -m pstats {out}")


def cmd_run(args) -> int:
    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    module, _ = entry
    reg = _obs_begin(args)
    cache = _cache_begin(args)
    supervisor = _supervisor_begin(args)
    backend = _backend_begin(args)
    try:
        record = _profiled(
            args, args.experiment,
            lambda: module.run(**_run_kwargs(module, args)),
        )
    finally:
        _backend_finish(backend)
        _supervisor_finish(supervisor)
        _cache_finish(cache)
        _obs_finish(reg, args)
    if args.json:
        from repro.experiments.report_io import save_record

        path = save_record(record, args.json)
        print(f"\nrecord written to {path}")
    return 0


def cmd_all(args) -> int:
    reg = _obs_begin(args)
    cache = _cache_begin(args)
    supervisor = _supervisor_begin(args)
    backend = _backend_begin(args)

    def _run_all():
        for key, (module, desc) in EXPERIMENTS.items():
            print(f"\n##### {key} — {desc}\n")
            module.run(**_run_kwargs(module, args))

    try:
        _profiled(args, "all", _run_all)
    finally:
        _backend_finish(backend)
        _supervisor_finish(supervisor)
        _cache_finish(cache)
        _obs_finish(reg, args)
    return 0


def cmd_cache(args) -> int:
    from repro.perf.cache import CellCache

    cache = CellCache(root=args.dir)
    if args.action == "stats":
        s = cache.stats()
        print(f"cell cache at {s['root']}: {s['entries']} entries, "
              f"{s['bytes'] / 1024:.0f} KiB")
        life = s["lifetime"]
        if s["lifetime_hit_rate"] is None:
            print("hit rate: no recorded traffic")
        else:
            print(f"hit rate: {100.0 * s['lifetime_hit_rate']:.0f}% "
                  f"lifetime ({life['hits']} hits / "
                  f"{life['hits'] + life['misses']} lookups, "
                  f"{life['stores']} stores, "
                  f"{life['corrupt']} corrupt)")
    else:  # clear
        removed = cache.clear()
        print(f"cleared {removed} cached cell results from {cache.root}")
    return 0


def cmd_obs(args) -> int:
    if args.trace == "bench-report":
        from repro.obs import load_bench_reports, render_bench_report

        reports = load_bench_reports(args.dir or ".")
        if not reports:
            print(f"no BENCH_PR*.json found under {args.dir or '.'}",
                  file=sys.stderr)
            return 1
        text, regressions = render_bench_report(reports,
                                                tolerance=args.tolerance)
        print(text)
        if regressions and args.strict:
            return 1
        return 0

    from repro.obs import (
        load_events,
        load_spans,
        phase_breakdown,
        render_event_table,
        render_phase_table,
    )

    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError):
        spans = []
    if not spans:
        # not a trace — maybe a supervisor event log
        events = load_events(args.trace)
        if events:
            print(render_event_table(
                events, title=f"Supervisor events — {args.trace}"))
            return 0
        print(f"no spans or events found in {args.trace}",
              file=sys.stderr)
        return 1
    rows = phase_breakdown(spans, run=args.run)
    print(render_phase_table(
        rows, title=f"Switch-phase breakdown — {args.trace}"
    ))
    return 0


def cmd_trace(args) -> int:
    import numpy as np

    from repro.workloads import make_npb
    from repro.workloads.trace import Trace

    w = make_npb(args.bench, args.klass, args.nodes)
    if args.scale != 1.0:
        w.footprint_pages = max(64, int(w.footprint_pages * args.scale))
        w.cpu_it_s *= args.scale
    trace = Trace.record(w, np.random.default_rng(args.seed))
    trace.save(args.out)
    print(
        f"recorded {trace.name}: {trace.nphases} phases, "
        f"{trace.total_pages_touched} page touches, "
        f"{trace.total_cpu_s:.0f}s CPU -> {args.out}"
    )
    return 0


def cmd_replicate(args) -> int:
    from repro.experiments.multi_seed import render, replicate
    from repro.experiments.runner import GangConfig

    cfg = GangConfig(args.bench, args.klass, nprocs=args.nodes,
                     scale=args.scale)
    reg = _obs_begin(args)
    supervisor = _supervisor_begin(args)
    backend = _backend_begin(args)
    try:
        record = replicate(cfg, policy=args.policy, seeds=args.seeds,
                           jobs=args.jobs)
    finally:
        _backend_finish(backend)
        _supervisor_finish(supervisor)
        _obs_finish(reg, args)
    print(render(record, label=cfg.label()))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show available experiments")

    def add_resilience_flags(p) -> None:
        """The supervised-sweep flags shared by run/all/replicate."""
        p.add_argument("--max-retries", type=int, default=None,
                       metavar="N",
                       help="re-execute a failed sweep cell up to N "
                            "times (exponential backoff) before "
                            "quarantining it under '_failed'")
        p.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell wall-clock deadline; a hung "
                            "worker is killed and the cell rescheduled")
        p.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep: skip cells "
                            "the journal under results/.sweepjournal "
                            "already marks completed")
        # hidden: deterministic host fault injection for chaos testing,
        # e.g. --chaos crash=0.3,hang=0.1,seed=7 (see
        # repro.faults.worker.WorkerFaultPlan.parse)
        p.add_argument("--chaos", default=None, help=argparse.SUPPRESS)

    def add_backend_flag(p) -> None:
        """The executor-backend selector shared by run/all/replicate."""
        p.add_argument("--backend", default="auto",
                       choices=("auto", "serial", "pool", "persistent"),
                       help="sweep executor backend: 'persistent' = warm "
                            "worker processes reused across sweeps "
                            "(default via 'auto'), 'pool' = legacy "
                            "spawn-per-sweep pool, 'serial' = in-process; "
                            "merged results are byte-identical across "
                            "backends")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="experiment key (see `list`)")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--jobs", type=_jobs_arg, default=1,
                       help="worker processes for sweep experiments "
                            "(1 = serial, 'auto' = host CPU count; "
                            "results are identical)")
    add_resilience_flags(p_run)
    add_backend_flag(p_run)
    p_run.add_argument("--json", metavar="PATH",
                       help="also write the structured record as JSON")
    p_run.add_argument("--obs", action="store_true",
                       help="collect telemetry; print the switch-phase "
                            "breakdown after the run")
    p_run.add_argument("--trace-out", metavar="FILE",
                       help="write a Chrome trace of the run "
                            "(implies --obs)")
    p_run.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="serve sweep cells from the content-addressed "
                            "result cache (results/.cellcache)")
    p_run.add_argument("--profile", action="store_true",
                       help="profile the run with cProfile; write a "
                            "pstats dump next to the record")

    p_all = sub.add_parser("all", help="run everything")
    p_all.add_argument("--scale", type=float, default=1.0)
    p_all.add_argument("--seed", type=int, default=1)
    p_all.add_argument("--jobs", type=_jobs_arg, default=1,
                       help="worker processes for sweep experiments "
                            "('auto' = host CPU count)")
    add_resilience_flags(p_all)
    add_backend_flag(p_all)
    p_all.add_argument("--obs", action="store_true",
                       help="collect telemetry across all experiments")
    p_all.add_argument("--trace-out", metavar="FILE",
                       help="write a Chrome trace (implies --obs)")
    p_all.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="serve sweep cells from the content-addressed "
                            "result cache (results/.cellcache)")
    p_all.add_argument("--profile", action="store_true",
                       help="profile the whole invocation with cProfile")

    p_tr = sub.add_parser("trace", help="record an NPB workload trace")
    p_tr.add_argument("--bench", default="LU")
    p_tr.add_argument("--klass", default="B")
    p_tr.add_argument("--nodes", type=int, default=1)
    p_tr.add_argument("--seed", type=int, default=1)
    p_tr.add_argument("--scale", type=float, default=1.0)
    p_tr.add_argument("--out", default="trace.npz")

    p_rep = sub.add_parser("replicate", help="multi-seed stability check")
    p_rep.add_argument("--bench", default="LU")
    p_rep.add_argument("--klass", default="B")
    p_rep.add_argument("--nodes", type=int, default=1)
    p_rep.add_argument("--policy", default="so/ao/ai/bg")
    p_rep.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    p_rep.add_argument("--scale", type=float, default=0.2)
    p_rep.add_argument("--jobs", type=_jobs_arg, default=1,
                       help="worker processes for the seed sweep "
                            "('auto' = host CPU count)")
    p_rep.add_argument("--obs", action="store_true",
                       help="collect telemetry across the seed sweep; "
                            "print the merged switch-phase breakdown")
    p_rep.add_argument("--trace-out", metavar="FILE",
                       help="write the merged cross-cell Chrome trace "
                            "(implies --obs)")
    add_resilience_flags(p_rep)
    add_backend_flag(p_rep)

    p_obs = sub.add_parser(
        "obs", help="switch-phase / event-log report from a saved "
                    "file, or 'bench-report' for the BENCH_PR*.json "
                    "perf trajectory"
    )
    p_obs.add_argument("trace",
                       help="Chrome-trace JSON, telemetry JSONL, a "
                            "supervisor event log, or the literal "
                            "'bench-report'")
    p_obs.add_argument("--run", default=None,
                       help="restrict to one run scope (trace process name)")
    p_obs.add_argument("--dir", default=None,
                       help="bench-report: directory holding "
                            "BENCH_PR*.json (default: .)")
    p_obs.add_argument("--strict", action="store_true",
                       help="bench-report: exit 1 when any trajectory "
                            "step regressed")
    p_obs.add_argument("--tolerance", type=float, default=1.1,
                       help="bench-report: flag a step growing past "
                            "TOLERANCE x its predecessor (default 1.1)")

    p_cache = sub.add_parser(
        "cache", help="inspect or wipe the cell result cache"
    )
    p_cache.add_argument("action", choices=("stats", "clear"))
    p_cache.add_argument("--dir", default=None,
                         help="cache directory "
                              "(default: results/.cellcache)")

    args = parser.parse_args(argv)
    from repro.perf.supervisor import QuarantinedCells

    try:
        return {
            "list": cmd_list,
            "run": cmd_run,
            "all": cmd_all,
            "trace": cmd_trace,
            "replicate": cmd_replicate,
            "obs": cmd_obs,
            "cache": cmd_cache,
        }[args.command](args)
    except QuarantinedCells as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: raise --max-retries / --cell-timeout, or rerun "
              "with --resume to retry only the failed cells",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
