"""Persistent warm-worker executor with work stealing.

The legacy sweep path (:mod:`repro.perf.pool`) builds a fresh
``ProcessPoolExecutor`` per sweep: every worker re-imports the whole
simulation stack, every cell re-pickles its full payload, and the
BENCH_PR2 result — parallel *slower* than serial at 0.74× — is the
bill.  :class:`PersistentExecutor` amortises all of it:

* **Warm workers.**  Worker processes are spawned once (forkserver
  start method where available, so respawns fork from an interpreter
  that already imported ``repro``), pre-warm the hot modules
  (:func:`repro.perf.worker.prewarm`), and serve every subsequent
  sweep of the process.  A module-level default executor
  (:func:`get_default_executor`) is shared by the persistent backend
  and the supervisor and shut down atexit.
* **Compact dispatch.**  A sweep begins by shipping one shared
  read-only :class:`~repro.perf.spec.SpecTable`; after that each task
  message is a ``(generation, index, attempt, fingerprint)``
  descriptor and each worker rebuilds the cell zero-copy from the
  table.
* **Sweep generations.**  Every sweep gets a generation number carried
  in task and result messages, so results of an abandoned sweep (the
  bare path fails fast on the first cell error) are recognised and
  dropped instead of corrupting the next sweep.
* **Surgical failure handling.**  A dead worker is one ``died`` event
  naming the task it held; callers respawn *one* worker
  (:meth:`PersistentExecutor.respawn`) instead of rebuilding the
  world, and a hung worker is killed alone
  (:meth:`PersistentExecutor.kill_worker`) while its siblings keep
  computing.

Work stealing
-------------
:class:`StealScheduler` holds one deque per worker.  The initial
assignment is greedy LPT: cells sorted largest-estimated-cost-first
(per-key EMA estimates from the PR 6 supervisor when available) and
dealt to the least-loaded deque, ties broken by index so the schedule
is deterministic for a given cost model.  A worker pops from the head
of its own deque; an idle worker with an empty deque **steals from the
tail** of the most-loaded victim — the tail holds the smallest
remaining items under LPT order, so a steal never takes the victim's
next big cell.  Completion order therefore varies run to run, which is
exactly why the merge is keyed by cell index: the caller writes
``results[index]`` and declaration-order byte identity is preserved
no matter who ran what (enforced by
``tests/perf/test_stealing_equivalence.py``).
"""

from __future__ import annotations

import atexit
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.perf.spec import SpecTable

#: env override for the multiprocessing start method
START_METHOD_ENV = "REPRO_MP_START"

_CTX = None


def start_method() -> str:
    """The worker start method: env override, else forkserver > spawn.

    ``fork`` is accepted via the override but never chosen by default:
    a forked worker inherits arbitrary parent state (open files,
    half-warmed caches), while forkserver children fork from a clean
    pre-warmed interpreter and spawn children import from scratch.
    """
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    choice = os.environ.get(START_METHOD_ENV, "").strip().lower()
    if choice:
        if choice not in methods:
            raise ValueError(
                f"{START_METHOD_ENV}={choice!r} not available; choose "
                f"from {methods}")
        return choice
    return "forkserver" if "forkserver" in methods else "spawn"


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn/forkserver children.

    Children re-import from ``PYTHONPATH``, not from the parent's
    runtime ``sys.path`` edits (harness scripts insert ``src/``
    manually).  Exporting the package root before the first spawn
    keeps the executor working however the parent found ``repro``.
    """
    import repro

    root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if root not in parts:
        os.environ["PYTHONPATH"] = (
            os.pathsep.join([root] + parts) if parts else root)


def _mp_context():
    """Process-wide multiprocessing context (created once)."""
    global _CTX
    if _CTX is None:
        import multiprocessing as mp

        _ensure_child_import_path()
        method = start_method()
        ctx = mp.get_context(method)
        if method == "forkserver":
            try:
                # the server imports repro once; every worker (and
                # every respawn) forks from that warm interpreter
                ctx.set_forkserver_preload(["repro.perf.worker"])
            except Exception:  # pragma: no cover - defensive
                pass
        _CTX = ctx
    return _CTX


@dataclass
class WorkerEvent:
    """One observation from :meth:`PersistentExecutor.poll`."""

    kind: str  #: ``"result"`` or ``"died"``
    wid: int
    gen: int = -1
    index: int = -1
    attempt: int = -1
    fp: str = ""
    ok: bool = False
    payload: Any = None  #: result object, or the raised exception
    exitcode: Optional[int] = None


class _Worker:
    """Parent-side handle of one persistent worker process."""

    __slots__ = ("wid", "proc", "conn", "gen", "task")

    def __init__(self, wid, proc, conn) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        #: sweep generation this worker is enrolled in (-1 = none)
        self.gen = -1
        #: in-flight (gen, index, attempt, fp), or None when idle
        self.task: Optional[tuple] = None


class StealScheduler:
    """Per-worker deques with LPT assignment and tail stealing."""

    def __init__(self, wids: Sequence[int],
                 cost: Optional[Callable[[int], float]] = None) -> None:
        self._deques: dict[int, deque] = {w: deque() for w in wids}
        self._load: dict[int, float] = {w: 0.0 for w in wids}
        self._cost = cost
        self.steals = 0

    def _item_cost(self, index: int) -> float:
        if self._cost is None:
            return 1.0
        return max(float(self._cost(index)), 0.0) or 1.0

    def add_worker(self, wid: int) -> None:
        self._deques.setdefault(wid, deque())
        self._load.setdefault(wid, 0.0)

    def replace_worker(self, old: int, new: int) -> None:
        """Hand a dead worker's queue to its replacement."""
        self.add_worker(new)
        dead = self._deques.pop(old, None)
        load = self._load.pop(old, 0.0)
        if dead:
            self._deques[new].extend(dead)
            self._load[new] += load

    def extend(self, indices: Sequence[int]) -> None:
        """Assign a batch greedily: largest cost first, least-loaded
        deque next, ties broken by worker id (deterministic)."""
        order = sorted(indices,
                       key=lambda i: (-self._item_cost(i), i))
        for index in order:
            wid = min(self._load, key=lambda w: (self._load[w], w))
            self._deques[wid].append(index)
            self._load[wid] += self._item_cost(index)

    def push_front(self, index: int) -> None:
        """Queue a retry at the head of the least-loaded deque."""
        wid = min(self._load, key=lambda w: (self._load[w], w))
        self._deques[wid].appendleft(index)
        self._load[wid] += self._item_cost(index)

    def next_for(self, wid: int) -> Optional[int]:
        """Next cell for ``wid``: own head, else steal a victim's tail."""
        own = self._deques.get(wid)
        if own is None:
            self.add_worker(wid)
            own = self._deques[wid]
        if own:
            index = own.popleft()
            self._load[wid] -= self._item_cost(index)
            return index
        victim = max(
            (w for w, dq in self._deques.items() if dq),
            key=lambda w: (self._load[w], -w),
            default=None,
        )
        if victim is None:
            return None
        index = self._deques[victim].pop()
        self._load[victim] -= self._item_cost(index)
        self.steals += 1
        return index

    def __len__(self) -> int:
        return sum(len(dq) for dq in self._deques.values())


class PersistentExecutor:
    """Long-lived worker pool serving many sweeps (see module docs)."""

    _STATS = ("spawns", "respawns", "sweeps", "dispatches",
              "stale_results", "spec_bytes")

    def __init__(self, ctx=None, obs=None) -> None:
        if obs is None:
            from repro.obs import get_default

            obs = get_default()
        self._ctx = ctx
        self._workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self._gen = 0
        self._sweep_msg: Optional[tuple] = None
        self._table: Optional[SpecTable] = None
        self.stats: dict[str, int] = {k: 0 for k in self._STATS}
        self._counters = {
            k: obs.counter(f"persistent_{k}") for k in self._STATS
        }

    def _count(self, key: str, n: int = 1) -> None:
        self.stats[key] += n
        self._counters[key].inc(n)

    # -- worker lifecycle --------------------------------------------------
    def _context(self):
        if self._ctx is None:
            self._ctx = _mp_context()
        return self._ctx

    def _spawn(self) -> _Worker:
        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        wid = self._next_wid
        self._next_wid += 1
        from repro.perf.worker import worker_main

        proc = ctx.Process(target=worker_main, args=(child_conn, wid),
                           name=f"repro-sweep-worker-{wid}",
                           daemon=True)
        proc.start()
        child_conn.close()
        worker = _Worker(wid, proc, parent_conn)
        self._workers[wid] = worker
        self._count("spawns")
        return worker

    def _reap(self, wid: int) -> None:
        worker = self._workers.pop(wid, None)
        if worker is None:
            return
        try:
            worker.conn.close()
        except Exception:  # pragma: no cover - defensive
            pass
        worker.proc.join(timeout=0)

    def worker_ids(self) -> list[int]:
        return sorted(self._workers)

    def worker_pids(self) -> dict[int, int]:
        """Live worker pids (stable across sweeps = warm reuse)."""
        return {w.wid: w.proc.pid for w in self._workers.values()}

    def _prune_dead(self) -> None:
        for wid in [w.wid for w in self._workers.values()
                    if not w.proc.is_alive()]:
            self._reap(wid)

    def acquire(self, n: int) -> list[int]:
        """``n`` idle workers for a new sweep, spawning as needed.

        Workers still draining an abandoned sweep's task are left
        alone (their eventual results are dropped by generation);
        fresh workers are spawned to make up the difference, so an
        aborted sweep can never deadlock the next one.
        """
        self._prune_dead()
        idle = [w.wid for w in self._workers.values() if w.task is None]
        idle.sort()
        while len(idle) < n:
            idle.append(self._spawn().wid)
        return idle[:n]

    # -- sweep protocol ----------------------------------------------------
    def begin_sweep(self, cells, capture=None, plan=None,
                    jobs: int = 1) -> tuple[int, list[int]]:
        """Ship a new sweep's spec table; returns ``(gen, worker_ids)``."""
        if self._table is not None:
            self.end_sweep()
        self._gen += 1
        self._count("sweeps")
        table = SpecTable(cells)
        self._table = table
        self._count("spec_bytes", table.nbytes)
        self._sweep_msg = ("sweep", self._gen, table.transport(),
                           capture, plan)
        wids = self.acquire(max(1, jobs))
        for wid in wids:
            self._enroll(self._workers[wid])
        return self._gen, wids

    def _enroll(self, worker: _Worker) -> None:
        worker.conn.send(self._sweep_msg)
        worker.gen = self._gen

    def dispatch(self, wid: int, index: int, attempt: int,
                 fp: str = "") -> None:
        """Send one task descriptor to an enrolled idle worker."""
        worker = self._workers[wid]
        if worker.gen != self._gen:
            raise RuntimeError(
                f"worker {wid} is not enrolled in sweep {self._gen}")
        if worker.task is not None:
            raise RuntimeError(f"worker {wid} is already busy")
        worker.task = (self._gen, index, attempt, fp)
        worker.conn.send(("task", self._gen, index, attempt, fp))
        self._count("dispatches")

    def poll(self, timeout: float = 0.05) -> list[WorkerEvent]:
        """Harvest results and worker deaths (at most ``timeout`` wait).

        Results from an abandoned generation free their worker but are
        reported nowhere (counted as ``stale_results``); the death of
        a worker not enrolled in the current sweep is reaped silently.
        """
        from multiprocessing.connection import wait as mp_wait

        workers = list(self._workers.values())
        if not workers:
            return []
        by_conn = {w.conn: w for w in workers}
        by_sentinel = {w.proc.sentinel: w for w in workers}
        try:
            ready = mp_wait(list(by_conn) + list(by_sentinel),
                            timeout=timeout)
        except OSError:  # pragma: no cover - fd raced with a reap
            ready = []
        events: list[WorkerEvent] = []
        dead: list[_Worker] = []
        for obj in ready:
            worker = by_conn.get(obj)
            if worker is None:
                dead.append(by_sentinel[obj])
                continue
            if not self._drain(worker, events):
                dead.append(worker)
        for worker in dead:
            if worker.wid not in self._workers:
                continue  # already handled via its other handle
            # a worker may exit cleanly after sending its last result:
            # drain whatever is buffered before declaring it dead
            self._drain(worker, events)
            exitcode = worker.proc.exitcode
            task = worker.task
            gen = worker.gen
            self._reap(worker.wid)
            if task is not None and task[0] == self._gen:
                events.append(WorkerEvent(
                    "died", worker.wid, gen=task[0], index=task[1],
                    attempt=task[2], fp=task[3], exitcode=exitcode))
            elif gen == self._gen and self._sweep_msg is not None:
                # an idle-but-enrolled worker died: report it so the
                # caller stops offering it work (index -1 = no cell
                # was lost)
                events.append(WorkerEvent("died", worker.wid, gen=gen,
                                          exitcode=exitcode))
        return events

    def _drain(self, worker: _Worker, events: list[WorkerEvent]) -> bool:
        """Pump buffered messages from one worker; False if it hung up."""
        try:
            while worker.conn.poll():
                msg = worker.conn.recv()
                if msg[0] == "ready":
                    continue
                if msg[0] == "result":
                    _, wid, gen, index, attempt, fp, ok, payload = msg
                    worker.task = None
                    if gen == self._gen:
                        events.append(WorkerEvent(
                            "result", wid, gen=gen, index=index,
                            attempt=attempt, fp=fp, ok=ok,
                            payload=payload))
                    else:
                        self._count("stale_results")
        except (EOFError, OSError):
            return False
        return True

    def kill_worker(self, wid: int) -> None:
        """Hard-kill one (hung) worker; no ``died`` event will follow."""
        worker = self._workers.get(wid)
        if worker is None:
            return
        try:
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        except Exception:  # pragma: no cover - defensive
            pass
        self._reap(wid)

    def respawn(self) -> int:
        """Spawn one replacement worker enrolled in the current sweep."""
        worker = self._spawn()
        self._count("respawns")
        if self._sweep_msg is not None:
            self._enroll(worker)
        return worker.wid

    def end_sweep(self) -> None:
        """Release the sweep table and tell workers to drop their views."""
        if self._table is not None:
            self._table.close()
            self._table = None
        if self._sweep_msg is not None:
            gen = self._sweep_msg[1]
            self._sweep_msg = None
            for worker in self._workers.values():
                if worker.gen != gen:
                    continue
                try:
                    worker.conn.send(("end_sweep", gen))
                except (OSError, BrokenPipeError):
                    pass  # dead worker: reaped on the next poll

    # -- shutdown ----------------------------------------------------------
    def close(self, timeout: float = 1.0) -> None:
        """Stop every worker (graceful, then the axe)."""
        self.end_sweep()
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for worker in list(self._workers.values()):
            worker.proc.join(timeout=max(0.0,
                                         deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
            self._reap(worker.wid)

    def __enter__(self) -> "PersistentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_default_executor: Optional[PersistentExecutor] = None


def get_default_executor() -> PersistentExecutor:
    """The process-wide warm executor (created on first use).

    Shared by every persistent-backend sweep of the process — this
    sharing *is* the optimisation: workers spawned for the first sweep
    stay warm for every later one.  Shut down atexit (workers are
    daemonic besides, so even a hard parent death leaks nothing).
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = PersistentExecutor()
    return _default_executor


def peek_default_executor() -> Optional[PersistentExecutor]:
    """The default executor if one was ever created (no side effects)."""
    return _default_executor


def shutdown_default_executor() -> None:
    """Tear down the process-default executor (atexit / tests)."""
    global _default_executor
    if _default_executor is not None:
        _default_executor.close()
        _default_executor = None


atexit.register(shutdown_default_executor)


__all__ = [
    "PersistentExecutor",
    "START_METHOD_ENV",
    "StealScheduler",
    "WorkerEvent",
    "get_default_executor",
    "peek_default_executor",
    "shutdown_default_executor",
    "start_method",
]
