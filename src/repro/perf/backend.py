"""Pluggable sweep executor backends.

:func:`repro.perf.pool.run_cells` and the PR 6
:class:`~repro.perf.supervisor.Supervisor` no longer hard-code *how*
cells reach worker processes — they execute through an
:class:`ExecutorBackend`:

* ``"serial"`` — in-process, one cell at a time (forced even when
  ``jobs > 1``; useful for debugging and as the identity baseline);
* ``"pool"`` — the legacy spawn-per-sweep
  :class:`~concurrent.futures.ProcessPoolExecutor`, kept for
  comparison benchmarks and as the conservative fallback;
* ``"persistent"`` — the PR 10 warm-worker executor with zero-copy
  spec-table dispatch and work stealing
  (:mod:`repro.perf.persistent`); the default for parallel sweeps.

Backend contract
----------------
Every backend — including a future multi-host dispatcher — must
guarantee (see DESIGN.md §8 for the normative text):

1. **Deterministic merge.**  ``run`` returns one result per input
   cell *in input order*, regardless of completion order, worker
   count, or stealing.  Identity is byte-level outside the reserved
   ``"_perf"`` quarantine.
2. **State reset.**  Every execution goes through
   :func:`repro.perf.pool._execute` (or an exact equivalent), so
   process-global state is reset per cell and a cell's result never
   depends on which worker ran it or what ran before.
3. **Fail-fast by default.**  Without a supervisor, the first cell
   exception propagates to the caller with its original type and
   message.  Retries, quarantine (``"_failed"``) and fingerprint-keyed
   resume are *supervisor* semantics layered on top, not backend ones.

Selection
---------
``run_cells(backend=...)`` > process default
(:func:`set_default_backend`, installed by the CLI ``--backend`` flag)
> the ``REPRO_BACKEND`` env var > the built-in default (``persistent``
for the bare path).  The supervisor resolves through the same chain
but falls back to the legacy ``pool`` backend, whose
rebuild-the-world semantics its historical contract (and test suite)
pins; it also maps ``serial`` to ``pool`` because supervision without
process isolation could neither contain crashes nor cancel hangs.
"""

from __future__ import annotations

import itertools
import os
from typing import Optional, Sequence

#: env var naming the default backend when no explicit choice is made
BACKEND_ENV = "REPRO_BACKEND"

#: resolution order sentinel accepted anywhere a backend name is:
#: "auto" defers to the default chain
AUTO = "auto"


class ExecutorBackend:
    """How sweep cells reach (worker) processes — see module docs."""

    #: registry name; also what ``--backend`` accepts
    name: str = "?"

    def run(self, cells: Sequence, jobs: int, capture: Optional[bool],
            prints: Optional[Sequence[str]] = None) -> list:
        """Execute ``cells``; return results in input order.

        ``prints`` is the optional list of PR 4 content fingerprints
        aligned with ``cells`` (already computed by the caller when a
        cache is active) — backends that dispatch by fingerprint reuse
        them instead of re-hashing.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SerialBackend(ExecutorBackend):
    """In-process execution, one cell at a time."""

    name = "serial"

    def run(self, cells, jobs, capture, prints=None):
        from repro.perf.pool import _execute

        return [_execute(cell, capture) for cell in cells]


class PoolBackend(ExecutorBackend):
    """Legacy spawn-per-sweep ``ProcessPoolExecutor`` fan-out."""

    name = "pool"

    def run(self, cells, jobs, capture, prints=None):
        from concurrent.futures import ProcessPoolExecutor

        from repro.perf.pool import _execute

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells))
        ) as pool:
            # map() yields results in submission order regardless of
            # which worker finishes first — the merge is deterministic
            return list(pool.map(_execute, cells,
                                 itertools.repeat(capture)))


class PersistentBackend(ExecutorBackend):
    """Warm-worker executor with work stealing (PR 10 tentpole)."""

    name = "persistent"

    def run(self, cells, jobs, capture, prints=None):
        from repro.perf.persistent import (StealScheduler,
                                           get_default_executor)

        executor = get_default_executor()
        gen, wids = executor.begin_sweep(cells, capture=capture,
                                         jobs=min(jobs, len(cells)))
        results: list = [None] * len(cells)
        pending = set(range(len(cells)))
        sched = StealScheduler(wids)
        sched.extend(range(len(cells)))
        idle = set(wids)
        inflight: dict[int, int] = {}  # wid -> cell index
        failures: dict[int, BaseException] = {}
        try:
            while pending:
                if not failures:
                    for wid in sorted(idle):
                        index = sched.next_for(wid)
                        if index is None:
                            break
                        fp = prints[index] if prints else ""
                        try:
                            executor.dispatch(wid, index, 0, fp)
                        except (KeyError, RuntimeError, OSError):
                            # the worker died between poll and
                            # dispatch; fail fast like any other death
                            pending.discard(index)
                            failures[index] = RuntimeError(
                                f"worker {wid} died before cell "
                                f"{index} could be dispatched")
                            idle.discard(wid)
                            continue
                        inflight[wid] = index
                        idle.discard(wid)
                if not inflight:
                    break  # failed cells drained; nothing left to reap
                for ev in executor.poll(0.05):
                    if ev.kind == "result":
                        index = inflight.pop(ev.wid, None)
                        idle.add(ev.wid)
                        if index is None or ev.index != index:
                            continue  # defensive: not ours
                        pending.discard(index)
                        if ev.ok:
                            results[index] = ev.payload
                        else:
                            failures[index] = ev.payload
                    elif ev.kind == "died":
                        index = inflight.pop(ev.wid, None)
                        idle.discard(ev.wid)
                        if index is not None:
                            pending.discard(index)
                            failures[index] = RuntimeError(
                                f"worker died (exit {ev.exitcode}) "
                                f"while running cell {index}")
        finally:
            executor.end_sweep()
        if pending and not failures:  # pragma: no cover - defensive
            raise RuntimeError(
                "persistent sweep stalled: workers were lost without "
                "delivering results")
        if failures:
            # fail fast like the serial path: the *earliest declared*
            # failing cell wins, so which worker finished first never
            # changes the raised error
            raise failures[min(failures)]
        return results


#: singleton registry — backends are stateless policy objects
BACKENDS: dict[str, ExecutorBackend] = {
    b.name: b for b in (SerialBackend(), PoolBackend(),
                        PersistentBackend())
}

_default_backend: Optional[str] = None


def get_default_backend() -> Optional[str]:
    """The process-wide default backend name (``None`` = unset)."""
    return _default_backend


def set_default_backend(name: Optional[str]) -> None:
    """Install (or with ``None``/"auto" remove) the process default."""
    global _default_backend
    if name in (None, AUTO):
        _default_backend = None
        return
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}")
    _default_backend = name


def resolve_backend(spec=None, *,
                    for_supervisor: bool = False) -> ExecutorBackend:
    """Resolve a backend: explicit > default > env > built-in.

    ``spec`` may be an :class:`ExecutorBackend` instance (used as is —
    the seam a multi-host dispatcher plugs into), a registry name, or
    ``None``/``"auto"`` to walk the default chain.  With
    ``for_supervisor=True`` the built-in fallback is the legacy
    ``pool`` backend and ``serial`` is promoted to ``pool`` (the
    supervisor requires process isolation).
    """
    if isinstance(spec, ExecutorBackend):
        return spec
    name = spec if spec not in (None, AUTO) else None
    if name is None:
        name = get_default_backend()
    if name is None:
        env = os.environ.get(BACKEND_ENV, "").strip().lower()
        name = env or None
        if name == AUTO:
            name = None
    if name is None:
        name = "pool" if for_supervisor else "persistent"
    if for_supervisor and name == "serial":
        name = "pool"
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None


def resolve_jobs(jobs) -> int:
    """Parse a job count, accepting ``"auto"`` = ``os.cpu_count()``."""
    if isinstance(jobs, str):
        if jobs.strip().lower() == AUTO:
            return os.cpu_count() or 1
        jobs = int(jobs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


__all__ = [
    "AUTO",
    "BACKENDS",
    "BACKEND_ENV",
    "ExecutorBackend",
    "PersistentBackend",
    "PoolBackend",
    "SerialBackend",
    "get_default_backend",
    "resolve_backend",
    "resolve_jobs",
    "set_default_backend",
]
