"""Supervised sweep execution: retries, deadlines, rebuilds, quarantine,
checkpoint/resume.

:func:`repro.perf.pool.run_cells` assumes a well-behaved host: a worker
crash raises ``BrokenProcessPool`` and loses the whole sweep, a hung
worker stalls the merge forever, and a killed run restarts from zero.
:class:`Supervisor` wraps the same cell model with production traffic
semantics — the host-layer mirror of what :mod:`repro.faults` did for
the *simulated* system in PR 1:

* **Deadlines.**  Every in-flight cell gets a wall-clock deadline
  derived from a running (exponential moving average) estimate of cell
  cost, clamped to a configurable floor/cap — or a fixed
  ``cell_timeout_s``.  A cell that overruns gets one grace extension
  (mirroring the gang scheduler's straggler quantum extension), then is
  treated as hung: its workers are killed and the cell is rescheduled.
* **Retries.**  A failed attempt (worker crash, in-cell exception,
  deadline kill) is retried with exponential backoff, up to
  ``max_retries`` re-executions.  Cells are pure functions of their
  kwargs and every attempt goes through the same
  :func:`~repro.perf.pool._execute` global-state reset, so a retry is
  re-seeded-identical: a surviving attempt produces the same bytes the
  first attempt would have.
* **Pool rebuilds.**  ``BrokenProcessPool`` no longer sinks the sweep:
  finished results are harvested, the pool is rebuilt, and interrupted
  cells are resubmitted.  The crash cannot be attributed to one cell,
  so every interrupted cell is charged one attempt (the in-flight
  window is at most ``jobs`` cells wide).
* **Quarantine.**  A cell that fails ``max_retries + 1`` attempts is
  *blacklisted* — borrowing the idea from the Blacklisting Memory
  Scheduler: misbehaving streams are isolated rather than allowed to
  stall everyone.  Its slot in the merged record becomes
  ``{"_failed": {...}}`` (exception text, attempt count, per-attempt
  timings) and the rest of the sweep completes normally.  ``"_failed"``
  is a reserved key like ``"_perf"``: excluded from identity
  guarantees, never produced by healthy runs.
* **Checkpoint/resume.**  With journaling on, every settled cell is
  recorded in ``results/.sweepjournal/<sweep_id>.jsonl``
  (:mod:`repro.perf.journal`) and its result stored in a
  content-addressed cell store — the process
  :class:`~repro.perf.cache.CellCache` when one is active, otherwise a
  journal-scoped store.  A later run with ``resume=True`` re-executes
  only the cells the journal does not mark done, and merges to the
  byte-identical record an uninterrupted run would have produced
  (outside the ``"_perf"`` quarantine, where served cells are
  annotated).

Determinism
-----------
The merge remains in declaration order and every cell result is a pure
function of its kwargs, so a supervised sweep — even one that suffered
injected crashes, hangs and rebuilds — merges to the same bytes as a
plain serial ``run_cells`` (enforced by
``tests/perf/test_supervisor.py``).  Host fault injection for tests and
the chaos benchmark comes from
:class:`~repro.faults.worker.WorkerFaultPlan`.

Telemetry: ``supervisor_*`` counters (``completed``, ``retries``,
``rebuilds``, ``timeouts``, ``deadline_extensions``, ``quarantined``,
``resumed``) flow through the :mod:`repro.obs` registry, and the same
values are always available on :attr:`Supervisor.stats`.  PR 8 adds
two richer channels: :attr:`Supervisor.events` is a
:class:`repro.obs.sweep.SweepEventLog` recording every supervision
decision (retry, grace extension, hung-kill, pool rebuild,
quarantine, …) correlated by cell key + attempt — mirrored to
``<sweep_id>.events.jsonl`` next to the journal when journaling is on
— and a :class:`repro.obs.sweep.ProgressTicker` renders live
done/running/quarantined + ETA (from the EMA cost estimate) to stderr
during long sweeps (TTY only unless forced via
``SupervisorConfig.progress``).

Mirroring the cache and obs subsystems, a process-default supervisor
installed with :func:`set_default_supervisor` is picked up by
:func:`repro.perf.pool.run_cells` — this is how the CLI's
``--max-retries`` / ``--cell-timeout`` / ``--resume`` flags reach every
sweep experiment without threading a parameter through each harness.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable, Optional

from repro.faults.worker import WorkerFaultPlan
from repro.obs.sweep import ProgressTicker, SweepEventLog, capture_enabled
from repro.perf.journal import DEFAULT_JOURNAL_DIR, SweepJournal, sweep_id
from repro.perf.pool import Cell, _check_cells, _execute

#: reserved key marking a quarantined cell in the merged record
FAILED_KEY = "_failed"

#: sentinel exit code used by injected worker crashes (diagnostic only)
_CRASH_EXIT_CODE = 13


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy for one sweep."""

    #: re-executions allowed per cell after its first failed attempt
    max_retries: int = 3
    #: fixed per-cell deadline; ``None`` = adaptive from the running
    #: cost estimate (the cap alone until the first cell completes)
    cell_timeout_s: Optional[float] = None
    #: adaptive deadline = clamp(multiplier * estimate, floor, cap)
    timeout_floor_s: float = 2.0
    timeout_cap_s: float = 900.0
    timeout_multiplier: float = 8.0
    #: one grace extension of ``grace_factor * budget`` before a cell
    #: is declared hung (the straggler gets a second chance first)
    grace_factor: float = 0.5
    #: exponential retry backoff: base * factor**(attempt-1), capped
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: watchdog poll period (host wall clock)
    poll_interval_s: float = 0.05
    #: record settled cells in the sweep journal
    journal: bool = False
    #: where journals (and journal-scoped result stores) live
    journal_dir: str | Path = DEFAULT_JOURNAL_DIR
    #: skip cells a previous journal marks done (implies journaling)
    resume: bool = False
    #: host fault injection (tests / hidden ``--chaos`` flag only)
    worker_faults: Optional[WorkerFaultPlan] = None
    #: live progress/ETA ticker on stderr: ``None`` auto-detects (on
    #: only when stderr is a TTY), ``True``/``False`` force it
    progress: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive when set")
        if self.timeout_floor_s <= 0 or self.timeout_cap_s <= 0:
            raise ValueError("timeout floor/cap must be positive")
        if self.timeout_floor_s > self.timeout_cap_s:
            raise ValueError("timeout_floor_s must be <= timeout_cap_s")
        if self.timeout_multiplier < 1.0:
            raise ValueError("timeout_multiplier must be >= 1")
        if self.grace_factor < 0.0:
            raise ValueError("grace_factor must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    @property
    def journaling(self) -> bool:
        return self.journal or self.resume


def _supervised_execute(cell: Cell, index: int, attempt: int,
                        plan: Optional[WorkerFaultPlan],
                        capture: Optional[bool] = None) -> Any:
    """Worker-side shim: apply any injected host fault, then run the cell.

    Runs in the worker process.  The injected behaviours model the real
    failures the supervisor exists to absorb: ``os._exit`` is a
    fail-stop crash (no exception crosses the pipe, the executor
    breaks), a long sleep is a hang (only the parent's deadline
    watchdog can end it), a short sleep is a straggling start.
    ``capture`` is the telemetry-capture flag forwarded to
    :func:`~repro.perf.pool._execute`.
    """
    if plan is not None and plan.active:
        kind = plan.decide(index, attempt)
        if kind == "crash":
            os._exit(_CRASH_EXIT_CODE)
        elif kind == "hang":
            time.sleep(plan.hang_s)
        elif kind == "slow":
            time.sleep(plan.slow_start_s)
    return _execute(cell, capture)


class _CellState:
    """Supervision bookkeeping for one incomplete cell."""

    __slots__ = ("index", "cell", "fp", "attempts", "timeout_kills",
                 "errors", "timings", "ready_at", "submitted_at",
                 "budget", "deadline", "extended")

    def __init__(self, index: int, cell: Cell, fp: str) -> None:
        self.index = index
        self.cell = cell
        self.fp = fp
        #: failed attempts so far
        self.attempts = 0
        #: attempts killed by the deadline watchdog (drives escalation)
        self.timeout_kills = 0
        #: one message per failed attempt
        self.errors: list[str] = []
        #: wall seconds of every attempt (failed and successful)
        self.timings: list[float] = []
        #: earliest host time the next attempt may be submitted
        self.ready_at = 0.0
        self.submitted_at = 0.0
        #: deadline budget for the in-flight attempt (None = disarmed)
        self.budget: Optional[float] = None
        self.deadline: Optional[float] = None
        #: grace extension already granted to the in-flight attempt
        self.extended = False


class _SweepBook:
    """Shared bookkeeping for one supervised sweep.

    Both supervision loops — the legacy pool loop
    (:meth:`Supervisor._run_supervised`) and the persistent-executor
    loop (:meth:`Supervisor._run_persistent`) — settle cells through
    the same two methods, so retries, backoff, quarantine, journaling
    and the result-store contract are backend-independent by
    construction: a backend decides *where* a cell runs, never what
    happens when it settles.
    """

    def __init__(self, sup: "Supervisor", cells, prints, results,
                 todo, cache, store, journal, journaled) -> None:
        self.sup = sup
        self.results = results
        self.cache = cache
        self.store = store
        self.journal = journal
        self.journaled = journaled
        self.states = {i: _CellState(i, cells[i], prints[i])
                       for i in todo}
        #: cells awaiting (re)submission, possibly backing off
        self.waiting: list[int] = list(todo)
        #: cells settled for good this run
        self.done = 0
        self.quar = 0
        #: live-progress hook (set by the driving loop)
        self.ticker: Optional[ProgressTicker] = None

    @property
    def open_cells(self) -> int:
        """Cells not yet settled (neither completed nor quarantined)."""
        return len(self.states) - self.done - self.quar

    def settle_success(self, st: _CellState, result) -> None:
        sup = self.sup
        wall = time.monotonic() - st.submitted_at
        st.timings.append(wall)
        sup._observe(wall, key=repr(st.cell.key))
        self.results[st.index] = result
        sup._count("completed")
        sup.events.log("cell_done", key=st.cell.key,
                       attempt=st.attempts + 1, wall_s=wall)
        self.done += 1
        if isinstance(result, dict) and self.ticker is not None:
            ev = result.get("events_dispatched")
            if isinstance(ev, (int, float)):
                self.ticker.add_events(ev)
        if self.cache is not None:
            self.cache.put(st.fp, result, label=repr(st.cell.key))
        if self.store is not None and self.store is not self.cache:
            self.store.put(st.fp, result, label=repr(st.cell.key))
        if self.journal is not None and st.fp not in self.journaled:
            self.journal.record_done(st.fp, repr(st.cell.key),
                                     attempts=st.attempts + 1,
                                     wall_s=wall)
            self.journaled.add(st.fp)

    def settle_failure(self, st: _CellState, error: str,
                       charge: bool = True) -> None:
        """Record a failed attempt; requeue or quarantine."""
        sup = self.sup
        cfg = sup.config
        if charge:
            st.attempts += 1
            st.errors.append(error)
            st.timings.append(time.monotonic() - st.submitted_at)
        if not charge or st.attempts <= cfg.max_retries:
            if charge:
                sup._count("retries")
                backoff = min(
                    cfg.backoff_max_s,
                    cfg.backoff_base_s
                    * cfg.backoff_factor ** (st.attempts - 1),
                )
                st.ready_at = time.monotonic() + backoff
                sup.events.log("retry", key=st.cell.key,
                               attempt=st.attempts, error=error,
                               backoff_s=backoff)
            else:
                sup.events.log("requeued", key=st.cell.key,
                               attempt=st.attempts)
            self.waiting.append(st.index)
            return
        # poison cell: blacklist it into the merged record so the
        # rest of the sweep survives
        sup._count("quarantined")
        sup.events.log("quarantine", key=st.cell.key,
                       attempt=st.attempts, error=st.errors[-1])
        self.quar += 1
        self.results[st.index] = {
            FAILED_KEY: {
                "key": repr(st.cell.key),
                "error": st.errors[-1],
                "errors": list(st.errors),
                "attempts": st.attempts,
                "attempt_s": list(st.timings),
            }
        }
        if self.journal is not None:
            self.journal.record_failed(st.fp, repr(st.cell.key),
                                       attempts=st.attempts,
                                       error=st.errors[-1])


class Supervisor:
    """Run sweep cells to completion under failures (see module docs)."""

    _STATS = ("completed", "retries", "rebuilds", "respawns",
              "timeouts", "deadline_extensions", "quarantined",
              "resumed")

    def __init__(self, config: Optional[SupervisorConfig] = None,
                 obs=None, progress_stream=None) -> None:
        self.config = config or SupervisorConfig()
        if obs is None:
            from repro.obs import get_default

            obs = get_default()
        self.stats: dict[str, int] = {k: 0 for k in self._STATS}
        self._counters = {
            k: obs.counter(f"supervisor_{k}") for k in self._STATS
        }
        #: structured supervision event log (retries, kills, rebuilds,
        #: quarantines, …); mirrored to JSONL when journaling is on
        self.events = SweepEventLog()
        self._progress_stream = progress_stream
        #: running EMA of successful-attempt wall seconds
        self._estimate: Optional[float] = None
        #: per-cell-key EMA of wall seconds — feeds the work-stealing
        #: scheduler's largest-cost-first initial assignment
        self._estimates: dict[str, float] = {}

    # -- counters ----------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        self.stats[key] += n
        self._counters[key].inc(n)

    # -- public API --------------------------------------------------------
    def run(self, cells, jobs: int = 1, cache=None,
            capture: Optional[bool] = None,
            backend=None) -> dict[Hashable, Any]:
        """Run ``cells`` under supervision; returns ``{key: result}``.

        Same contract as :func:`repro.perf.pool.run_cells` — results
        merge in declaration order for any ``jobs`` — except that
        quarantined cells yield ``{"_failed": {...}}`` instead of
        raising, and (with journaling) completed cells survive a dead
        process.  Unlike plain ``run_cells``, *every* execution happens
        in a worker process (``jobs=1`` supervises a single worker):
        isolation is what makes crash containment and hung-worker
        cancellation possible at all.

        ``capture`` is the worker telemetry-capture flag (see
        :func:`repro.perf.pool._execute`); ``None`` reads the process
        capture env flag.

        ``backend`` selects the executor backend
        (:func:`repro.perf.backend.resolve_backend` with the
        supervisor chain: explicit > process default > env > legacy
        ``pool``).  On the persistent backend a worker death is
        answered by respawning one worker instead of rebuilding the
        pool; everything else — retries, deadlines, quarantine,
        journal/resume — is identical.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        cells = list(cells)
        keys = _check_cells(cells)
        if capture is None:
            capture = capture_enabled()

        from repro.perf.cache import CellCache, fingerprint, \
            get_default_cache

        if cache is None:
            cache = get_default_cache()
        prints = [fingerprint(c.fn, c.kwargs) for c in cells]

        results: list[Any] = [None] * len(cells)
        settled = [False] * len(cells)

        journal = store = None
        journaled: set[str] = set()
        if self.config.journaling:
            journal = SweepJournal(sweep_id(prints),
                                   root=self.config.journal_dir)
            self.events.attach(Path(self.config.journal_dir)
                               / f"{journal.sweep}.events.jsonl")
            # the result store backing resume: the active cache when
            # there is one (composition, not duplication), otherwise a
            # journal-scoped content-addressed store
            store = cache if cache is not None else CellCache(
                root=Path(self.config.journal_dir)
                / f"{journal.sweep}.store"
            )
            done_before = journal.completed()
            journaled = set(done_before)
            if self.config.resume and done_before:
                for i, fp in enumerate(prints):
                    if fp not in done_before:
                        continue
                    hit = store.get(fp)
                    if hit is not None:
                        results[i] = hit
                        settled[i] = True
                        self._count("resumed")
                        self.events.log("resumed", key=cells[i].key)
                    # a done entry whose stored result vanished simply
                    # re-executes — the journal is an index, the store
                    # is the source of truth

        # cache pre-pass, as in run_cells; hits are journaled too so a
        # resume does not depend on the cache staying warm elsewhere
        if cache is not None:
            for i, cell in enumerate(cells):
                if settled[i]:
                    continue
                hit = cache.get(prints[i])
                if hit is not None:
                    results[i] = hit
                    settled[i] = True
                    if journal is not None and prints[i] not in journaled:
                        journal.record_done(prints[i], repr(cell.key),
                                            attempts=0, wall_s=0.0)
                        journaled.add(prints[i])

        todo = [i for i in range(len(cells)) if not settled[i]]
        self.events.log("sweep_begin", cells=len(cells), jobs=jobs,
                        todo=len(todo))
        try:
            if todo:
                from repro.perf.backend import resolve_backend

                be = resolve_backend(backend, for_supervisor=True)
                book = _SweepBook(self, cells, prints, results, todo,
                                  cache, store, journal, journaled)
                if be.name == "persistent":
                    self._run_persistent(book, cells, jobs, capture)
                else:
                    self._run_supervised(book, jobs, capture)
        finally:
            if journal is not None:
                journal.close()
            self.events.close_file()
        return dict(zip(keys, results))

    # -- legacy pool loop --------------------------------------------------
    def _run_supervised(self, book: _SweepBook, jobs: int,
                        capture=None) -> None:
        cfg = self.config
        states = book.states
        waiting = book.waiting
        workers = min(jobs, len(states))
        pool = ProcessPoolExecutor(max_workers=workers)
        inflight: dict[Future, _CellState] = {}
        done0 = len(book.results) - len(states)
        ticker = ProgressTicker(total=len(book.results), done=done0,
                                enabled=cfg.progress,
                                stream=self._progress_stream)
        book.ticker = ticker
        settle_success = book.settle_success
        settle_failure = book.settle_failure

        def harvest(fut: Future, st: _CellState) -> bool:
            """Consume one completed future; True if the pool broke."""
            try:
                result = fut.result()
            except BrokenProcessPool:
                settle_failure(st, "worker crashed (BrokenProcessPool)")
                return True
            except Exception as exc:  # raised inside the cell function
                settle_failure(st, f"{type(exc).__name__}: {exc}")
                return False
            settle_success(st, result)
            return False

        def rebuild(hung: tuple[_CellState, ...] = ()) -> None:
            """Kill the pool, salvage finished work, requeue the rest.

            ``hung`` cells were already settled by the watchdog; every
            other unfinished in-flight cell is requeued.  When the
            rebuild was *caused* by the watchdog (``hung`` non-empty)
            the innocent bystanders are requeued without an attempt
            charge — the supervisor killed them, they did nothing
            wrong.  A spontaneous break charges everyone in flight (the
            culprit is unattributable).
            """
            nonlocal pool
            self._count("rebuilds")
            self.events.log("pool_rebuild",
                            cause="hung_worker" if hung else "worker_crash",
                            inflight=len(inflight))
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:  # pragma: no cover - defensive
                    pass
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass
            # mark the dead pool's wakeup pipe closed so the
            # concurrent.futures atexit hook does not try to write to
            # its already-broken fd at interpreter shutdown
            wakeup = getattr(pool, "_executor_manager_thread_wakeup",
                             None)
            if wakeup is not None:
                try:
                    wakeup.close()
                except Exception:  # pragma: no cover - defensive
                    pass
            for fut, st in list(inflight.items()):
                if st in hung:
                    continue
                if fut.done() and not fut.cancelled():
                    harvest(fut, st)
                else:
                    settle_failure(
                        st, "worker crashed (BrokenProcessPool)",
                        charge=not hung,
                    )
            inflight.clear()
            pool = ProcessPoolExecutor(max_workers=workers)

        try:
            while waiting or inflight:
                now = time.monotonic()
                # submit every ready cell a worker is free for
                waiting.sort(key=lambda i: (states[i].ready_at, i))
                while waiting and len(inflight) < workers \
                        and states[waiting[0]].ready_at <= now:
                    st = states[waiting.pop(0)]
                    st.submitted_at = time.monotonic()
                    st.budget, st.deadline = self._deadline(st)
                    st.extended = False
                    try:
                        fut = pool.submit(_supervised_execute, st.cell,
                                          st.index, st.attempts,
                                          cfg.worker_faults, capture)
                    except BrokenProcessPool:
                        # the pool broke between polls and the break
                        # surfaced at submit: this cell never started,
                        # so requeue it uncharged and rebuild
                        settle_failure(
                            st, "worker crashed (BrokenProcessPool)",
                            charge=False)
                        rebuild()
                        break
                    inflight[fut] = st

                if not inflight:
                    # everything is backing off; sleep to the earliest
                    time.sleep(max(0.0, min(
                        states[i].ready_at for i in waiting) - now))
                    continue

                done, _ = wait(set(inflight),
                               timeout=cfg.poll_interval_s,
                               return_when=FIRST_COMPLETED)
                broken = False
                for fut in done:
                    st = inflight.pop(fut)
                    broken |= harvest(fut, st)
                if broken:
                    rebuild()
                    continue

                # deadline watchdog
                now = time.monotonic()
                hung: list[_CellState] = []
                for st in inflight.values():
                    if st.deadline is None or now <= st.deadline:
                        continue
                    if not st.extended and cfg.grace_factor > 0.0:
                        # one straggler grace, then the axe
                        st.extended = True
                        st.deadline = now + cfg.grace_factor * st.budget
                        self._count("deadline_extensions")
                        self.events.log(
                            "grace_extension", key=st.cell.key,
                            attempt=st.attempts,
                            extra_s=cfg.grace_factor * st.budget)
                    else:
                        hung.append(st)
                if hung:
                    for st in hung:
                        self._count("timeouts")
                        st.timeout_kills += 1
                        self.events.log(
                            "hung_kill", key=st.cell.key,
                            attempt=st.attempts,
                            elapsed_s=time.monotonic() - st.submitted_at,
                            budget_s=st.budget)
                        settle_failure(
                            st,
                            f"deadline exceeded "
                            f"({time.monotonic() - st.submitted_at:.2f}s"
                            f" > budget {st.budget:.2f}s)",
                        )
                    rebuild(hung=tuple(hung))

                remaining = book.open_cells
                eta = None
                if self._estimate is not None and remaining > 0:
                    eta = remaining * self._estimate / max(1, workers)
                ticker.update(done=done0 + book.done,
                              running=len(inflight),
                              quarantined=book.quar, eta_s=eta)
        finally:
            ticker.close()
            pool.shutdown(wait=False, cancel_futures=True)

    # -- persistent-executor loop ------------------------------------------
    def _run_persistent(self, book: _SweepBook, cells, jobs: int,
                        capture=None) -> None:
        """Drive one sweep on the persistent warm-worker executor.

        Failure handling is surgical where the legacy pool loop is
        wholesale: a worker crash loses exactly the cell that worker
        held and is answered by respawning *one* worker (``respawns``
        stat, ``worker_respawn`` event) — the surviving workers never
        notice.  A hung cell gets the same grace-then-kill escalation
        as before, but the kill hits only its own worker.  Dispatch
        order comes from the work-stealing scheduler, seeded
        largest-EMA-cost-first from the per-key estimates; retries,
        backoff, quarantine and journaling are shared with the legacy
        loop through the sweep book, so the merged record is
        byte-identical across backends.
        """
        from repro.perf.persistent import (StealScheduler,
                                           get_default_executor)

        cfg = self.config
        states = book.states
        executor = get_default_executor()
        gen, wids = executor.begin_sweep(
            cells, capture=capture, plan=cfg.worker_faults,
            jobs=min(jobs, len(states)))
        sched = StealScheduler(
            wids, cost=lambda i: self._cost_hint(cells[i]))
        inflight: dict[int, _CellState] = {}
        idle = set(wids)
        done0 = len(book.results) - len(states)
        ticker = ProgressTicker(total=len(book.results), done=done0,
                                enabled=cfg.progress,
                                stream=self._progress_stream)
        book.ticker = ticker
        self.events.log("persistent_begin", workers=len(wids),
                        gen=gen)

        def respawn(cause: str, wid: int, exitcode=None) -> None:
            self._count("respawns")
            new_wid = executor.respawn()
            sched.replace_worker(wid, new_wid)
            idle.discard(wid)
            idle.add(new_wid)
            self.events.log("worker_respawn", cause=cause,
                            exit=exitcode)

        try:
            while book.open_cells:
                now = time.monotonic()
                # feed cells whose backoff has elapsed to the
                # scheduler in one batch, so the LPT assignment sees
                # them together
                ready = [i for i in book.waiting
                         if states[i].ready_at <= now]
                if ready:
                    gone = set(ready)
                    book.waiting = [i for i in book.waiting
                                    if i not in gone]
                    sched.extend(ready)

                for wid in sorted(idle):
                    index = sched.next_for(wid)
                    if index is None:
                        break
                    st = states[index]
                    st.submitted_at = time.monotonic()
                    st.budget, st.deadline = self._deadline(st)
                    st.extended = False
                    try:
                        executor.dispatch(wid, index, st.attempts,
                                          st.fp)
                    except (KeyError, RuntimeError, OSError):
                        # raced a worker death: requeue uncharged;
                        # the death itself surfaces via poll below
                        idle.discard(wid)
                        book.settle_failure(
                            st, "worker lost before dispatch",
                            charge=False)
                        continue
                    inflight[wid] = st
                    idle.discard(wid)

                for ev in executor.poll(cfg.poll_interval_s):
                    if ev.kind == "result":
                        st = inflight.pop(ev.wid, None)
                        idle.add(ev.wid)
                        if st is None or ev.index != st.index:
                            continue  # defensive: not this sweep's
                        if ev.ok:
                            book.settle_success(st, ev.payload)
                        else:
                            exc = ev.payload
                            book.settle_failure(
                                st, f"{type(exc).__name__}: {exc}")
                    elif ev.kind == "died":
                        st = inflight.pop(ev.wid, None)
                        respawn("worker_crash", ev.wid, ev.exitcode)
                        if st is not None:
                            book.settle_failure(
                                st,
                                f"worker crashed "
                                f"(exit {ev.exitcode})")

                # deadline watchdog: grace once, then kill just the
                # one hung worker
                now = time.monotonic()
                for wid, st in [(w, s) for w, s in inflight.items()
                                if s.deadline is not None
                                and now > s.deadline]:
                    if not st.extended and cfg.grace_factor > 0.0:
                        st.extended = True
                        st.deadline = now + cfg.grace_factor * st.budget
                        self._count("deadline_extensions")
                        self.events.log(
                            "grace_extension", key=st.cell.key,
                            attempt=st.attempts,
                            extra_s=cfg.grace_factor * st.budget)
                        continue
                    self._count("timeouts")
                    st.timeout_kills += 1
                    self.events.log(
                        "hung_kill", key=st.cell.key,
                        attempt=st.attempts,
                        elapsed_s=time.monotonic() - st.submitted_at,
                        budget_s=st.budget)
                    executor.kill_worker(wid)
                    inflight.pop(wid, None)
                    respawn("hung_worker", wid)
                    book.settle_failure(
                        st,
                        f"deadline exceeded "
                        f"({time.monotonic() - st.submitted_at:.2f}s"
                        f" > budget {st.budget:.2f}s)",
                    )

                remaining = book.open_cells
                eta = None
                if self._estimate is not None and remaining > 0:
                    eta = remaining * self._estimate / max(
                        1, len(idle) + len(inflight))
                ticker.update(done=done0 + book.done,
                              running=len(inflight),
                              quarantined=book.quar, eta_s=eta)
        finally:
            ticker.close()
            executor.end_sweep()

    # -- deadline policy ---------------------------------------------------
    def _observe(self, wall_s: float,
                 key: Optional[str] = None) -> None:
        """Fold one successful attempt into the running cost estimates
        (global, and per cell key when given)."""
        if self._estimate is None:
            self._estimate = wall_s
        else:
            self._estimate = 0.7 * self._estimate + 0.3 * wall_s
        if key is not None:
            prev = self._estimates.get(key)
            self._estimates[key] = wall_s if prev is None \
                else 0.7 * prev + 0.3 * wall_s

    def _cost_hint(self, cell: Cell) -> float:
        """Scheduler cost estimate for one cell: per-key EMA, else the
        global EMA, else 0 (unknown; scheduler treats all equally)."""
        est = self._estimates.get(repr(cell.key))
        if est is None:
            est = self._estimate
        return est if est is not None else 0.0

    def _deadline(self, st: _CellState
                  ) -> tuple[Optional[float], Optional[float]]:
        """(budget, absolute deadline) for the attempt just submitted.

        Adaptive budgets clamp ``multiplier * estimate`` to
        ``[floor, cap]``; before any cell has completed the cap itself
        is the budget, so even a hang in the very first batch is
        eventually cancelled.  A cell the watchdog already killed gets
        its budget doubled per kill (past the cap if need be): a
        merely-slow cell converges to a budget it fits in instead of
        being killed identically on every retry and quarantined as a
        false positive — a real hang still dies, just later.
        """
        cfg = self.config
        if cfg.cell_timeout_s is not None:
            budget = cfg.cell_timeout_s
        elif self._estimate is None:
            budget = cfg.timeout_cap_s
        else:
            budget = min(cfg.timeout_cap_s,
                         max(cfg.timeout_floor_s,
                             cfg.timeout_multiplier * self._estimate))
        budget *= 2.0 ** st.timeout_kills
        return budget, st.submitted_at + budget


_default_supervisor: Optional[Supervisor] = None


def get_default_supervisor() -> Optional[Supervisor]:
    """The process-wide default supervisor (``None`` = unsupervised)."""
    return _default_supervisor


def set_default_supervisor(supervisor: Optional[Supervisor]) -> None:
    """Install (or with ``None`` remove) the process default supervisor."""
    global _default_supervisor
    _default_supervisor = supervisor


def quarantined(merged: dict) -> dict[Hashable, dict]:
    """The quarantined entries of a merged record: ``{key: failure}``."""
    return {
        k: v[FAILED_KEY]
        for k, v in merged.items()
        if isinstance(v, dict) and FAILED_KEY in v
    }


class QuarantinedCells(RuntimeError):
    """A sweep completed but some cells were quarantined.

    Raised by aggregators that need every cell's real result; carries
    the ``{key: failure}`` mapping so callers (and tracebacks) name
    the poisoned cells instead of dying on a ``KeyError`` deep inside
    the aggregation.
    """

    def __init__(self, failures: dict, context: str = "sweep"):
        self.failures = failures
        lines = ", ".join(
            f"{k!r}: {f.get('error', '?')} after {f.get('attempts', '?')}"
            f" attempt(s)"
            for k, f in failures.items()
        )
        super().__init__(
            f"{context}: {len(failures)} cell(s) quarantined — {lines}"
        )


def require_ok(merged: dict, context: str = "sweep") -> dict:
    """Return ``merged`` unchanged, or raise :class:`QuarantinedCells`
    if any cell carries a ``"_failed"`` quarantine entry."""
    failures = quarantined(merged)
    if failures:
        raise QuarantinedCells(failures, context)
    return merged


__all__ = [
    "FAILED_KEY",
    "QuarantinedCells",
    "Supervisor",
    "SupervisorConfig",
    "get_default_supervisor",
    "quarantined",
    "require_ok",
    "set_default_supervisor",
]
