"""Persistent sweep worker: warm process serving many sweeps.

One worker process runs :func:`worker_main` for its whole life.  At
boot it pre-warms the hot import graph (numpy, the simulation stack,
the cell executor) so that cost is paid once per worker instead of
once per sweep, then loops over messages on its duplex pipe:

* ``("sweep", gen, transport, capture, plan)`` — map the sweep's
  :class:`~repro.perf.spec.SpecTable` (closing any previous view) and
  remember the telemetry-capture flag and
  :class:`~repro.faults.worker.WorkerFaultPlan` for this generation;
* ``("task", gen, index, attempt, fp)`` — rebuild cell ``index`` from
  the table, apply any injected host fault, execute through the same
  :func:`repro.perf.pool._execute` global-state reset the serial path
  uses, and reply ``("result", wid, gen, index, attempt, fp, ok,
  payload)`` where ``payload`` is the result (``ok``) or the raised
  exception object (so the parent can re-raise the original type);
* ``("end_sweep", gen)`` — drop the spec view (releases the shared
  segment mapping);
* ``("stop",)`` — exit the loop and the process.

Messages on one pipe are ordered, so a task can never observe a stale
spec table: the parent always sends the sweep message first, and a
worker still busy with an aborted sweep's task simply is not enrolled
in the next sweep until it drains.

Fault injection mirrors :func:`repro.perf.supervisor._supervised_execute`
exactly — same plan, same ``(index, attempt)`` draw — so the chaos
suite exercises persistent workers with the identical deterministic
schedule the legacy pool sees: a ``crash`` fail-stops the process via
``os._exit`` (surfacing in the parent as a dead sentinel rather than a
``BrokenProcessPool``), ``hang``/``slow`` sleep before executing.
"""

from __future__ import annotations

import os
import time

#: modules imported at worker boot so sweeps hit a warm interpreter;
#: failures are ignored (a missing optional dep just warms less)
PREWARM_MODULES = (
    "numpy",
    "repro.experiments.runner",
    "repro.perf.pool",
    "repro.obs.sweep",
)

#: sentinel exit code used by injected worker crashes (diagnostic only)
CRASH_EXIT_CODE = 13


def prewarm() -> int:
    """Import the hot module graph; returns how many modules loaded."""
    loaded = 0
    for name in PREWARM_MODULES:
        try:
            __import__(name)
            loaded += 1
        except Exception:  # pragma: no cover - optional dep missing
            pass
    return loaded


def _apply_fault(plan, index: int, attempt: int) -> None:
    """Apply any injected host fault for this (cell, attempt) draw."""
    if plan is None or not plan.active:
        return
    kind = plan.decide(index, attempt)
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif kind == "hang":
        time.sleep(plan.hang_s)
    elif kind == "slow":
        time.sleep(plan.slow_start_s)


def _run_task(view, wid: int, index: int, attempt: int, capture,
              plan) -> tuple[bool, object]:
    """Execute one cell; returns ``(ok, payload)``."""
    from repro.perf.pool import _execute

    try:
        _apply_fault(plan, index, attempt)
        result = _execute(view.cell(index), capture)
    except Exception as exc:
        return False, exc
    # Annotate which worker ran the cell — but only inside an existing
    # "_perf" quarantine, so cells returning plain payloads stay
    # byte-identical to their serial execution.
    if isinstance(result, dict) and "_perf" in result \
            and isinstance(result["_perf"], dict):
        result["_perf"]["worker"] = wid
    return True, result


def worker_main(conn, wid: int) -> None:
    """Entry point of one persistent worker process."""
    prewarm()
    from repro.perf.spec import SpecView

    view = None
    gen = -1
    capture = None
    plan = None
    try:
        conn.send(("ready", wid, os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent went away: nothing left to serve
            op = msg[0]
            if op == "sweep":
                _, gen, transport, capture, plan = msg
                if view is not None:
                    view.close()
                view = SpecView.from_transport(transport)
            elif op == "task":
                _, tgen, index, attempt, fp = msg
                if tgen != gen or view is None:
                    ok, payload = False, RuntimeError(
                        f"worker {wid}: task for generation {tgen} but "
                        f"sweep table is at generation {gen}")
                else:
                    ok, payload = _run_task(view, wid, index, attempt,
                                            capture, plan)
                try:
                    conn.send(("result", wid, tgen, index, attempt, fp,
                               ok, payload))
                except Exception as exc:
                    # unpicklable result/exception: degrade to a
                    # failure the parent can still consume
                    conn.send(("result", wid, tgen, index, attempt, fp,
                               False,
                               RuntimeError(
                                   f"result not picklable: {exc!r}")))
            elif op == "end_sweep":
                if view is not None:
                    view.close()
                    view = None
            elif op == "stop":
                break
    except KeyboardInterrupt:  # pragma: no cover - interactive abort
        pass
    finally:
        if view is not None:
            view.close()
        try:
            conn.close()
        except Exception:  # pragma: no cover - defensive
            pass


__all__ = ["CRASH_EXIT_CODE", "PREWARM_MODULES", "prewarm",
           "worker_main"]
