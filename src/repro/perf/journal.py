"""Sweep checkpoint journal: crash-safe completion log for resumable sweeps.

A supervised sweep (:mod:`repro.perf.supervisor`) appends one JSONL line
per settled cell to ``results/.sweepjournal/<sweep_id>.jsonl``.  When
the sweep process dies — SIGKILL, OOM, host crash — a later run with
resume enabled replays the journal and executes only the cells that
never completed.

Design
------
* **Sweep identity.**  ``sweep_id`` hashes the declaration-ordered list
  of PR 4 cell fingerprints.  Fingerprints already cover the code
  version, the cell function and a canonical kwargs encoding, so a
  journal can only ever be resumed by *the same sweep on the same
  code*: any source edit or config change yields a fresh id and the
  stale journal is simply never read.
* **Completion, not results.**  A ``done`` line records that a cell's
  fingerprint settled (plus key label, attempts, wall seconds); the
  result bytes themselves live in the content-addressed cell store
  (:class:`repro.perf.cache.CellCache` — the process cache when one is
  active, otherwise a journal-scoped store).  The journal composes
  with the cache instead of duplicating it.
* **Torn-write tolerance.**  Appends are single short writes followed
  by ``fsync``; the enclosing directory is fsynced when the journal
  file is created so the *name* survives a host crash too (same
  guarantee :func:`repro.experiments.report_io.save_record` gives
  records).  ``load`` skips a truncated trailing line instead of
  failing, so a crash mid-append costs at most one cell re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Iterable, Optional

#: default journal location, next to the experiment records
DEFAULT_JOURNAL_DIR = Path("results") / ".sweepjournal"


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a freshly created/renamed entry survives a
    host crash.

    ``os.replace``/append only makes the *data* durable; the directory
    entry pointing at it needs its own fsync.  Best-effort: platforms
    or filesystems that cannot fsync a directory are silently skipped
    (the write itself already happened).
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def sweep_id(fingerprints: Iterable[str]) -> str:
    """Stable identity of one sweep: hash of its cell fingerprints.

    Order-sensitive (declaration order is part of the sweep's identity)
    and code-sensitive (each fingerprint embeds the code version), so a
    resumed journal is guaranteed to describe the same cells produced
    by the same code.
    """
    h = hashlib.sha256()
    for fp in fingerprints:
        h.update(fp.encode())
        h.update(b"\n")
    return h.hexdigest()[:24]


class SweepJournal:
    """Append-only JSONL completion log for one sweep.

    Entries are dicts with an ``event`` field:

    * ``{"event": "done", "fp": ..., "key": ..., "attempts": n,
      "wall_s": ...}`` — the cell settled successfully and its result
      is retrievable from the cell store by fingerprint;
    * ``{"event": "failed", "fp": ..., "key": ..., "attempts": n,
      "error": ...}`` — the cell exhausted its retries and was
      quarantined.  Failed cells are *re-executed* on resume (a crash
      environment is exactly when a previous failure may have been the
      host's fault).
    """

    def __init__(self, sweep: str,
                 root: str | Path | None = None) -> None:
        self.sweep = sweep
        self.root = Path(root) if root is not None else DEFAULT_JOURNAL_DIR
        self.path = self.root / f"{sweep}.jsonl"
        self._fh: Optional[IO[str]] = None

    # -- writing -----------------------------------------------------------
    def _handle(self) -> IO[str]:
        if self._fh is None:
            existed = self.path.exists()
            self.root.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
            if not existed:
                # make the new directory entry durable, not just the data
                fsync_dir(self.root)
        return self._fh

    def append(self, entry: dict) -> None:
        """Durably append one entry (single write + fsync)."""
        fh = self._handle()
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def record_done(self, fp: str, key: str, attempts: int,
                    wall_s: float) -> None:
        self.append({"event": "done", "fp": fp, "key": key,
                     "attempts": attempts, "wall_s": wall_s})

    def record_failed(self, fp: str, key: str, attempts: int,
                      error: str) -> None:
        self.append({"event": "failed", "fp": fp, "key": key,
                     "attempts": attempts, "error": error})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Latest entry per fingerprint; ``{}`` when no journal exists.

        A torn trailing line (crash mid-append) is skipped, not fatal:
        the cell it described simply re-executes.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        entries: dict[str, dict] = {}
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn append — ignore
            fp = entry.get("fp")
            if isinstance(fp, str):
                entries[fp] = entry
        return entries

    def completed(self) -> set[str]:
        """Fingerprints whose latest entry is a successful ``done``."""
        return {fp for fp, e in self.load().items()
                if e.get("event") == "done"}

    def clear(self) -> None:
        """Delete this sweep's journal file (store entries untouched)."""
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SweepJournal({self.sweep!r}, path={str(self.path)!r})"


__all__ = ["DEFAULT_JOURNAL_DIR", "SweepJournal", "fsync_dir", "sweep_id"]
