"""Content-addressed cell result cache.

Sweep experiments re-run the same cells over and over during iterative
work (``python -m repro all``, harness reruns, CI).  Every cell is a
pure function of its arguments (the :mod:`repro.perf.pool` determinism
contract), so its merged summary dict can be keyed by *content*: a
fingerprint of

* the **code version** — a digest over every ``repro/**/*.py`` source
  file, so any code change invalidates the whole cache;
* the cell's **function identity** (module + qualname);
* a **canonical encoding of its kwargs** — frozen dataclasses
  (:class:`~repro.experiments.runner.GangConfig`,
  :class:`~repro.disk.device.DiskParams`,
  :class:`~repro.faults.plan.FaultRates`) are encoded field by field,
  dicts are key-sorted, floats use ``repr`` (lossless round-trip).

Anything that could change a cell's deterministic output changes the
fingerprint; anything that cannot (cell key, declaration order, job
count) does not.

Results are stored as **pickles**, one file per fingerprint, under the
cache root (default ``results/.cellcache``).  Pickle rather than JSON
because the identity guarantee is bit-for-bit: JSON would silently turn
tuples into lists and integer dict keys into strings.

A cache hit is annotated at ``result["_perf"]["cache"] = "hit"`` —
``"_perf"`` is the established nondeterminism quarantine
(:func:`repro.experiments.runner.run_cell`), excluded from every
identity guarantee, so cached and fresh sweeps stay byte-identical
outside it.

Mirroring :mod:`repro.obs`, a process-default cache installed with
:func:`set_default_cache` is picked up by
:func:`repro.perf.pool.run_cells` when no explicit cache is passed —
this is how the CLI's ``--cache`` flag reaches every sweep experiment
without threading a parameter through each harness.

Telemetry: ``cellcache_hits`` / ``cellcache_misses`` /
``cellcache_stores`` counters are emitted through the PR 3 obs
registry (the process default unless one is passed explicitly).
Session counters reset per process; **lifetime** counters persist in a
``cachestats.json`` sidecar under the cache root (best-effort
read-modify-write, never allowed to fail a sweep), so
``repro cache stats`` can report a hit rate that spans invocations.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Optional

#: default cache location, next to the experiment records
DEFAULT_CACHE_DIR = Path("results") / ".cellcache"

#: lifetime-counter sidecar filename (``.json``, so ``entries()`` —
#: which globs ``*.pkl`` — never mistakes it for a cached result)
STATS_FILE = "cachestats.json"

_LIFETIME_KEYS = ("hits", "misses", "stores", "corrupt")

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the simulation/experiment code changes this value and
    therefore every fingerprint — the cache can never serve a result
    produced by different code.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CODE_VERSION = h.hexdigest()
    return _CODE_VERSION


def _encode(obj: Any, out: list[str]) -> None:
    """Append a canonical, unambiguous encoding of ``obj`` to ``out``.

    Every supported type gets a distinct tag so values of different
    types can never collide (``1`` vs ``1.0`` vs ``"1"`` vs ``True``).
    """
    if obj is None:
        out.append("N")
    elif isinstance(obj, bool):
        out.append(f"b{int(obj)}")
    elif isinstance(obj, int):
        out.append(f"i{obj}")
    elif isinstance(obj, float):
        out.append(f"f{obj!r}")
    elif isinstance(obj, str):
        out.append(f"s{len(obj)}:{obj}")
    elif isinstance(obj, bytes):
        out.append(f"y{len(obj)}:")
        out.append(obj.hex())
    elif is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(f"D{cls.__module__}.{cls.__qualname__}(")
        for f in fields(obj):
            out.append(f"{f.name}=")
            _encode(getattr(obj, f.name), out)
            out.append(",")
        out.append(")")
    elif isinstance(obj, dict):
        out.append("d{")
        for k in sorted(obj, key=lambda k: (type(k).__name__, repr(k))):
            _encode(k, out)
            out.append(":")
            _encode(obj[k], out)
            out.append(",")
        out.append("}")
    elif isinstance(obj, (list, tuple)):
        out.append("l[" if isinstance(obj, list) else "t[")
        for item in obj:
            _encode(item, out)
            out.append(",")
        out.append("]")
    elif hasattr(obj, "tobytes") and hasattr(obj, "dtype"):  # ndarray
        out.append(f"a{obj.dtype.str}{obj.shape}:")
        out.append(obj.tobytes().hex())
    else:
        raise TypeError(
            f"cell kwargs contain an unfingerprintable value of type "
            f"{type(obj).__name__}: {obj!r}"
        )


def fingerprint(fn: Any, kwargs: dict) -> str:
    """Content fingerprint of one cell: code + function + arguments."""
    parts: list[str] = [
        code_version(),
        "|",
        f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', '?')}",
        "|",
    ]
    _encode(kwargs, parts)
    return hashlib.sha256("".join(parts).encode()).hexdigest()


class CellCache:
    """Persistent fingerprint-to-summary store for sweep cells.

    Parameters
    ----------
    root:
        Cache directory (created on first store).  Defaults to
        ``results/.cellcache``.
    obs:
        Telemetry registry for the hit/miss/store counters; defaults to
        the process-default registry (:func:`repro.obs.get_default`).
    """

    def __init__(self, root: str | Path | None = None, obs=None) -> None:
        if obs is None:
            from repro.obs import get_default

            obs = get_default()
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self._c_hits = obs.counter("cellcache_hits")
        self._c_misses = obs.counter("cellcache_misses")
        self._c_stores = obs.counter("cellcache_stores")
        self._c_corrupt = obs.counter("cellcache_corrupt")

    # -- store ---------------------------------------------------------------
    def _path(self, fp: str) -> Path:
        return self.root / f"{fp}.pkl"

    # -- lifetime counters ---------------------------------------------------
    def _stats_path(self) -> Path:
        return self.root / STATS_FILE

    def _bump_lifetime(self, **deltas: int) -> None:
        """Fold counter deltas into the on-disk sidecar (best effort).

        Plain read-modify-write: concurrent workers may occasionally
        lose an increment, which is acceptable for an advisory hit-rate
        display — correctness of cached *results* never depends on it,
        and any I/O failure is swallowed.
        """
        try:
            totals = self.lifetime()
            for k, n in deltas.items():
                totals[k] = totals.get(k, 0) + n
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._stats_path().with_name(STATS_FILE + ".tmp")
            tmp.write_text(json.dumps(totals, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, self._stats_path())
        except OSError:  # pragma: no cover - advisory only
            pass

    def lifetime(self) -> dict[str, int]:
        """Cross-invocation counters from the sidecar (zeros if none)."""
        totals = {k: 0 for k in _LIFETIME_KEYS}
        try:
            raw = json.loads(
                self._stats_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return totals
        if isinstance(raw, dict):
            for k in _LIFETIME_KEYS:
                v = raw.get(k)
                if isinstance(v, int) and v >= 0:
                    totals[k] = v
        return totals

    @staticmethod
    def _hit_rate(hits: int, misses: int) -> Optional[float]:
        lookups = hits + misses
        return hits / lookups if lookups else None

    def get(self, fp: str) -> Any:
        """Return the cached result for ``fp``, or ``None`` on a miss.

        A hit returns a fresh unpickled object annotated at
        ``["_perf"]["cache"] = "hit"`` (dict results only); the caller
        owns it outright.

        A *corrupt* entry — the file exists but does not unpickle into
        a ``{"result": ...}`` record — degrades to a miss **and is
        deleted**: leaving the bad pickle on disk would make every
        future lookup of this fingerprint re-parse garbage, and the
        slot can never heal until the miss path stores a fresh result
        over it.  Deletions are counted (``cellcache_corrupt``).
        Transient I/O errors other than absence are a plain miss — the
        entry may be fine next time, so it is left alone.
        """
        path = self._path(fp)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            result = entry["result"]
        except FileNotFoundError:
            self.misses += 1
            self._c_misses.inc()
            self._bump_lifetime(misses=1)
            return None
        except OSError:
            self.misses += 1
            self._c_misses.inc()
            self._bump_lifetime(misses=1)
            return None
        except (pickle.PickleError, EOFError, KeyError, TypeError,
                AttributeError, ImportError, IndexError, MemoryError):
            self.corrupt += 1
            self._c_corrupt.inc()
            path.unlink(missing_ok=True)
            self.misses += 1
            self._c_misses.inc()
            self._bump_lifetime(corrupt=1, misses=1)
            return None
        self.hits += 1
        self._c_hits.inc()
        self._bump_lifetime(hits=1)
        if isinstance(result, dict):
            result.setdefault("_perf", {})["cache"] = "hit"
        return result

    def put(self, fp: str, result: Any, label: str = "") -> None:
        """Store ``result`` under ``fp`` (atomic write-then-rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(fp)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump({"label": label, "result": result}, fh,
                        protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stores += 1
        self._c_stores.inc()
        self._bump_lifetime(stores=1)

    # -- maintenance ---------------------------------------------------------
    def entries(self) -> list[Path]:
        """Cached entry files currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def stats(self) -> dict:
        """Session counters, lifetime counters, hit rates, footprint.

        ``hit_rate`` covers this process's lookups,
        ``lifetime_hit_rate`` every lookup the sidecar has seen; both
        are ``None`` when no lookups happened.
        """
        entries = self.entries()
        lifetime = self.lifetime()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": self._hit_rate(self.hits, self.misses),
            "lifetime": lifetime,
            "lifetime_hit_rate": self._hit_rate(lifetime["hits"],
                                                lifetime["misses"]),
        }

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


_default_cache: Optional[CellCache] = None


def get_default_cache() -> Optional[CellCache]:
    """The process-wide default cache (``None`` = caching off)."""
    return _default_cache


def set_default_cache(cache: Optional[CellCache]) -> None:
    """Install (or with ``None`` remove) the process default cache."""
    global _default_cache
    _default_cache = cache


__all__ = [
    "CellCache",
    "DEFAULT_CACHE_DIR",
    "STATS_FILE",
    "code_version",
    "fingerprint",
    "get_default_cache",
    "set_default_cache",
]
