"""Shared read-only cell spec table for persistent-worker dispatch.

The legacy pool re-pickles every :class:`~repro.perf.pool.Cell` — key,
function reference and full kwargs — into each task message.  For warm
workers that serve many sweeps that is pure overhead: the cell payloads
of one sweep are immutable, so they can be serialised **once** into a
read-only table that every worker maps, after which per-task dispatch
messages shrink to a ``(generation, index, attempt, fingerprint)``
descriptor a few dozen bytes long.

Layout
------
:class:`SpecTable` pickles each cell as ``(key, fn, kwargs)`` with
pickle **protocol 5** and a ``buffer_callback``, so large binary kwargs
(ndarrays) leave the pickle stream as out-of-band
:class:`pickle.PickleBuffer` segments.  Pickle bytes and buffer bytes
are packed into one contiguous blob with a per-cell index of
``(pickle_offset, pickle_length, ((buf_offset, buf_length), ...))``
entries.  Workers rebuild a cell by slicing zero-copy memoryviews out
of the mapped blob and handing them to ``pickle.loads(buffers=...)`` —
an ndarray kwarg therefore aliases the shared table instead of being
copied per task.  Rebuilt buffer-backed kwargs are **read-only**, which
is exactly the sweep determinism contract: cells are pure functions of
their arguments and must not mutate them.

Transport
---------
Two interchangeable transports, chosen by table size:

* ``("shm", name, nbytes)`` — a POSIX shared-memory segment.  The
  parent creates and unlinks it and is the only registrant that
  matters: executor workers are children of the sweep parent, so they
  inherit the parent's ``resource_tracker`` process and their attach
  merely re-adds the same name to the same tracker set (idempotent).
  No per-worker ``unregister`` workaround is needed — and calling one
  would *remove the parent's registration*, leaking the segment if
  the parent dies before ``unlink``.
* ``("inline", bytes)`` — the blob rides in the pipe message itself.
  Used for small tables, where a kernel shm round-trip costs more than
  it saves, and as the fallback when shared memory is unavailable.

``REPRO_SPEC_SHM=0`` forces inline transport, ``=1`` forces shm;
otherwise tables at least :data:`SHM_THRESHOLD_BYTES` use shm.
"""

from __future__ import annotations

import os
import pickle
from typing import Optional, Sequence

#: tables at least this large ride in shared memory (else inline)
SHM_THRESHOLD_BYTES = 64 * 1024

#: env override for the transport choice: "0" = always inline,
#: "1" = always shared memory (when available)
SPEC_SHM_ENV = "REPRO_SPEC_SHM"

#: pickle protocol with out-of-band buffer support
_PROTOCOL = 5


def _use_shm(nbytes: int) -> bool:
    flag = os.environ.get(SPEC_SHM_ENV, "").strip()
    if flag == "0":
        return False
    if flag == "1":
        return nbytes > 0
    return nbytes >= SHM_THRESHOLD_BYTES


class SpecTable:
    """Parent-side packed cell table; owns the shared segment if any.

    Build once per sweep from the declaration-ordered cell list, ship
    :meth:`transport` to every worker in the begin-sweep message, and
    :meth:`close` after the sweep settles.  Closing unlinks the shm
    name; workers already attached keep a valid mapping until they
    close their own view (POSIX unlink semantics), so a mid-sweep
    respawn must happen before ``close`` — which the executor
    guarantees by closing only in ``end_sweep``.
    """

    def __init__(self, cells: Sequence) -> None:
        blob = bytearray()
        index: list[tuple[int, int, tuple[tuple[int, int], ...]]] = []
        for cell in cells:
            buffers: list[pickle.PickleBuffer] = []
            data = pickle.dumps((cell.key, cell.fn, cell.kwargs),
                                protocol=_PROTOCOL,
                                buffer_callback=buffers.append)
            spans: list[tuple[int, int]] = []
            for buf in buffers:
                raw = buf.raw()
                spans.append((len(blob), raw.nbytes))
                blob += raw
                buf.release()
            index.append((len(blob), len(data), tuple(spans)))
            blob += data
        self._blob = bytes(blob)
        self.index = tuple(index)
        self._shm = None

    @property
    def nbytes(self) -> int:
        return len(self._blob)

    def __len__(self) -> int:
        return len(self.index)

    def transport(self) -> tuple:
        """The transport descriptor to ship to workers (idempotent)."""
        if self._shm is not None:
            return ("shm", self._shm.name, self.nbytes, self.index)
        if _use_shm(self.nbytes):
            from multiprocessing import shared_memory

            try:
                shm = shared_memory.SharedMemory(create=True,
                                                 size=self.nbytes)
            except OSError:
                return ("inline", self._blob, self.index)
            shm.buf[: self.nbytes] = self._blob
            self._shm = shm
            return ("shm", shm.name, self.nbytes, self.index)
        return ("inline", self._blob, self.index)

    def close(self) -> None:
        """Release (and for shm: unlink) the parent's copy of the table."""
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            self._shm = None


class SpecView:
    """Worker-side zero-copy view of a shipped :class:`SpecTable`."""

    def __init__(self, mem, index, shm=None) -> None:
        self._mem = memoryview(mem).toreadonly()
        self._index = index
        self._shm = shm

    @classmethod
    def from_transport(cls, transport: tuple) -> "SpecView":
        kind = transport[0]
        if kind == "inline":
            _, blob, index = transport
            return cls(blob, index)
        if kind == "shm":
            _, name, nbytes, index = transport
            from multiprocessing import shared_memory

            # attach only: the parent created the segment, owns the
            # unlink, and shares its resource tracker with this worker
            # (see module docs), so no de-registration dance is needed
            shm = shared_memory.SharedMemory(name=name, create=False)
            return cls(shm.buf[:nbytes], index, shm=shm)
        raise ValueError(f"unknown spec transport {kind!r}")

    def __len__(self) -> int:
        return len(self._index)

    def cell(self, index: int):
        """Rebuild cell ``index`` from the table (zero-copy buffers)."""
        from repro.perf.pool import Cell

        off, length, spans = self._index[index]
        buffers = [self._mem[boff:boff + blen] for boff, blen in spans]
        key, fn, kwargs = pickle.loads(self._mem[off:off + length],
                                       buffers=buffers)
        return Cell(key, fn, kwargs)

    def close(self) -> None:
        try:
            self._mem.release()
        except Exception:  # pragma: no cover - defensive
            pass
        if self._shm is not None:
            try:
                self._shm.close()
            except Exception:  # pragma: no cover - exported buffers may
                pass  # keep the mapping alive; the view is gone either way
            self._shm = None


__all__ = ["SHM_THRESHOLD_BYTES", "SPEC_SHM_ENV", "SpecTable", "SpecView"]
