"""Parallel experiment execution (cell pool), supervised resilient
sweeps, result caching and perf instrumentation."""

from repro.perf.cache import (
    CellCache,
    code_version,
    fingerprint,
    get_default_cache,
    set_default_cache,
)
from repro.perf.journal import SweepJournal, fsync_dir, sweep_id
from repro.perf.pool import Cell, run_cells
from repro.perf.supervisor import (
    FAILED_KEY,
    QuarantinedCells,
    Supervisor,
    SupervisorConfig,
    get_default_supervisor,
    quarantined,
    require_ok,
    set_default_supervisor,
)

__all__ = [
    "Cell",
    "CellCache",
    "FAILED_KEY",
    "QuarantinedCells",
    "Supervisor",
    "SupervisorConfig",
    "SweepJournal",
    "code_version",
    "fingerprint",
    "fsync_dir",
    "get_default_cache",
    "get_default_supervisor",
    "quarantined",
    "require_ok",
    "run_cells",
    "set_default_cache",
    "set_default_supervisor",
    "sweep_id",
]
