"""Parallel experiment execution (cell pool) and perf instrumentation."""

from repro.perf.pool import Cell, run_cells

__all__ = ["Cell", "run_cells"]
