"""Parallel experiment execution (cell pool), pluggable executor
backends (serial / legacy pool / persistent warm workers), supervised
resilient sweeps, result caching and perf instrumentation."""

from repro.perf.backend import (
    BACKENDS,
    ExecutorBackend,
    PersistentBackend,
    PoolBackend,
    SerialBackend,
    get_default_backend,
    resolve_backend,
    resolve_jobs,
    set_default_backend,
)
from repro.perf.cache import (
    CellCache,
    code_version,
    fingerprint,
    get_default_cache,
    set_default_cache,
)
from repro.perf.journal import SweepJournal, fsync_dir, sweep_id
from repro.perf.persistent import (
    PersistentExecutor,
    StealScheduler,
    get_default_executor,
    shutdown_default_executor,
)
from repro.perf.pool import Cell, run_cells
from repro.perf.spec import SpecTable, SpecView
from repro.perf.supervisor import (
    FAILED_KEY,
    QuarantinedCells,
    Supervisor,
    SupervisorConfig,
    get_default_supervisor,
    quarantined,
    require_ok,
    set_default_supervisor,
)

__all__ = [
    "BACKENDS",
    "Cell",
    "CellCache",
    "ExecutorBackend",
    "FAILED_KEY",
    "PersistentBackend",
    "PersistentExecutor",
    "PoolBackend",
    "QuarantinedCells",
    "SerialBackend",
    "SpecTable",
    "SpecView",
    "StealScheduler",
    "Supervisor",
    "SupervisorConfig",
    "SweepJournal",
    "code_version",
    "fingerprint",
    "fsync_dir",
    "get_default_backend",
    "get_default_cache",
    "get_default_executor",
    "get_default_supervisor",
    "quarantined",
    "require_ok",
    "resolve_backend",
    "resolve_jobs",
    "run_cells",
    "set_default_backend",
    "set_default_cache",
    "set_default_supervisor",
    "shutdown_default_executor",
    "sweep_id",
]
