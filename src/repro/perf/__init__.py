"""Parallel experiment execution (cell pool), result caching and perf
instrumentation."""

from repro.perf.cache import (
    CellCache,
    code_version,
    fingerprint,
    get_default_cache,
    set_default_cache,
)
from repro.perf.pool import Cell, run_cells

__all__ = [
    "Cell",
    "CellCache",
    "code_version",
    "fingerprint",
    "get_default_cache",
    "run_cells",
    "set_default_cache",
]
