"""Cell pool: fan independent simulation cells across worker processes.

A sweep experiment (multi-seed replication, sensitivity grid, extension
matrices) is a set of *cells* — fully independent simulation runs, each
described by a picklable callable plus keyword arguments.  The pool runs
the cells either serially in-process (``jobs=1``, the default) or
through a pluggable :class:`~repro.perf.backend.ExecutorBackend` —
by default the PR 10 persistent warm-worker executor
(:mod:`repro.perf.persistent`), optionally the legacy spawn-per-sweep
``ProcessPoolExecutor`` (``backend="pool"``) — and returns results
keyed by each cell's declared key **in cell-declaration order**.

Determinism contract
--------------------
Parallel output is bit-for-bit identical to serial output:

* every cell is a pure function of its arguments — the only process
  global the simulation stack mutates is the :class:`~repro.gang.job.Job`
  jid counter, which :func:`_execute` resets before every cell in both
  the serial and the parallel path;
* the merge is keyed by *cell index*, never by completion order: the
  legacy pool's ``map`` preserves submission order, and the persistent
  backend writes each result into its cell's slot, so work stealing
  and out-of-order completion cannot reorder the merged record;
* wall-clock / RSS measurements are inherently nondeterministic, so cell
  functions must quarantine them under the reserved ``"_perf"`` key of
  their result dict (see :func:`repro.experiments.runner.run_cell`);
  everything outside ``"_perf"`` is covered by the guarantee.

Workers are separate processes; cell functions and their kwargs must be
picklable (module-level functions, frozen dataclasses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional, Sequence


@dataclass(frozen=True)
class Cell:
    """One independent unit of sweep work.

    ``key`` identifies the cell in the merged result mapping (and must
    be unique within one :func:`run_cells` call); ``fn`` is a
    module-level callable invoked as ``fn(**kwargs)`` in the worker.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ValueError(
                f"cell {self.key!r}: fn must be a module-level callable "
                f"(got {qualname!r}) so it can be pickled to workers"
            )


def _execute(cell: Cell, capture: Optional[bool] = None) -> Any:
    """Run one cell with per-cell global state reset.

    Both the serial and parallel paths go through here, so a cell sees
    the same process-global state regardless of which worker (or how
    many cells before it) ran in the same interpreter.

    ``capture`` turns on sweep telemetry capture (``None`` reads the
    :data:`repro.obs.sweep.CAPTURE_ENV` flag, for workers reached
    through code paths that do not thread the argument): the cell runs
    against a fresh default registry and its snapshot + flat summary
    are attached under the result's ``"_perf"`` quarantine, so obs-on
    and obs-off results stay byte-identical outside it and cache
    fingerprints (which cover only ``fn`` + ``kwargs``) never change.
    """
    from repro.gang.job import Job

    Job._next_jid = 1
    if capture is None:
        from repro.obs.sweep import capture_enabled

        capture = capture_enabled()
    if not capture:
        return cell.fn(**cell.kwargs)

    from repro.obs import Registry, get_default, set_default
    from repro.obs.export import summary as obs_summary

    prev = get_default()
    reg = Registry()
    set_default(reg)
    try:
        result = cell.fn(**cell.kwargs)
    finally:
        set_default(prev if getattr(prev, "enabled", False) else None)
    # Cells that manage their own registry (run_cell(obs_enabled=True))
    # leave the default one empty and ship their own payload;
    # setdefault keeps theirs.
    if isinstance(result, dict) and (
            reg.spans or reg.counters() or reg.gauges()
            or reg.histograms()):
        perf = result.setdefault("_perf", {})
        perf.setdefault("obs", obs_summary(reg))
        perf.setdefault("obs_snapshot", reg.snapshot())
    return result


def _check_cells(cells: Sequence[Cell]) -> list[Hashable]:
    """Validate a cell list (unique keys); returns the key list."""
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        seen: set = set()
        dup = next(k for k in keys if k in seen or seen.add(k))
        raise ValueError(f"duplicate cell key: {dup!r}")
    return keys


def run_cells(
    cells: Iterable[Cell] | Sequence[Cell], jobs: int = 1, cache=None,
    supervisor=None, sweep_obs=None, backend=None,
) -> dict[Hashable, Any]:
    """Run ``cells`` and return ``{cell.key: result}`` in cell order.

    ``jobs=1`` (default) runs everything serially in-process; ``jobs>1``
    fans cells across that many worker processes.  Either way the result
    mapping is built in declaration order, so iteration over the return
    value is deterministic and identical across job counts.

    ``backend`` selects how parallel cells reach workers: a
    :class:`repro.perf.backend.ExecutorBackend` instance, a registry
    name (``"serial"`` / ``"pool"`` / ``"persistent"``), or ``None``
    to walk the default chain (process default installed by the CLI's
    ``--backend`` flag, then the ``REPRO_BACKEND`` env var, then the
    persistent warm-worker executor).  The merge contract is identical
    for every backend.

    ``cache`` is an optional :class:`repro.perf.cache.CellCache`; when
    omitted, the process default (installed by the CLI's ``--cache``
    flag via :func:`repro.perf.cache.set_default_cache`) is consulted.
    Cells are pure functions of their arguments, so a fingerprint hit
    returns the stored summary without running the simulation — the
    result is byte-identical to a fresh run outside the ``"_perf"``
    quarantine (where hits are annotated).  Missed cells run (serially
    or in the pool) and are stored back.

    ``supervisor`` is an optional
    :class:`repro.perf.supervisor.Supervisor`; when omitted, the
    process default (installed by the CLI's ``--max-retries`` /
    ``--cell-timeout`` / ``--resume`` flags via
    :func:`repro.perf.supervisor.set_default_supervisor`) is consulted.
    With a supervisor the sweep gains retries, per-cell deadlines,
    pool rebuilds, poison-cell quarantine and checkpoint/resume; the
    merge contract is unchanged.  Without one, this bare path keeps
    its historical fail-fast semantics: the first cell exception
    propagates.

    ``sweep_obs`` is an optional
    :class:`repro.obs.sweep.SweepObserver`; when omitted, the process
    default (installed by the CLI's ``--obs`` flag via
    :func:`repro.obs.sweep.set_default_sweep`) is consulted.  With one
    installed, every cell captures its telemetry (see
    :func:`_execute`) and the merged results are absorbed into the
    observer's sweep-level registry — per-cell trace tracks, summed
    summaries — without changing anything outside ``"_perf"``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cells = list(cells)
    keys = _check_cells(cells)

    if sweep_obs is None:
        from repro.obs.sweep import get_default_sweep

        sweep_obs = get_default_sweep()
    # Explicit per-call capture flag: robust under spawn/forkserver
    # workers, which inherit neither parent globals nor late env edits.
    capture: Optional[bool] = True if sweep_obs is not None else None

    if supervisor is None:
        from repro.perf.supervisor import get_default_supervisor

        supervisor = get_default_supervisor()
    if supervisor is not None:
        merged = supervisor.run(cells, jobs=jobs, cache=cache,
                                capture=capture, backend=backend)
        if sweep_obs is not None:
            sweep_obs.absorb_results(merged)
        return merged

    if cache is None:
        from repro.perf.cache import get_default_cache

        cache = get_default_cache()

    results: list[Any] = [None] * len(cells)
    todo: list[tuple[int, Cell]] = []
    prints: list[str] = []
    if cache is not None:
        from repro.perf.cache import fingerprint

        prints = [fingerprint(c.fn, c.kwargs) for c in cells]
        for i, cell in enumerate(cells):
            hit = cache.get(prints[i])
            if hit is not None:
                results[i] = hit
            else:
                todo.append((i, cell))
    else:
        todo = list(enumerate(cells))

    if todo:
        if jobs == 1 or len(todo) <= 1:
            fresh = [_execute(c, capture) for _, c in todo]
        else:
            from repro.perf.backend import resolve_backend

            todo_prints = [prints[i] for i, _ in todo] if prints \
                else None
            fresh = resolve_backend(backend).run(
                [c for _, c in todo], jobs, capture,
                prints=todo_prints)
        for (i, cell), result in zip(todo, fresh):
            results[i] = result
            if cache is not None:
                cache.put(prints[i], result, label=repr(cell.key))

    merged = dict(zip(keys, results))
    if sweep_obs is not None:
        sweep_obs.absorb_results(merged)
    return merged


__all__ = ["Cell", "run_cells", "_check_cells", "_execute"]
