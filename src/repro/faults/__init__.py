"""Fault injection and graceful degradation.

The paper's parallel argument (§5.6 of DESIGN.md) is that one slow or
dead node stalls the whole gang at the next barrier — yet a perfect
simulated cluster can never exhibit that.  This package injects the
misbehaviour deterministically:

* transient disk I/O errors and latency spikes (``disk/device.py``
  retries with exponential backoff under a per-device error budget and
  raises :class:`~repro.faults.errors.DiskFailure` on exhaustion),
* node slowdown (stragglers) and fail-stop crashes (the gang scheduler
  detects both at quantum boundaries, extends the quantum for
  stragglers and evicts the jobs of crashed nodes),
* loss/corruption of adaptive page-in records (``core/recorder.py``
  checksums its runs; adaptive page-in falls back to plain demand
  paging with 16-page read-ahead on a bad record).

Everything is seeded through :class:`~repro.sim.rng.RngStreams`; a
zero-rate :class:`FaultPlan` draws nothing and perturbs nothing.
"""

from repro.faults.errors import (
    DiskFailure,
    FaultError,
    NodeCrashed,
    RecordCorrupted,
    WatchdogTimeout,
)
from repro.faults.plan import FAULT_FREE, FaultPlan, FaultRates
from repro.faults.worker import WorkerFaultPlan

__all__ = [
    "DiskFailure",
    "FAULT_FREE",
    "FaultError",
    "FaultPlan",
    "FaultRates",
    "NodeCrashed",
    "RecordCorrupted",
    "WatchdogTimeout",
    "WorkerFaultPlan",
]
