"""Seeded, deterministic fault injection.

:class:`FaultPlan` is the single decision point for every injected
fault in a run.  Each fault site asks the plan a yes/no (or factor)
question — "does this disk request error?", "does this node straggle
this quantum?" — and the plan answers from a named
:class:`~repro.sim.rng.RngStreams` stream keyed by the fault kind and
the component name.  Two properties follow:

* **Reproducibility** — the same ``(seed, rates)`` pair always injects
  the identical fault schedule, so fault experiments regress exactly
  like fault-free ones.
* **Zero-rate transparency** — a question whose rate is ``0`` returns
  immediately *without drawing*, so a plan built from the default
  :data:`FAULT_FREE` rates perturbs nothing: every seed experiment
  reproduces its fault-free results bit for bit.

The plan also counts every injection it performs (``counters``), which
the metrics layer reports alongside the per-component *response*
counters (retries, fallbacks, evictions).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class FaultRates:
    """Injection probabilities and severities for one run.

    All-zero rates (the default) make the plan inert.  Rates are
    per-decision probabilities: per disk request, per recorded flush
    batch, or per node per quantum boundary.
    """

    #: probability a disk request's service attempt fails transiently
    disk_error_rate: float = 0.0
    #: probability a disk service attempt suffers a latency spike
    disk_latency_rate: float = 0.0
    #: duration multiplier applied to a spiked attempt
    disk_latency_factor: float = 10.0
    #: per-node, per-quantum probability of a slowdown episode
    straggler_rate: float = 0.0
    #: CPU slowdown multiplier for a straggling node's quantum
    straggler_factor: float = 3.0
    #: per-node, per-quantum probability of a fail-stop crash
    crash_rate: float = 0.0
    #: probability a recorded flush batch is lost before the switch
    record_loss_rate: float = 0.0
    #: probability a recorded flush batch is corrupted in kernel memory
    record_corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "disk_error_rate", "disk_latency_rate", "straggler_rate",
            "crash_rate", "record_loss_rate", "record_corruption_rate",
        ):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{field_name} must be a probability in [0, 1], "
                    f"got {rate!r}"
                )
        if self.disk_latency_factor < 1.0 or self.straggler_factor < 1.0:
            raise ValueError("severity factors must be >= 1")

    @property
    def active(self) -> bool:
        """True if any injection can ever fire."""
        return any(
            getattr(self, f) > 0.0
            for f in (
                "disk_error_rate", "disk_latency_rate", "straggler_rate",
                "crash_rate", "record_loss_rate", "record_corruption_rate",
            )
        )


#: Shared inert default (mirrors ``ERA_DISK``'s role for DiskParams).
FAULT_FREE = FaultRates()


class FaultPlan:
    """Answers every injection question for one run, deterministically.

    Parameters
    ----------
    rates:
        Injection probabilities; :data:`FAULT_FREE` makes every answer
        "no" without consuming randomness.
    rngs:
        A dedicated stream family (or an int seed).  Use a spawned
        child (``rngs.spawn("faults")``) so fault draws never perturb
        workload draws.
    """

    def __init__(self, rates: FaultRates = FAULT_FREE,
                 rngs: RngStreams | int = 0) -> None:
        if isinstance(rngs, int):
            rngs = RngStreams(rngs)
        self.rates = rates
        self.rngs = rngs
        #: injection counts by kind (``disk_errors``, ``node_crashes``, ...)
        self.counters: Counter[str] = Counter()

    @property
    def active(self) -> bool:
        return self.rates.active

    # -- draw helper -------------------------------------------------------
    def _hit(self, kind: str, component: str, rate: float) -> bool:
        """One Bernoulli draw from the ``kind.component`` stream.

        Rate zero returns False *without drawing*, which is what keeps
        a zero-rate plan bit-for-bit transparent.
        """
        if rate <= 0.0:
            return False
        hit = self.rngs.stream(f"{kind}.{component}").random() < rate
        if hit:
            self.counters[kind] += 1
        return hit

    # -- disk --------------------------------------------------------------
    def disk_error(self, device: str) -> bool:
        """Does this service attempt on ``device`` fail transiently?"""
        return self._hit("disk_errors", device, self.rates.disk_error_rate)

    def disk_latency_factor(self, device: str) -> float:
        """Duration multiplier for this service attempt (1.0 = none)."""
        if self._hit("disk_latency_spikes", device,
                     self.rates.disk_latency_rate):
            return self.rates.disk_latency_factor
        return 1.0

    # -- cluster nodes -----------------------------------------------------
    def node_crash(self, node: str) -> bool:
        """Does ``node`` fail-stop at this quantum boundary?"""
        return self._hit("node_crashes", node, self.rates.crash_rate)

    def node_straggle(self, node: str) -> float:
        """CPU slowdown factor for ``node`` this quantum (1.0 = none)."""
        if self._hit("node_stragglers", node, self.rates.straggler_rate):
            return self.rates.straggler_factor
        return 1.0

    # -- adaptive page-in records ------------------------------------------
    def record_lost(self, owner: str) -> bool:
        """Is this flush batch lost before it reaches the record?"""
        return self._hit("records_lost", owner, self.rates.record_loss_rate)

    def record_corrupt(self, owner: str) -> bool:
        """Is this flush batch corrupted in the stored record?"""
        return self._hit("records_corrupted", owner,
                         self.rates.record_corruption_rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(active={self.active}, "
            f"injected={sum(self.counters.values())})"
        )


__all__ = ["FAULT_FREE", "FaultPlan", "FaultRates"]
