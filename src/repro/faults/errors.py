"""Typed failures surfaced by the fault-injection subsystem.

Every graceful-degradation path in the simulator is triggered by one of
these exceptions rather than by a silent hang: a disk that exhausts its
retry budget *fails* the request (:class:`DiskFailure`), a page-in
record that fails its checksum raises :class:`RecordCorrupted`, and the
runner's watchdog aborts a runaway simulation with
:class:`WatchdogTimeout` naming the stuck job.
"""

from __future__ import annotations

from repro.sim.engine import SimulationError


class FaultError(Exception):
    """Base class for injected-fault failures."""


class DiskFailure(FaultError):
    """A disk request failed permanently (retry budget exhausted).

    Thrown into whichever process was awaiting the request; a job rank
    that cannot service its paging I/O dies, and the gang scheduler
    evicts the job instead of letting the gang deadlock at a barrier.
    """


class RecordCorrupted(FaultError):
    """An adaptive page-in record failed its checksum on ``take()``.

    The adaptive page-in path responds by discarding the record and
    falling back to plain demand paging with the kernel's default
    16-page read-ahead (§3.3's baseline behaviour).
    """


class NodeCrashed(FaultError):
    """A cluster node died; jobs with a rank on it must be evicted."""


class WatchdogTimeout(SimulationError):
    """The runner's watchdog aborted a runaway simulation.

    Subclasses :class:`~repro.sim.engine.SimulationError` so existing
    ``except SimulationError`` handlers treat it as a kernel-level
    abort; the message names the jobs that never completed.
    """


__all__ = [
    "DiskFailure",
    "FaultError",
    "NodeCrashed",
    "RecordCorrupted",
    "WatchdogTimeout",
]
