"""Host-level worker fault injection for the sweep supervisor.

:class:`~repro.faults.plan.FaultPlan` injects faults into the *simulated*
system (disks, nodes, page-in records).  :class:`WorkerFaultPlan` injects
faults into the *host* execution layer instead: the worker processes that
run sweep cells under :class:`repro.perf.supervisor.Supervisor`.  Three
kinds are supported:

* ``crash`` — the worker calls ``os._exit`` before running the cell,
  which surfaces in the parent as ``BrokenProcessPool`` (the supervisor
  must rebuild the pool and retry);
* ``hang`` — the worker sleeps for ``hang_s`` before running the cell,
  which trips the supervisor's per-cell deadline watchdog;
* ``slow`` — the worker sleeps for ``slow_start_s`` before running the
  cell (a straggler that should finish within the deadline grace).

Determinism
-----------
Decisions are pure functions of ``(seed, kind, cell index, attempt)``,
drawn by hashing rather than from a stateful RNG, so:

* the same plan always injects the identical fault schedule regardless
  of submission order, worker count, or code edits elsewhere (the draw
  deliberately does *not* involve the PR 4 content fingerprint, which
  changes with every source edit — CI chaos gates need a schedule that
  is stable across commits);
* each retry of the same cell re-draws with a fresh ``attempt`` value,
  so an injected crash does not deterministically recur on the retry —
  exactly the transient-fault shape the supervisor is built to absorb.

A plan is only consulted by the supervisor's worker-side shim; ordinary
``run_cells`` execution never sees it.  It is injectable only from
tests and via the hidden ``--chaos`` CLI flag.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_KINDS = ("crash", "hang", "slow")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic worker crash / hang / slow-start injection.

    All-zero rates (the default) make the plan inert; ``decide`` then
    answers ``None`` without drawing.  Rates are per-attempt
    probabilities, evaluated in priority order crash > hang > slow (at
    most one fault per attempt).
    """

    #: probability a cell attempt's worker fail-stops before executing
    crash_rate: float = 0.0
    #: probability a cell attempt's worker hangs for ``hang_s``
    hang_rate: float = 0.0
    #: probability a cell attempt's worker starts ``slow_start_s`` late
    slow_start_rate: float = 0.0
    #: sleep injected by a ``hang`` (long enough to trip any deadline)
    hang_s: float = 3600.0
    #: sleep injected by a ``slow`` start (short: a straggler, not a hang)
    slow_start_s: float = 0.05
    #: schedule seed; same seed = same schedule, forever
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in ("crash_rate", "hang_rate", "slow_start_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{field_name} must be a probability in [0, 1], "
                    f"got {rate!r}"
                )
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")
        if self.slow_start_s < 0:
            raise ValueError("slow_start_s must be >= 0")

    @property
    def active(self) -> bool:
        """True if any injection can ever fire."""
        return (self.crash_rate > 0.0 or self.hang_rate > 0.0
                or self.slow_start_rate > 0.0)

    # -- draws -------------------------------------------------------------
    def _draw(self, kind: str, index: int, attempt: int) -> float:
        """Uniform [0, 1) value for one (kind, cell, attempt) question."""
        token = f"{self.seed}|{kind}|{index}|{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def decide(self, index: int, attempt: int) -> str | None:
        """Fault injected for (cell ``index``, ``attempt``), if any.

        Returns ``"crash"``, ``"hang"``, ``"slow"`` or ``None``.
        ``attempt`` counts executions of this cell starting at 0, so a
        retried cell re-draws instead of deterministically re-failing.
        """
        if self.crash_rate > 0.0 and \
                self._draw("crash", index, attempt) < self.crash_rate:
            return "crash"
        if self.hang_rate > 0.0 and \
                self._draw("hang", index, attempt) < self.hang_rate:
            return "hang"
        if self.slow_start_rate > 0.0 and \
                self._draw("slow", index, attempt) < self.slow_start_rate:
            return "slow"
        return None

    def injections(self, n_cells: int, attempt: int = 0) -> dict[int, str]:
        """The full first-attempt schedule for an ``n_cells`` sweep.

        Benchmarks and tests use this to assert *a priori* that a chosen
        seed actually injects something (the schedule is deterministic,
        so the assertion is stable).
        """
        out: dict[int, str] = {}
        for i in range(n_cells):
            kind = self.decide(i, attempt)
            if kind is not None:
                out[i] = kind
        return out

    # -- CLI parsing -------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "WorkerFaultPlan":
        """Build a plan from a ``key=value`` spec string.

        Accepted keys: ``crash``, ``hang``, ``slow`` (rates),
        ``hang_s``, ``slow_s`` (durations), ``seed``.  Example::

            crash=0.3,hang=0.1,seed=7
        """
        names = {
            "crash": ("crash_rate", float),
            "hang": ("hang_rate", float),
            "slow": ("slow_start_rate", float),
            "hang_s": ("hang_s", float),
            "slow_s": ("slow_start_s", float),
            "seed": ("seed", int),
        }
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, value = part.partition("=")
            if not sep or key not in names:
                raise ValueError(
                    f"bad chaos spec element {part!r}; expected "
                    f"key=value with key in {sorted(names)}"
                )
            field_name, cast = names[key]
            try:
                kwargs[field_name] = cast(value)
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos spec value for {key!r}: {value!r}"
                ) from exc
        return cls(**kwargs)


__all__ = ["WorkerFaultPlan"]
