"""Hierarchical cluster topology for the network model.

The flat :class:`~repro.cluster.network.NetworkParams` treats every
rank pair alike — right for the paper's single 100 Mb/s switch.  For
the 8/16-node future-work experiments a two-level topology (nodes in
racks, racks behind an uplink) makes synchronisation costs grow the way
real clusters' do: intra-rack hops are cheap, cross-rack hops pay the
uplink latency.

:class:`TwoLevelTopology` computes per-pair latencies and an effective
barrier cost, and exposes a ``NetworkParams``-compatible interface so
:class:`~repro.cluster.mpi.Barrier` can use it directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TwoLevelTopology:
    """Racks of nodes behind a shared uplink switch.

    Ranks are assigned to racks round-robin-block: rank r lives in rack
    ``r // rack_size``.
    """

    nranks: int
    rack_size: int
    #: one-way latency within a rack
    intra_latency_s: float = 100e-6
    #: one-way latency across the uplink (both rack switches + core)
    inter_latency_s: float = 350e-6
    #: per-rank link bandwidth, bytes/second
    bandwidth_bytes_s: float = 12.5e6
    #: fixed per-collective software overhead
    overhead_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.nranks < 1 or self.rack_size < 1:
            raise ValueError("nranks and rack_size must be >= 1")
        if self.inter_latency_s < self.intra_latency_s:
            raise ValueError("uplink cannot be faster than the rack")
        if self.bandwidth_bytes_s <= 0:
            raise ValueError("bandwidth must be positive")

    # -- structure ---------------------------------------------------------
    @property
    def nracks(self) -> int:
        return math.ceil(self.nranks / self.rack_size)

    def rack_of(self, rank: int) -> int:
        """The rack index hosting ``rank``."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        return rank // self.rack_size

    def pair_latency_s(self, a: int, b: int) -> float:
        """One-way latency between two ranks."""
        if a == b:
            return 0.0
        if self.rack_of(a) == self.rack_of(b):
            return self.intra_latency_s
        return self.inter_latency_s

    # -- NetworkParams-compatible interface ------------------------------------
    def barrier_s(self, nranks: int) -> float:
        """Dissemination barrier over the topology.

        ``ceil(log2 n)`` rounds; a round's cost is the worst link it
        uses.  With the standard power-of-two partner pattern, rounds
        whose stride stays inside a rack pay intra-rack latency and the
        rest pay the uplink.
        """
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        total = self.overhead_s
        for k in range(rounds):
            stride = 1 << k
            # a round crosses racks as soon as any partner pair does;
            # with block placement that is exactly stride >= rack_size
            crosses = stride >= self.rack_size and self.nracks > 1
            total += self.inter_latency_s if crosses else self.intra_latency_s
        return total

    def transfer_s(self, nbytes: float) -> float:
        """Worst-case point-to-point transfer (via the uplink)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        lat = self.inter_latency_s if self.nracks > 1 \
            else self.intra_latency_s
        return lat + nbytes / self.bandwidth_bytes_s


__all__ = ["TwoLevelTopology"]
