"""A small latency model of the cluster interconnect.

Defaults approximate the paper's 100 Mb/s switched Ethernet: ~100 µs
one-way small-message latency.  A barrier among ``n`` ranks costs a
dissemination-style ``ceil(log2 n)`` rounds of message latency; bulk
payloads (e.g. IS's all-to-all) add transfer time at link bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkParams:
    """Interconnect latency/bandwidth parameters."""

    #: one-way small-message latency, seconds
    latency_s: float = 100e-6
    #: per-rank link bandwidth, bytes/second (100 Mb/s Ethernet)
    bandwidth_bytes_s: float = 12.5e6
    #: fixed per-collective software overhead, seconds
    overhead_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth_bytes_s <= 0:
            raise ValueError("bandwidth must be positive")

    def barrier_s(self, nranks: int) -> float:
        """Synchronisation cost of a barrier among ``nranks`` ranks."""
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return self.overhead_s + rounds * self.latency_s

    def transfer_s(self, nbytes: float) -> float:
        """Time to move ``nbytes`` point-to-point."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_s


__all__ = ["NetworkParams"]
