"""A compute node: CPU + memory + paging disk + adaptive paging.

Matches the paper's setup: every node runs its own kernel instance
(VMM + disk) with the adaptive-paging extension; the user-level gang
scheduler coordinates them from outside (§3.5, Fig. 5).
"""

from __future__ import annotations

from typing import Optional

from repro.core.api import AdaptivePaging
from repro.core.policies import PagingPolicy
from repro.disk.device import Disk, DiskParams, DiskRequest
from repro.disk.scheduler import ScheduledDisk
from repro.mem.params import MemoryParams
from repro.mem.replacement import ReplacementPolicy
from repro.mem.vmm import VirtualMemoryManager
from repro.sim.engine import Environment


class Node:
    """One machine of the cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory: MemoryParams,
        policy: PagingPolicy | str = "lru",
        disk_params: Optional[DiskParams] = None,
        replacement: Optional[ReplacementPolicy] = None,
        on_disk_complete=None,
        refault_window_s: float = 150.0,
        disk_discipline: str = "fifo",
    ) -> None:
        self.env = env
        self.name = name
        self.disk = ScheduledDisk(
            env, disk_params or DiskParams(), discipline=disk_discipline,
            on_complete=on_disk_complete, name=f"{name}.disk",
        )
        self.vmm = VirtualMemoryManager(
            env, memory, self.disk, policy=replacement, name=f"{name}.vmm",
            refault_window_s=refault_window_s,
        )
        self.adaptive = AdaptivePaging(self.vmm, policy)

    @classmethod
    def build(
        cls,
        env: Environment,
        name: str,
        memory_mb: float,
        policy: PagingPolicy | str = "lru",
        **kw,
    ) -> "Node":
        """Convenience factory taking memory in MB (the paper's usable
        memory after the mlock() reduction, e.g. 350)."""
        return cls(env, name, MemoryParams.from_mb(memory_mb), policy, **kw)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name}, policy={self.adaptive.policy.name})"


__all__ = ["Node"]
