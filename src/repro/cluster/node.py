"""A compute node: CPU + memory + paging disk + adaptive paging.

Matches the paper's setup: every node runs its own kernel instance
(VMM + disk) with the adaptive-paging extension; the user-level gang
scheduler coordinates them from outside (§3.5, Fig. 5).

Health
------
A node can *crash* (fail-stop: :meth:`Node.fail`) or *straggle*
(:attr:`Node.slowdown` > 1 for a quantum).  Both states are set by the
fault-injection layer (or by tests) and *observed* by the gang
scheduler at quantum boundaries — the node itself takes no scheduling
action, exactly as a dead machine would not.
"""

from __future__ import annotations

from typing import Optional

from repro.core.api import AdaptivePaging
from repro.core.policies import PagingPolicy
from repro.disk.device import Disk, DiskParams, DiskRequest
from repro.disk.scheduler import ScheduledDisk
from repro.faults.plan import FaultPlan
from repro.mem.params import MemoryParams
from repro.mem.replacement import ReplacementPolicy
from repro.mem.vmm import VirtualMemoryManager
from repro.obs.registry import NULL_OBS
from repro.sim.engine import Environment


class Node:
    """One machine of the cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory: MemoryParams,
        policy: PagingPolicy | str = "lru",
        disk_params: Optional[DiskParams] = None,
        replacement: Optional[ReplacementPolicy] = None,
        on_disk_complete=None,
        refault_window_s: float = 150.0,
        disk_discipline: str = "fifo",
        faults: Optional[FaultPlan] = None,
        obs=NULL_OBS,
    ) -> None:
        self.env = env
        self.name = name
        self.obs = obs
        self.disk = ScheduledDisk(
            env, disk_params or DiskParams(), discipline=disk_discipline,
            on_complete=on_disk_complete, name=f"{name}.disk",
            faults=faults, obs=obs,
        )
        self.vmm = VirtualMemoryManager(
            env, memory, self.disk, policy=replacement, name=f"{name}.vmm",
            refault_window_s=refault_window_s, obs=obs,
        )
        self.adaptive = AdaptivePaging(self.vmm, policy, faults=faults,
                                       obs=obs)
        #: False once the node has fail-stopped
        self.alive = True
        #: why the node died (None while alive)
        self.failure: Optional[str] = None
        #: CPU slowdown factor for the current quantum (1.0 = healthy);
        #: reset by the gang scheduler at every quantum boundary
        self.slowdown = 1.0

    def fail(self, cause: str = "crash") -> None:
        """Fail-stop the node (idempotent).

        The simulation keeps the node's kernel state around — in-flight
        disk work completes — but the scheduler will evict every job
        with a rank here at the next quantum boundary.
        """
        if self.alive:
            self.alive = False
            self.failure = str(cause)

    @classmethod
    def build(
        cls,
        env: Environment,
        name: str,
        memory_mb: float,
        policy: PagingPolicy | str = "lru",
        **kw,
    ) -> "Node":
        """Convenience factory taking memory in MB (the paper's usable
        memory after the mlock() reduction, e.g. 350)."""
        return cls(env, name, MemoryParams.from_mb(memory_mb), policy, **kw)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return f"Node({self.name}, policy={self.adaptive.policy.name}, {state})"


__all__ = ["Node"]
