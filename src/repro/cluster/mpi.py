"""MPI-style synchronisation primitives.

Only the collective the phase model needs: a reusable :class:`Barrier`.
All ranks of a gang-scheduled job run the same phase sequence; at a
barrier phase each rank waits for the others, then everyone pays the
network synchronisation cost plus the slowest rank's communication
payload.  This is the coupling through which one node's paging delay
stalls the entire parallel job (§4.2).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import NetworkParams
from repro.sim.engine import Environment, Event


class Barrier:
    """A reusable dissemination barrier among ``nranks`` ranks.

    Each round: every rank calls :meth:`wait` once; when the last rank
    arrives, all waiters are released after the network barrier cost
    plus the largest per-rank payload time.  Generation counting makes
    the barrier safely reusable round after round.
    """

    def __init__(
        self,
        env: Environment,
        nranks: int,
        network: Optional[NetworkParams] = None,
        name: str = "barrier",
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.env = env
        self.nranks = nranks
        self.network = network or NetworkParams()
        self.name = name
        self._generation = 0
        self._arrived: set[int] = set()
        self._max_payload = 0.0
        self._release: Event = env.event()
        #: statistics
        self.rounds_completed = 0
        self.total_sync_s = 0.0

    def wait(self, rank: int, payload_s: float = 0.0):
        """Process fragment: arrive at the barrier and block until all
        ranks of this generation have arrived (plus network cost).

        ``payload_s`` models this rank's communication volume exchanged
        at the barrier; the release is delayed by the *maximum* payload
        across ranks (bandwidth-bound collective).
        """
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range 0..{self.nranks - 1}")
        if payload_s < 0:
            raise ValueError("payload_s must be non-negative")
        if rank in self._arrived:
            raise RuntimeError(
                f"rank {rank} arrived twice at {self.name} "
                f"generation {self._generation}"
            )
        arrived_at = self.env.now
        self._arrived.add(rank)
        self._max_payload = max(self._max_payload, payload_s)

        if len(self._arrived) == self.nranks:
            delay = self.network.barrier_s(self.nranks) + self._max_payload
            release = self._release
            # reset for the next generation before anyone resumes
            self._generation += 1
            self._arrived = set()
            self._max_payload = 0.0
            self._release = self.env.event()
            self.rounds_completed += 1
            if delay > 0:
                yield self.env.timeout(delay)
            release.succeed(self._generation - 1)
        else:
            yield self._release
        self.total_sync_s += self.env.now - arrived_at

    @property
    def waiting(self) -> int:
        """Ranks currently blocked in the ongoing generation."""
        return len(self._arrived)


__all__ = ["Barrier"]
