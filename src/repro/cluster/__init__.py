"""Cluster substrate: nodes, network model, MPI-style synchronisation.

The paper's testbed is a small Linux cluster (1 GB nodes, 100 Mb/s
Ethernet) running MPI NPB2 programs.  Here a :class:`Node` bundles one
CPU's worth of execution with its own disk, VMM and adaptive-paging
instance; :class:`Barrier` couples the ranks of a parallel job so that
paging delay on one node stalls the whole gang — the effect that makes
the parallel results differ from the serial ones (§4.2).
"""

from repro.cluster.mpi import Barrier
from repro.cluster.network import NetworkParams
from repro.cluster.node import Node
from repro.cluster.topology import TwoLevelTopology

__all__ = ["Barrier", "NetworkParams", "Node", "TwoLevelTopology"]
