"""The pluggable executor-backend seam (repro.perf.backend): registry,
resolution chain, jobs parsing, and the cross-backend identity and
fail-fast contracts."""

import json
import os

import pytest

from repro.experiments.report_io import _sanitise
from repro.perf import Cell, run_cells
from repro.perf.backend import (
    BACKEND_ENV,
    BACKENDS,
    ExecutorBackend,
    PersistentBackend,
    PoolBackend,
    SerialBackend,
    get_default_backend,
    resolve_backend,
    resolve_jobs,
    set_default_backend,
)

from tests.perf import _backend_cells as bc


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


def canon(merged):
    """Byte-identity form: JSON with the ``_perf`` quarantine stripped."""
    strip = {
        k: ({kk: vv for kk, vv in v.items() if kk != "_perf"}
            if isinstance(v, dict) else v)
        for k, v in merged.items()
    }
    return json.dumps(_sanitise(strip), sort_keys=True)


def make_grid(n=8):
    return [Cell(("sq", i), bc.square, {"x": i}) for i in range(n)]


# ---------------------------------------------------------------------------
# registry + resolution
# ---------------------------------------------------------------------------
def test_registry_holds_the_three_backends():
    assert set(BACKENDS) == {"serial", "pool", "persistent"}
    assert isinstance(BACKENDS["serial"], SerialBackend)
    assert isinstance(BACKENDS["pool"], PoolBackend)
    assert isinstance(BACKENDS["persistent"], PersistentBackend)
    for name, be in BACKENDS.items():
        assert be.name == name


def test_resolve_explicit_instance_passes_through():
    class Custom(ExecutorBackend):
        name = "custom"

    be = Custom()
    assert resolve_backend(be) is be
    assert resolve_backend(be, for_supervisor=True) is be


def test_resolve_by_name_and_unknown():
    assert resolve_backend("serial") is BACKENDS["serial"]
    assert resolve_backend("pool") is BACKENDS["pool"]
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("bogus")


def test_builtin_defaults():
    # bare path defaults to the warm executor; the supervisor keeps
    # its historical pool semantics unless told otherwise
    assert resolve_backend(None).name == "persistent"
    assert resolve_backend("auto").name == "persistent"
    assert resolve_backend(None, for_supervisor=True).name == "pool"
    # supervision requires process isolation: serial is promoted
    assert resolve_backend("serial", for_supervisor=True).name == "pool"


def test_process_default_beats_env(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "persistent")
    set_default_backend("serial")
    assert get_default_backend() == "serial"
    assert resolve_backend(None).name == "serial"
    # explicit spec still wins over the installed default
    assert resolve_backend("pool").name == "pool"
    set_default_backend(None)
    assert resolve_backend(None).name == "persistent"  # env takes over


def test_env_fallback(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "serial")
    assert resolve_backend(None).name == "serial"
    monkeypatch.setenv(BACKEND_ENV, "auto")
    assert resolve_backend(None).name == "persistent"


def test_set_default_backend_validates():
    with pytest.raises(ValueError, match="unknown backend"):
        set_default_backend("bogus")
    set_default_backend("auto")  # alias for "unset"
    assert get_default_backend() is None


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs("3") == 3
    assert resolve_jobs("auto") == (os.cpu_count() or 1)
    with pytest.raises(ValueError, match="jobs"):
        resolve_jobs(0)


# ---------------------------------------------------------------------------
# execution contracts
# ---------------------------------------------------------------------------
def test_serial_backend_ignores_jobs_and_stays_in_process():
    cells = [Cell(("who", i), bc.whoami, {"x": i}) for i in range(4)]
    merged = run_cells(cells, jobs=4, backend="serial")
    assert {r["pid"] for r in merged.values()} == {os.getpid()}


def test_cross_backend_identity():
    cells = make_grid(8)
    reference = canon(run_cells(cells, jobs=1))
    for name in ("serial", "pool", "persistent"):
        merged = run_cells(cells, jobs=3, backend=name)
        assert canon(merged) == reference, name
        assert list(merged) == [c.key for c in cells], name


def test_persistent_failure_is_fail_fast_and_deterministic():
    cells = make_grid(8)
    cells[2] = Cell(("boom", 2), bc.boom, {"msg": "first bad cell"})
    cells[5] = Cell(("boom", 5), bc.boom, {"msg": "second bad cell"})
    # the earliest-declared failing cell wins no matter which worker
    # finished first, and the original exception type/message survive
    # the pipe
    with pytest.raises(ValueError, match="first bad cell"):
        run_cells(cells, jobs=3, backend="persistent")


def test_env_selected_backend_reaches_run_cells(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "serial")
    cells = [Cell(("who", i), bc.whoami, {"x": i}) for i in range(3)]
    merged = run_cells(cells, jobs=3)  # no explicit backend anywhere
    assert {r["pid"] for r in merged.values()} == {os.getpid()}
