"""Unit tests for the sweep checkpoint journal (repro.perf.journal)."""

import json

from repro.perf.journal import SweepJournal, fsync_dir, sweep_id


def test_sweep_id_is_order_and_content_sensitive():
    a = sweep_id(["fp1", "fp2"])
    assert a == sweep_id(["fp1", "fp2"])
    assert a != sweep_id(["fp2", "fp1"])
    assert a != sweep_id(["fp1", "fp2", "fp3"])
    assert a != sweep_id(["fp1"])
    assert len(a) == 24 and int(a, 16) >= 0


def test_append_load_round_trip(tmp_path):
    j = SweepJournal("deadbeef", root=tmp_path)
    j.record_done("fpA", "('a', 0)", attempts=1, wall_s=0.5)
    j.record_failed("fpB", "('a', 1)", attempts=4, error="boom")
    j.close()

    entries = SweepJournal("deadbeef", root=tmp_path).load()
    assert entries["fpA"]["event"] == "done"
    assert entries["fpA"]["attempts"] == 1
    assert entries["fpB"]["event"] == "failed"
    assert entries["fpB"]["error"] == "boom"


def test_latest_entry_per_fingerprint_wins(tmp_path):
    j = SweepJournal("s", root=tmp_path)
    j.record_failed("fp", "k", attempts=4, error="boom")
    j.record_done("fp", "k", attempts=5, wall_s=1.0)
    j.close()
    assert j.load()["fp"]["event"] == "done"
    assert j.completed() == {"fp"}


def test_completed_excludes_failures(tmp_path):
    j = SweepJournal("s", root=tmp_path)
    j.record_done("ok", "k1", attempts=1, wall_s=0.1)
    j.record_failed("bad", "k2", attempts=4, error="boom")
    j.close()
    # failed cells re-execute on resume: only "done" counts
    assert j.completed() == {"ok"}


def test_torn_trailing_line_is_skipped(tmp_path):
    j = SweepJournal("s", root=tmp_path)
    j.record_done("fpA", "k", attempts=1, wall_s=0.1)
    j.close()
    with j.path.open("a", encoding="utf-8") as fh:
        fh.write('{"event": "done", "fp": "fpB", "atte')  # crash mid-append
    assert j.completed() == {"fpA"}


def test_non_dict_and_blank_lines_tolerated(tmp_path):
    j = SweepJournal("s", root=tmp_path)
    j.path.parent.mkdir(parents=True, exist_ok=True)
    j.path.write_text('\n{"event": "done", "fp": "fpA"}\n\nnot json\n')
    assert j.completed() == {"fpA"}


def test_load_missing_journal_is_empty(tmp_path):
    j = SweepJournal("missing", root=tmp_path / "nowhere")
    assert j.load() == {}
    assert j.completed() == set()


def test_clear_removes_file(tmp_path):
    j = SweepJournal("s", root=tmp_path)
    j.record_done("fp", "k", attempts=1, wall_s=0.1)
    j.close()
    assert j.path.exists()
    j.clear()
    assert not j.path.exists()
    j.clear()  # idempotent


def test_appends_are_one_line_of_sorted_json(tmp_path):
    j = SweepJournal("s", root=tmp_path)
    j.record_done("fp", "k", attempts=2, wall_s=0.25)
    j.close()
    lines = j.path.read_text().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry == {"event": "done", "fp": "fp", "key": "k",
                     "attempts": 2, "wall_s": 0.25}
    assert lines[0] == json.dumps(entry, sort_keys=True)


def test_fsync_dir_tolerates_missing_path(tmp_path):
    fsync_dir(tmp_path)  # real directory: no error
    fsync_dir(tmp_path / "does-not-exist")  # best-effort: no error
