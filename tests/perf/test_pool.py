"""Unit tests for the cell pool (repro.perf.pool)."""

import pytest

from repro.gang.job import Job
from repro.perf.pool import Cell, _execute, run_cells


# Cell functions must be module-level so workers can unpickle them.
def square(x):
    return x * x


def next_jid():
    jid = Job._next_jid
    Job._next_jid += 1
    return jid


def boom():
    raise RuntimeError("cell failure")


def test_serial_and_parallel_agree_and_preserve_order():
    cells = [Cell(("sq", i), square, {"x": i}) for i in range(8)]
    serial = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=3)
    assert serial == parallel
    assert list(serial) == [("sq", i) for i in range(8)]
    assert serial[("sq", 5)] == 25


def test_jid_counter_reset_per_cell_in_both_paths():
    cells = [Cell(i, next_jid, {}) for i in range(3)]
    # serial: every cell sees a fresh counter, not the previous cell's
    assert list(run_cells(cells, jobs=1).values()) == [1, 1, 1]
    # parallel: workers may reuse a process; the reset still applies
    assert list(run_cells(cells, jobs=2).values()) == [1, 1, 1]


def test_execute_resets_global_jid():
    Job._next_jid = 99
    assert _execute(Cell("x", next_jid, {})) == 1


def test_duplicate_keys_rejected():
    cells = [Cell("same", square, {"x": 1}), Cell("same", square, {"x": 2})]
    with pytest.raises(ValueError, match="duplicate cell key"):
        run_cells(cells)


def test_non_picklable_fn_rejected_at_declaration():
    with pytest.raises(ValueError, match="module-level"):
        Cell("k", lambda: None, {})

    def local_fn():
        return 1

    with pytest.raises(ValueError, match="module-level"):
        Cell("k", local_fn, {})


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_cells([Cell("k", square, {"x": 1})], jobs=0)


def test_cell_exception_propagates_serial_and_parallel():
    cells = [Cell("ok", square, {"x": 2}), Cell("bad", boom, {})]
    with pytest.raises(RuntimeError, match="cell failure"):
        run_cells(cells, jobs=1)
    with pytest.raises(RuntimeError, match="cell failure"):
        run_cells(cells, jobs=2)


def test_empty_grid():
    assert run_cells([]) == {}
    assert run_cells([], jobs=4) == {}
