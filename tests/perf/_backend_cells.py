"""Module-level cell functions shared by the executor-backend tests.

Spawn/forkserver workers re-import cell functions by qualified name, so
everything a backend test dispatches must live in an importable module
(the same reason ``tests.perf._resume_cells`` exists).  Both the pytest
process and every worker import this module under
``tests.perf._backend_cells``, keeping PR 4 fingerprints identical
across processes.
"""

import os
import time
from pathlib import Path


def square(x):
    return {"x": x, "sq": x * x}


def sq_delay(x, delay_s):
    """Deterministic result, tunable wall time — the knob adversarial
    completion-order tests turn (the delay changes ``_perf``-free
    output not at all)."""
    time.sleep(delay_s)
    return {"x": x, "sq": x * x}


def whoami(x):
    """Nondeterministic on purpose: reports the executing pid, so tests
    can prove where a cell actually ran."""
    return {"x": x, "pid": os.getpid()}


def perf_cell(x):
    """A cell that ships its own ``_perf`` quarantine, like the real
    experiment runner does."""
    return {"x": x, "sq": x * x, "_perf": {"from_cell": True}}


def boom(msg):
    raise ValueError(msg)


def arr_total(arr, scale):
    """Consumes (without mutating) an ndarray kwarg: exercises the
    zero-copy buffer path of the spec table."""
    return {"total": float(arr.sum()) * scale, "shape": list(arr.shape)}


def flaky_file(counter, fail_times):
    """Fail the first ``fail_times`` calls ever made (any process),
    tracked through the filesystem."""
    path = Path(counter)
    n = int(path.read_text()) if path.exists() else 0
    path.write_text(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"flaky attempt {n}")
    return {"ok": True}
