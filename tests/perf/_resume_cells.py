"""Cells for the kill-then-resume integration test.

Both the pytest process and the SIGKILL'd child sweep import this
module under the same dotted name (``tests.perf._resume_cells``) so the
cell fingerprints — which embed the function's module and qualname —
match across the two processes, and the child's journal can be resumed
by the parent.
"""

import time
from pathlib import Path


def slow_cell(tag, delay_s, ping_dir=""):
    """Deterministic result; the sleep leaves time to SIGKILL the sweep
    mid-flight, the ping file records that the cell body actually ran."""
    if ping_dir:
        Path(ping_dir, f"{tag}.ping").write_text("ran")
    time.sleep(delay_s)
    return {"tag": tag, "value": 7 * len(tag) + delay_s}


def make_cells(n, delay_s, ping_dir=""):
    from repro.perf import Cell

    return [
        Cell(("cell", i), slow_cell,
             {"tag": f"c{i}", "delay_s": delay_s, "ping_dir": ping_dir})
        for i in range(n)
    ]


def run_sweep(journal_dir, jobs, delay_s, n, ping_dir=""):
    """One journaled, resumable supervised sweep (parent and child both
    call this, so interrupted and resuming runs are configured alike)."""
    from repro.perf import Supervisor, SupervisorConfig

    sup = Supervisor(SupervisorConfig(
        journal=True, resume=True, journal_dir=journal_dir,
        cell_timeout_s=120.0, poll_interval_s=0.02,
    ))
    merged = sup.run(make_cells(n, delay_s, ping_dir), jobs=jobs)
    return merged, sup
