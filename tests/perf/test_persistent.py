"""The persistent warm-worker executor (repro.perf.persistent) and the
zero-copy spec table (repro.perf.spec): packing/rebuild round-trips,
transport selection, the work-stealing scheduler, warm worker reuse,
and sweep-generation hygiene."""

import numpy as np
import pytest

from repro.perf import Cell, run_cells
from repro.perf.persistent import (
    START_METHOD_ENV,
    StealScheduler,
    get_default_executor,
    start_method,
)
from repro.perf.spec import SPEC_SHM_ENV, SpecTable, SpecView

from tests.perf import _backend_cells as bc


def make_grid(n=6):
    return [Cell(("sq", i), bc.square, {"x": i}) for i in range(n)]


# ---------------------------------------------------------------------------
# spec table round-trips
# ---------------------------------------------------------------------------
def test_spec_roundtrip_inline(monkeypatch):
    monkeypatch.setenv(SPEC_SHM_ENV, "0")
    cells = make_grid(5)
    table = SpecTable(cells)
    transport = table.transport()
    assert transport[0] == "inline"
    view = SpecView.from_transport(transport)
    assert len(view) == len(table) == 5
    for i, cell in enumerate(cells):
        rebuilt = view.cell(i)
        assert rebuilt.key == cell.key
        assert rebuilt.fn is bc.square  # same module-level function
        assert rebuilt.kwargs == cell.kwargs
    view.close()
    table.close()


def test_spec_roundtrip_ndarray_over_shm(monkeypatch):
    monkeypatch.setenv(SPEC_SHM_ENV, "1")
    arr = np.arange(512, dtype=np.float64).reshape(32, 16)
    cells = [Cell(("arr", i), bc.arr_total,
                  {"arr": arr, "scale": float(i)}) for i in range(3)]
    table = SpecTable(cells)
    transport = table.transport()
    assert transport[0] == "shm"
    view = SpecView.from_transport(transport)
    try:
        for i in range(3):
            rebuilt = view.cell(i)
            got = rebuilt.kwargs["arr"]
            np.testing.assert_array_equal(got, arr)
            # zero-copy rebuild: the array aliases the read-only table
            assert not got.flags.writeable
            assert rebuilt.kwargs["scale"] == float(i)
            # release the aliases before closing, so the segment's
            # mapping can actually be torn down below
            del rebuilt, got
    finally:
        view.close()
        table.close()


def test_spec_transport_threshold(monkeypatch):
    cells = make_grid(3)  # far below the 64 KiB shm threshold
    monkeypatch.delenv(SPEC_SHM_ENV, raising=False)
    assert SpecTable(cells).transport()[0] == "inline"
    monkeypatch.setenv(SPEC_SHM_ENV, "1")
    table = SpecTable(cells)
    assert table.transport()[0] == "shm"
    table.close()


# ---------------------------------------------------------------------------
# work-stealing scheduler
# ---------------------------------------------------------------------------
def test_lpt_assignment_is_deterministic():
    costs = {0: 5.0, 1: 4.0, 2: 3.0, 3: 2.0, 4: 2.0, 5: 1.0}
    a = StealScheduler([10, 11], cost=costs.get)
    b = StealScheduler([10, 11], cost=costs.get)
    a.extend(range(6))
    b.extend(range(6))
    # LPT: 0(5)->w10, 1(4)->w11, 2(3)->w11? loads 5 vs 4 -> w11,
    # 3(2)->w11 has 7 -> w10(5), 4(2)->w10(7)=w11(7) tie -> w10? ...
    # exact schedule aside, two identical builds must agree cell by cell
    order_a = [a.next_for(w) for w in (10, 11, 10, 11, 10, 11)]
    order_b = [b.next_for(w) for w in (10, 11, 10, 11, 10, 11)]
    assert order_a == order_b
    assert sorted(i for i in order_a if i is not None) == list(range(6))


def test_idle_worker_steals_from_victims_tail():
    costs = {0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
    sched = StealScheduler([0, 1], cost=costs.get)
    sched.extend(range(5))
    # LPT: cell 0 (cost 10) alone on worker 0; 1..4 pile on worker 1
    assert sched.next_for(0) == 0
    assert sched.next_for(1) == 1  # own head
    # worker 0 finishes its big cell; its deque is empty -> steal the
    # *tail* of worker 1 (the smallest remaining item under LPT order)
    stolen = sched.next_for(0)
    assert stolen == 4
    assert sched.steals == 1
    assert sched.next_for(1) == 2  # victim's head undisturbed
    assert len(sched) == 1


def test_replace_worker_hands_over_queue():
    sched = StealScheduler([0, 1])
    sched.extend(range(4))
    sched.replace_worker(1, 7)
    drained = []
    while True:
        i = sched.next_for(7)
        if i is None:
            break
        drained.append(i)
    assert sorted(drained) == list(range(4))  # own queue + steals


def test_push_front_priority():
    sched = StealScheduler([0])
    sched.extend([1, 2])
    sched.push_front(9)
    assert sched.next_for(0) == 9


# ---------------------------------------------------------------------------
# warm executor
# ---------------------------------------------------------------------------
def test_workers_stay_warm_across_sweeps():
    executor = get_default_executor()
    cells = make_grid(6)
    run_cells(cells, jobs=2, backend="persistent")
    pids_before = executor.worker_pids()
    sweeps_before = executor.stats["sweeps"]
    dispatches_before = executor.stats["dispatches"]
    run_cells(cells, jobs=2, backend="persistent")
    pids_after = executor.worker_pids()
    # same processes served both sweeps — the whole point
    assert set(pids_before.items()) <= set(pids_after.items())
    assert executor.stats["sweeps"] == sweeps_before + 1
    assert executor.stats["dispatches"] == dispatches_before + len(cells)


def test_worker_annotation_only_inside_existing_perf():
    plain = [Cell(("sq", i), bc.square, {"x": i}) for i in range(4)]
    merged = run_cells(plain, jobs=2, backend="persistent")
    # plain results stay byte-identical to serial: no quarantine added
    assert all("_perf" not in r for r in merged.values())

    tagged = [Cell(("p", i), bc.perf_cell, {"x": i}) for i in range(4)]
    merged = run_cells(tagged, jobs=2, backend="persistent")
    wids = {r["_perf"]["worker"] for r in merged.values()}
    assert wids  # every cell records which worker ran it
    assert all(isinstance(w, int) for w in wids)
    assert all(r["_perf"]["from_cell"] for r in merged.values())


def test_abandoned_sweep_results_are_dropped_by_generation():
    executor = get_default_executor()
    slow = [Cell(("slow", 0), bc.sq_delay, {"x": 1, "delay_s": 0.4})]
    gen, wids = executor.begin_sweep(slow, jobs=1)
    executor.dispatch(wids[0], 0, 0)
    stale_before = executor.stats["stale_results"]
    # abandon that sweep mid-flight; the busy worker is left draining
    # and a fresh one serves the new sweep
    merged = run_cells(make_grid(4), jobs=2, backend="persistent")
    assert [r["sq"] for r in merged.values()] == [0, 1, 4, 9]
    # the old sweep's late result must be recognised and dropped
    deadline = 50
    while executor.stats["stale_results"] == stale_before and deadline:
        executor.poll(0.1)
        deadline -= 1
    assert executor.stats["stale_results"] == stale_before + 1


def test_start_method_env_validation(monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV, "bogus")
    with pytest.raises(ValueError, match="bogus"):
        start_method()
    monkeypatch.delenv(START_METHOD_ENV)
    assert start_method() in ("forkserver", "spawn")
