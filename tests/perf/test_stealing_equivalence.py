"""Permutation / work-stealing equivalence suite (PR 10, satellite 3).

The executor-backend contract says completion order is invisible: the
merged record, the journal and the cell store must come out identical
whether cells finished in declaration order, adversarially scrambled
order, under work stealing, or across injected worker crashes.  These
tests engineer each of those orders and diff the artefacts byte by
byte (outside the reserved ``_perf`` quarantine)."""

import json

import pytest

from repro.experiments.report_io import _sanitise
from repro.faults.worker import WorkerFaultPlan
from repro.perf import (
    Cell,
    CellCache,
    Supervisor,
    SupervisorConfig,
    SweepJournal,
    fingerprint,
    run_cells,
    set_default_cache,
    set_default_supervisor,
    sweep_id,
)
from repro.perf.persistent import StealScheduler, get_default_executor

from tests.perf import _backend_cells as bc


@pytest.fixture(autouse=True)
def _no_process_defaults():
    set_default_cache(None)
    set_default_supervisor(None)
    yield
    set_default_cache(None)
    set_default_supervisor(None)


def canon(merged):
    strip = {
        k: ({kk: vv for kk, vv in v.items() if kk != "_perf"}
            if isinstance(v, dict) else v)
        for k, v in merged.items()
    }
    return json.dumps(_sanitise(strip), sort_keys=True)


def delay_cells(delays):
    return [Cell(("cell", i), bc.sq_delay, {"x": i, "delay_s": d})
            for i, d in enumerate(delays)]


def cfg(**kw):
    base = dict(backoff_base_s=0.0, backoff_max_s=0.0,
                poll_interval_s=0.02)
    base.update(kw)
    return SupervisorConfig(**base)


def find_plan(n_cells, max_retries, need, max_faulted=2, **rates):
    """Seed-search a plan whose attempt-0 schedule injects every kind
    in ``need`` while leaving every cell enough clean attempts (same
    idiom as tests/perf/test_supervisor.py)."""
    for seed in range(2000):
        plan = WorkerFaultPlan(seed=seed, **rates)
        sched = plan.injections(n_cells)
        if not need <= set(sched.values()):
            continue
        if all(sum(plan.decide(i, a) is not None
                   for a in range(max_retries + 1)) <= max_faulted
               for i in range(n_cells)):
            return plan
    raise AssertionError("no suitable fault seed in search window")


# ---------------------------------------------------------------------------
# adversarial completion orders
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("delays", [
    # descending: the first-declared cell finishes last
    [0.12, 0.10, 0.08, 0.06, 0.04, 0.02, 0.01, 0.01],
    # spike in the middle: neighbours of the slow cell race past it
    [0.01, 0.01, 0.15, 0.01, 0.01, 0.15, 0.01, 0.01],
], ids=["descending", "spikes"])
def test_scrambled_completion_order_is_invisible(delays):
    cells = delay_cells(delays)
    reference = canon(run_cells(cells, jobs=1))
    merged = run_cells(cells, jobs=3, backend="persistent")
    assert canon(merged) == reference
    assert list(merged) == [c.key for c in cells]


def test_steals_happen_and_leave_no_trace():
    """Drive the executor with a cost model that forces stealing, then
    prove the merged record matches the serial bytes anyway."""
    delays = [0.05, 0.10, 0.10, 0.10, 0.10, 0.10]
    cells = delay_cells(delays)
    reference = canon(run_cells(cells, jobs=1))

    costs = {0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 1.0}
    executor = get_default_executor()
    gen, wids = executor.begin_sweep(cells, jobs=2)
    sched = StealScheduler(wids, cost=costs.get)
    sched.extend(range(len(cells)))
    results = [None] * len(cells)
    pending = set(range(len(cells)))
    idle = set(wids)
    inflight = {}
    try:
        while pending:
            for wid in sorted(idle):
                index = sched.next_for(wid)
                if index is None:
                    break
                executor.dispatch(wid, index, 0)
                inflight[wid] = index
                idle.discard(wid)
            for ev in executor.poll(0.05):
                assert ev.kind == "result" and ev.ok
                index = inflight.pop(ev.wid)
                idle.add(ev.wid)
                results[index] = ev.payload
                pending.discard(index)
    finally:
        executor.end_sweep()

    # the cost model put cell 0 alone on one worker and queued the
    # rest on the other: the early finisher *must* have stolen
    assert sched.steals >= 1
    merged = dict(zip([c.key for c in cells], results))
    assert canon(merged) == reference


# ---------------------------------------------------------------------------
# crash chaos: identical records, journals and stores across backends
# ---------------------------------------------------------------------------
def test_crash_chaos_identity_across_backends(tmp_path):
    cells = [Cell(("sq", i), bc.square, {"x": i}) for i in range(8)]
    reference = canon(run_cells(cells, jobs=1))
    plan = find_plan(8, max_retries=3, need={"crash"}, crash_rate=0.25)

    merged = {}
    sups = {}
    for backend in ("persistent", "pool"):
        jdir = tmp_path / backend
        sup = Supervisor(cfg(max_retries=3, journal=True,
                             journal_dir=jdir, worker_faults=plan))
        merged[backend] = sup.run(cells, jobs=3, backend=backend)
        sups[backend] = sup
        assert canon(merged[backend]) == reference, backend
        assert sup.stats["quarantined"] == 0, backend

    # the persistent loop answers a crash surgically: one respawn per
    # dead worker, never a world rebuild
    assert sups["persistent"].stats["respawns"] >= 1
    assert sups["persistent"].stats["rebuilds"] == 0
    assert sups["pool"].stats["rebuilds"] >= 1
    assert sups["pool"].stats["respawns"] == 0

    # journals: same sweep id, same completed-fingerprint set
    prints = [fingerprint(c.fn, c.kwargs) for c in cells]
    sid = sweep_id(prints)
    done_sets = {}
    for backend in ("persistent", "pool"):
        journal = SweepJournal(sid, root=tmp_path / backend)
        done_sets[backend] = journal.completed()
    assert done_sets["persistent"] == done_sets["pool"] == set(prints)

    # journal-scoped stores: identical result bytes per fingerprint
    for fp in prints:
        stored = [
            CellCache(root=tmp_path / backend / f"{sid}.store").get(fp)
            for backend in ("persistent", "pool")
        ]
        assert all(s is not None for s in stored)
        a, b = (json.dumps(_sanitise(s), sort_keys=True) for s in stored)
        assert a == b


def test_hung_worker_is_killed_alone_and_retried():
    cells = delay_cells([0.01] * 6)
    reference = canon(run_cells(cells, jobs=1))
    plan = find_plan(6, max_retries=3, need={"hang"}, hang_rate=0.2)
    sup = Supervisor(cfg(max_retries=3, cell_timeout_s=0.4,
                         grace_factor=0.0, worker_faults=plan))
    merged = sup.run(cells, jobs=2, backend="persistent")
    assert canon(merged) == reference
    assert sup.stats["timeouts"] >= 1
    assert sup.stats["respawns"] >= 1
    assert sup.stats["rebuilds"] == 0
    assert sup.stats["quarantined"] == 0


# ---------------------------------------------------------------------------
# quarantine + resume on the persistent backend
# ---------------------------------------------------------------------------
def test_resume_after_quarantine_on_persistent_backend(tmp_path):
    counter = tmp_path / "flaky.count"
    cells = [Cell(("sq", i), bc.square, {"x": i}) for i in range(7)]
    cells.append(Cell(("flaky",), bc.flaky_file,
                      {"counter": str(counter), "fail_times": 1}))

    jdir = tmp_path / "journal"
    first = Supervisor(cfg(max_retries=0, journal=True,
                           journal_dir=jdir))
    merged1 = first.run(cells, jobs=2, backend="persistent")
    failed = merged1[("flaky",)]
    assert "_failed" in failed
    assert "flaky attempt 0" in failed["_failed"]["error"]
    assert first.stats["quarantined"] == 1

    # resume: the 7 settled cells come from the store, the quarantined
    # one re-executes (and succeeds this time)
    second = Supervisor(cfg(max_retries=0, journal=True, resume=True,
                            journal_dir=jdir))
    merged2 = second.run(cells, jobs=2, backend="persistent")
    assert second.stats["resumed"] == 7
    assert second.stats["completed"] == 1
    assert merged2[("flaky",)] == {"ok": True}
    # resumed cells are annotated (cache hit) inside _perf only;
    # everything outside the quarantine is byte-identical
    for i in range(7):
        a = {k: v for k, v in merged2[("sq", i)].items() if k != "_perf"}
        assert a == merged1[("sq", i)]
