"""Cross-process telemetry capture through the sweep layer: pool
capture/absorb, supervisor event logging, and the CLI surfaces
(``--trace-out`` under ``--jobs N``, ``repro obs bench-report``,
event-log rendering, cache hit rate)."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.obs import get_default
from repro.obs.sweep import (
    SweepObserver,
    load_events,
    merge_summaries,
    set_capture,
    set_default_sweep,
)
from repro.perf import (
    Cell,
    Supervisor,
    SupervisorConfig,
    run_cells,
    set_default_cache,
    set_default_supervisor,
)


@pytest.fixture(autouse=True)
def _no_process_defaults():
    set_default_cache(None)
    set_default_supervisor(None)
    set_default_sweep(None)
    set_capture(False)
    yield
    set_default_cache(None)
    set_default_supervisor(None)
    set_default_sweep(None)
    set_capture(False)


# Cell functions must be module-level so workers can unpickle them.
def telemetric(x):
    obs = get_default()
    obs.counter("cell_work").inc(x)
    obs.histogram("svc").observe(0.5 * x)
    obs.span("switch", "sched", 0.0, float(x))
    return {"x": x, "sq": x * x, "makespan": float(x)}


def flaky(counter, fail_times):
    path = Path(counter)
    n = int(path.read_text()) if path.exists() else 0
    path.write_text(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"flaky attempt {n}")
    return {"ok": True, "ran": n + 1}


def _cells(n=4):
    return [Cell(("t", i), telemetric, {"x": i + 1}) for i in range(n)]


def _strip_perf(merged):
    return {k: {kk: vv for kk, vv in v.items() if kk != "_perf"}
            for k, v in merged.items()}


# ---------------------------------------------------------------------------
# pool capture
# ---------------------------------------------------------------------------

def test_capture_off_ships_no_payload():
    merged = run_cells(_cells(), jobs=1)
    for r in merged.values():
        assert "obs_snapshot" not in r.get("_perf", {})


@pytest.mark.parametrize("jobs", [1, 2])
def test_capture_absorbs_and_sums(jobs):
    baseline = run_cells(_cells(), jobs=1)
    sweep = SweepObserver()
    merged = run_cells(_cells(), jobs=jobs, sweep_obs=sweep)
    # telemetry rides the _perf quarantine; records identical outside it
    assert _strip_perf(merged) == _strip_perf(baseline)
    assert sweep.cell_count == 4
    per_cell = [r["_perf"]["obs"] for r in merged.values()]
    assert sweep.summary() == merge_summaries(per_cell)
    assert sweep.summary()["counters"]["cell_work"] == 1 + 2 + 3 + 4
    # every cell contributes its own track group (spans + marker)
    tracks = {s.track.split("/")[0] for s in sweep.registry.spans}
    assert tracks == {repr(("t", i)) for i in range(4)}


def test_default_sweep_is_picked_up_by_run_cells():
    sweep = SweepObserver()
    set_default_sweep(sweep)
    run_cells(_cells(2), jobs=2)
    assert sweep.cell_count == 2


# ---------------------------------------------------------------------------
# supervisor event log
# ---------------------------------------------------------------------------

def test_supervisor_logs_retries_and_mirrors_journal(tmp_path):
    sup = Supervisor(SupervisorConfig(
        max_retries=3, backoff_base_s=0.0, backoff_max_s=0.0,
        poll_interval_s=0.02, journal=True,
        journal_dir=str(tmp_path / "journal")))
    cells = [Cell("ok", telemetric, {"x": 1}),
             Cell("fl", flaky, {"counter": str(tmp_path / "c"),
                                "fail_times": 2})]
    merged = sup.run(cells, jobs=2)
    assert merged["fl"]["ok"] is True
    counts = sup.events.counts()
    assert counts["sweep_begin"] == 1
    assert counts["cell_done"] == 2
    assert counts.get("retry", 0) == sup.stats["retries"] == 2
    retries = sup.events.named("retry")
    assert all(e["key"] == "fl" for e in retries)
    assert [e["attempt"] for e in retries] == [1, 2]
    # mirrored next to the sweep journal, readable by load_events
    assert sup.events.path is not None
    assert sup.events.path.name.endswith(".events.jsonl")
    loaded = load_events(sup.events.path)
    assert [e["event"] for e in loaded] == \
        [e["event"] for e in sup.events.entries]


def test_supervisor_logs_quarantine(tmp_path):
    def run():
        sup = Supervisor(SupervisorConfig(
            max_retries=1, backoff_base_s=0.0, backoff_max_s=0.0,
            poll_interval_s=0.02))
        cells = [Cell("bad", flaky, {"counter": str(tmp_path / "c"),
                                     "fail_times": 99})]
        sup.run(cells, jobs=1)
        return sup

    sup = run()
    assert sup.stats["quarantined"] == 1
    quars = sup.events.named("quarantine")
    assert len(quars) == 1
    assert quars[0]["key"] == "bad"
    assert "flaky attempt" in quars[0]["error"]


# ---------------------------------------------------------------------------
# CLI: merged trace under --jobs N (the satellite-1 regression)
# ---------------------------------------------------------------------------

def test_replicate_jobs_trace_out_exports_all_cells(tmp_path, capsys,
                                                    monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace = tmp_path / "sweep.trace.json"
    rc = main(["replicate", "--scale", "0.05", "--seeds", "1", "2",
               "--jobs", "2", "--obs", "--trace-out", str(trace)])
    assert rc == 0
    out = capsys.readouterr().out
    # 2 seeds x {batch, lru, paper policy} = 6 cells, all merged
    assert "sweep telemetry: merged 6 cell snapshot(s)" in out
    doc = json.loads(trace.read_text())
    procs = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"}
    # one distinct trace process (track group) per cell — before the
    # fix a --jobs sweep exported a main-process-only (empty) trace
    # (match by prefix: cell-key reprs may themselves contain "/")
    for key in ((s, m) for s in (1, 2)
                for m in ("batch", "lru", "so/ao/ai/bg")):
        want = repr(key)
        assert any(p == want or p.startswith(want + "/") for p in procs), \
            f"no trace process for cell {want}"
    assert len(procs) >= 6


# ---------------------------------------------------------------------------
# CLI: obs bench-report / event-log rendering / cache stats
# ---------------------------------------------------------------------------

def _write_bench(tmp_path, wall_last):
    (tmp_path / "BENCH_PR3.json").write_text(json.dumps({
        "bench": "b", "mode": "full",
        "fig6_trajectory": [{"pr": "seed", "wall_s": 3.0},
                            {"pr": "PR3", "wall_s": wall_last}]}))


def test_cli_bench_report(tmp_path, capsys):
    _write_bench(tmp_path, 1.5)
    assert main(["obs", "bench-report", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure-6 LRU cell perf trajectory" in out
    assert "no regressions" in out


def test_cli_bench_report_strict_fails_on_regression(tmp_path, capsys):
    _write_bench(tmp_path, 9.0)
    assert main(["obs", "bench-report", "--dir", str(tmp_path)]) == 0
    assert main(["obs", "bench-report", "--dir", str(tmp_path),
                 "--strict"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_report_empty_dir(tmp_path, capsys):
    assert main(["obs", "bench-report", "--dir", str(tmp_path)]) == 1
    assert "no BENCH_PR*.json" in capsys.readouterr().err


def test_cli_obs_renders_event_log(tmp_path, capsys):
    p = tmp_path / "sweep.events.jsonl"
    p.write_text(json.dumps({"seq": 0, "t": 0.0, "event": "retry",
                             "key": "'fl'", "attempt": 1,
                             "error": "boom"}) + "\n")
    assert main(["obs", str(p)]) == 0
    out = capsys.readouterr().out
    assert "Supervisor events" in out
    assert "retry" in out


def test_cli_obs_rejects_unknown_file(tmp_path, capsys):
    p = tmp_path / "junk.txt"
    p.write_text("not telemetry\n")
    assert main(["obs", str(p)]) == 1
    assert "no spans or events" in capsys.readouterr().err


def test_cli_cache_stats_hit_rate(tmp_path, capsys):
    from repro.perf import CellCache

    root = tmp_path / "cache"
    cache = CellCache(root=root)
    assert main(["cache", "stats", "--dir", str(root)]) == 0
    assert "hit rate: no recorded traffic" in capsys.readouterr().out
    cache.put("fp1", {"v": 1})
    cache.get("fp1")
    cache.get("fp1")
    cache.get("missing")
    assert main(["cache", "stats", "--dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "hit rate: 67% lifetime (2 hits / 3 lookups, " \
           "1 stores, 0 corrupt)" in out
